"""The compiled replay engine: block protocol kernels over flat arrays.

The batched engine (:mod:`repro.memories.batch`) removed the filter,
clock and global-counter work from the per-tenure Python loop, but every
admitted tenure still walks the protocol transition through boxed Python
objects — list-of-list directories, dict way maps, string-keyed counter
accumulators.  This module lowers that fused hot path one step further,
into **block-processing kernels over flat numpy state arrays**:

* tags and states live in one dense ``int64`` array per board, indexed
  ``line_base[node] + set * assoc + way`` (per-set fill level in a
  parallel ``set_len`` array, replacement metadata in ``meta``);
* the per-node ``(op, state)`` transition table is flattened into
  parallel ``next_state`` / ``invalidates`` / ``is_hit`` / ``defined``
  arrays indexed ``(node * N_OPS + op) * N_STATES + state``;
* transaction-buffer finish times sit in per-node ring buffers inside
  one ``float64`` array (``ft_base`` / ``ft_head`` / ``ft_len``);
* counters accumulate into an ``acc[node, counter_id]`` matrix over a
  fixed counter-name vocabulary (:data:`COUNTER_NAMES`) and are flushed
  into the real :class:`~repro.memories.counters.CounterBank` objects at
  telemetry boundaries and at the end of the call;
* coherence-group routing (local node per ``(group, cpu)``, peer lists,
  group controller lists) is baked into index arrays at lowering time.

The kernel itself (:func:`_kernel`) is written in the numba-compatible
subset of Python — flat-array indexing, integer arithmetic, no
closures — and is wrapped with ``numba.njit`` when numba is importable.
Without numba the same function still runs interpreted (the test suite
forces this via :data:`_FORCE_FLAT_KERNEL` to prove the lowering), but
interpreted numpy scalar indexing is *slower* than the fused object
path, so the production no-numba fallback is :func:`_python_runner`
instead: the fused loop with integer-indexed counter accumulators,
cpu-indexed routing tables and an inlined install path (incremental way
maps instead of per-miss rebuilds).

Bit-identity argument, per structure:

* **Clock** — chunking and ``now`` values come from
  :func:`repro.memories.batch.replay_with_runner`, unchanged.
* **Directory** — the flat arrays store exactly the scalar directory's
  way order; LRU move-to-front, FIFO insert-front/evict-back and the
  PLRU tree-bit updates are transcribed from
  :mod:`repro.memories.replacement` operation for operation, so every
  victim choice matches.  (``random`` replacement is denied statically:
  the capability prover withholds ``DETERMINISTIC_REPLACEMENT``.)
* **Buffers** — the ring buffer replays the exact drain/occupancy
  arithmetic of :class:`~repro.memories.tx_buffer.TransactionBuffer`;
  finish times are the same IEEE-754 sums in the same order.
* **Counters** — the accumulator matrix is a commutative reordering of
  increments within one chunk, flushed before any observer
  (``on_countdown`` → ``board.statistics()``) can look.

State is loaded from the board objects once per replay call, counter and
buffer statistics are flushed at every telemetry boundary (directories
are *not* — ``statistics()`` never reads directory contents), and the
directories, way maps and finish-time deques are written back when the
call returns.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.common.errors import EmulationError
from repro.memories.batch import (
    _CASTOUT,
    _DIRTY_OF,
    _FILL_KEY,
    _HIT_STATE_KEY,
    _LOCAL_CASTOUT,
    _LOCAL_CMD,
    _LOCAL_WRITE,
    _MAX_PROCESSOR_ID,
    _N_OPS,
    _N_STATES,
    _OWNED,
    _READ,
    _REMOTE_READ,
    _REMOTE_WRITE,
    _SAT_HIT,
    _SAT_MISS,
    _SHARED,
    _FusedNode,
    _invalidate,
    replay_with_runner,
    replay_words_batched,
)
from repro.memories.protocol_table import LineState
from repro.memories.replacement import FifoPolicy, LruPolicy, PlruPolicy

try:  # pragma: no cover - numba is optional and absent from the CI image
    import numba as _numba
except ImportError:
    _numba = None

HAVE_NUMBA = _numba is not None

#: Test hook: run the flat kernel interpreted even without numba, to
#: prove the lowering itself (slow — only sensible on short traces).
_FORCE_FLAT_KERNEL = False


def _build_counter_names() -> List[str]:
    names: List[str] = []
    for base, extra, _op, hit, miss, _fetches in _LOCAL_CMD:
        for key in (base, extra, hit, miss):
            if key is not None and key not in names:
                names.append(key)
    names.extend(key for key in _HIT_STATE_KEY if key not in names)
    names.extend(key for key in _FILL_KEY if key not in names)
    names.extend(
        [
            "inclusion.castout_miss",
            "intervention.from_peer",
            "evict.dirty",
            "evict.clean",
        ]
    )
    for key in _SAT_HIT + _SAT_MISS:
        if key is not None and key not in names:
            names.append(key)
    names.extend(
        ["remote.read", "remote.write", "remote.supplied_dirty", "remote.invalidated"]
    )
    return names


#: Every counter name the stock cache-emulation firmware can emit, in a
#: fixed order; counter id == index into this list == column of the
#: kernel's accumulator matrix.
COUNTER_NAMES = _build_counter_names()
_CID = {name: cid for cid, name in enumerate(COUNTER_NAMES)}

_CID_INCLUSION = _CID["inclusion.castout_miss"]
_CID_INTERVENTION = _CID["intervention.from_peer"]
_CID_EVICT_DIRTY = _CID["evict.dirty"]
_CID_EVICT_CLEAN = _CID["evict.clean"]
_CID_REMOTE_READ = _CID["remote.read"]
_CID_REMOTE_WRITE = _CID["remote.write"]
_CID_SUPPLIED_DIRTY = _CID["remote.supplied_dirty"]
_CID_INVALIDATED = _CID["remote.invalidated"]

#: _LOCAL_CMD with names resolved to counter ids (-1 = no counter).
_CMD_TAB = tuple(
    (
        _CID[base],
        _CID[extra] if extra is not None else -1,
        op,
        _CID[hit],
        _CID[miss],
        fetches,
    )
    for base, extra, op, hit, miss, fetches in _LOCAL_CMD
)
_HIT_STATE_CID = tuple(_CID[key] for key in _HIT_STATE_KEY)
_FILL_CID = tuple(_CID[key] for key in _FILL_KEY)
_SAT_HIT_CID = tuple(_CID[k] if k is not None else -1 for k in _SAT_HIT)
_SAT_MISS_CID = tuple(_CID[k] if k is not None else -1 for k in _SAT_MISS)

#: Kernel-side constant tables (module globals are frozen into the
#: compiled kernel as read-only constants by numba).
_K_CMD_BASE = np.array([t[0] for t in _CMD_TAB], dtype=np.int64)
_K_CMD_EXTRA = np.array([t[1] for t in _CMD_TAB], dtype=np.int64)
_K_CMD_OP = np.array([t[2] for t in _CMD_TAB], dtype=np.int64)
_K_CMD_HIT = np.array([t[3] for t in _CMD_TAB], dtype=np.int64)
_K_CMD_MISS = np.array([t[4] for t in _CMD_TAB], dtype=np.int64)
_K_CMD_FETCH = np.array(
    [1 if t[5] else 0 for t in _CMD_TAB], dtype=np.int64
)
_K_HIT_STATE = np.array(_HIT_STATE_CID, dtype=np.int64)
_K_FILL = np.array(_FILL_CID, dtype=np.int64)
_K_DIRTY = np.array([1 if d else 0 for d in _DIRTY_OF], dtype=np.int64)
_K_SAT_HIT = np.array(_SAT_HIT_CID, dtype=np.int64)
_K_SAT_MISS = np.array(_SAT_MISS_CID, dtype=np.int64)

_POLICY_LRU = 0
_POLICY_FIFO = 1
_POLICY_PLRU = 2
_POLICY_CODE = {LruPolicy: _POLICY_LRU, FifoPolicy: _POLICY_FIFO, PlruPolicy: _POLICY_PLRU}


# ---------------------------------------------------------------------------
# Lowering: firmware object graph -> static image + flat mutable state.
# ---------------------------------------------------------------------------


class _CompiledImage:
    """Static lowering of one firmware image (geometry, tables, routing).

    Immutable across a replay call; the mutable state lives in
    :class:`_KernelState`.  Built fresh per call — construction is
    O(nodes + transition table), negligible next to state loading.
    """

    __slots__ = (
        "nodes", "n_nodes", "n_groups",
        "off_bits", "set_mask", "tag_shift", "assoc", "num_sets",
        "set_base", "line_base", "total_sets", "total_lines",
        "policy", "plru_levels",
        "fill_write", "fill_read_shared", "fill_read_alone",
        "cap", "service", "ft_base", "total_cap",
        "tr_next", "tr_inval", "tr_hit", "tr_def",
        "local_node", "grp_start", "grp_len", "grp_nodes",
        "peer_start", "peer_len", "peer_nodes",
    )


def lower_image(firmware) -> Optional[_CompiledImage]:
    """Lower a firmware image to flat arrays; None when it cannot be.

    Mirrors the :data:`~repro.engines.capabilities.Capability`
    ``DENSE_PROTOCOL_STATE`` / ``DETERMINISTIC_REPLACEMENT`` denials as a
    dynamic safety net — the registry should never route an ineligible
    board here, but a direct caller gets a clean refusal, not corruption.
    """
    groups = getattr(firmware, "_groups", None)
    if groups is None:
        return None
    order: dict = {}
    nodes: list = []
    for _local_by_cpu, _peers_of, controllers in groups:
        for node in controllers:
            if node.sdram is not None or node.ecc:
                return None
            if type(node.directory.policy) not in _POLICY_CODE:
                return None
            if id(node) not in order:
                order[id(node)] = len(nodes)
                nodes.append(node)
    n = len(nodes)
    if n == 0:
        return None

    img = _CompiledImage()
    img.nodes = nodes
    img.n_nodes = n
    img.n_groups = len(groups)

    img.off_bits = np.zeros(n, dtype=np.int64)
    img.set_mask = np.zeros(n, dtype=np.int64)
    img.tag_shift = np.zeros(n, dtype=np.int64)
    img.assoc = np.zeros(n, dtype=np.int64)
    img.num_sets = np.zeros(n, dtype=np.int64)
    img.set_base = np.zeros(n, dtype=np.int64)
    img.line_base = np.zeros(n, dtype=np.int64)
    img.policy = np.zeros(n, dtype=np.int64)
    img.plru_levels = np.zeros(n, dtype=np.int64)
    img.fill_write = np.zeros(n, dtype=np.int64)
    img.fill_read_shared = np.zeros(n, dtype=np.int64)
    img.fill_read_alone = np.zeros(n, dtype=np.int64)
    img.cap = np.zeros(n, dtype=np.int64)
    img.service = np.zeros(n, dtype=np.float64)
    img.ft_base = np.zeros(n, dtype=np.int64)

    table_size = _N_OPS * _N_STATES
    img.tr_next = np.zeros(n * table_size, dtype=np.int64)
    img.tr_inval = np.zeros(n * table_size, dtype=np.int64)
    img.tr_hit = np.zeros(n * table_size, dtype=np.int64)
    img.tr_def = np.zeros(n * table_size, dtype=np.int64)

    set_cursor = 0
    line_cursor = 0
    ft_cursor = 0
    for nid, node in enumerate(nodes):
        directory = node.directory
        amap = directory.amap
        img.off_bits[nid] = amap.offset_bits
        img.set_mask[nid] = amap.num_sets - 1
        img.tag_shift[nid] = amap.offset_bits + amap.index_bits
        img.assoc[nid] = node.config.assoc
        img.num_sets[nid] = amap.num_sets
        img.set_base[nid] = set_cursor
        img.line_base[nid] = line_cursor
        set_cursor += amap.num_sets
        line_cursor += amap.num_sets * node.config.assoc

        policy = directory.policy
        img.policy[nid] = _POLICY_CODE[type(policy)]
        if type(policy) is PlruPolicy:
            img.plru_levels[nid] = policy._levels

        fill = node._fill
        img.fill_write[nid] = int(fill.write)
        img.fill_read_shared[nid] = int(fill.read_shared)
        img.fill_read_alone[nid] = int(fill.read_alone)

        buffer = node.buffer
        img.cap[nid] = buffer.capacity
        img.service[nid] = buffer.service_cycles
        img.ft_base[nid] = ft_cursor
        ft_cursor += buffer.capacity

        for (op, state), transition in node._table.items():
            idx = (nid * _N_OPS + int(op)) * _N_STATES + int(state)
            img.tr_next[idx] = int(transition.next_state)
            img.tr_inval[idx] = 1 if transition.next_state is LineState.INVALID else 0
            img.tr_hit[idx] = 1 if transition.is_hit else 0
            img.tr_def[idx] = 1
    img.total_sets = set_cursor
    img.total_lines = line_cursor
    img.total_cap = ft_cursor

    img.local_node = np.full(img.n_groups * 256, -1, dtype=np.int64)
    img.grp_start = np.zeros(img.n_groups, dtype=np.int64)
    img.grp_len = np.zeros(img.n_groups, dtype=np.int64)
    grp_nodes: List[int] = []
    img.peer_start = np.zeros(n, dtype=np.int64)
    img.peer_len = np.zeros(n, dtype=np.int64)
    peer_nodes: List[int] = []
    for g, (local_by_cpu, peers_of, controllers) in enumerate(groups):
        img.grp_start[g] = len(grp_nodes)
        img.grp_len[g] = len(controllers)
        grp_nodes.extend(order[id(node)] for node in controllers)
        for cpu, node in local_by_cpu.items():
            if cpu > 255:  # the packed trace cpu field is 8 bits wide
                return None
            img.local_node[(g << 8) + cpu] = order[id(node)]
        for node in controllers:
            nid = order[id(node)]
            peers = peers_of[node.index]
            img.peer_start[nid] = len(peer_nodes)
            img.peer_len[nid] = len(peers)
            peer_nodes.extend(order[id(peer)] for peer in peers)
    img.grp_nodes = np.array(grp_nodes, dtype=np.int64)
    img.peer_nodes = (
        np.array(peer_nodes, dtype=np.int64)
        if peer_nodes
        else np.zeros(0, dtype=np.int64)
    )
    return img


class _KernelState:
    """Flat mutable state: loaded from the board, flushed / stored back."""

    __slots__ = (
        "tags", "states", "set_len", "meta",
        "ft", "ft_head", "ft_len", "last_finish",
        "accepted", "rejected", "high_water",
        "acc",
    )


def _load_state(img: _CompiledImage) -> _KernelState:
    st = _KernelState()
    st.tags = np.zeros(img.total_lines, dtype=np.int64)
    st.states = np.zeros(img.total_lines, dtype=np.int64)
    st.set_len = np.zeros(img.total_sets, dtype=np.int64)
    st.meta = np.zeros(img.total_sets, dtype=np.int64)
    st.ft = np.zeros(img.total_cap, dtype=np.float64)
    n = img.n_nodes
    st.ft_head = np.zeros(n, dtype=np.int64)
    st.ft_len = np.zeros(n, dtype=np.int64)
    st.last_finish = np.zeros(n, dtype=np.float64)
    st.accepted = np.zeros(n, dtype=np.int64)
    st.rejected = np.zeros(n, dtype=np.int64)
    st.high_water = np.zeros(n, dtype=np.int64)
    st.acc = np.zeros((n, len(COUNTER_NAMES)), dtype=np.int64)
    for nid, node in enumerate(img.nodes):
        directory = node.directory
        set_base = int(img.set_base[nid])
        line_base = int(img.line_base[nid])
        assoc = int(img.assoc[nid])
        for s, (set_tags, set_states) in enumerate(
            zip(directory._tags, directory._states)
        ):
            fill_level = len(set_tags)
            st.set_len[set_base + s] = fill_level
            if fill_level:
                base = line_base + s * assoc
                st.tags[base : base + fill_level] = set_tags
                st.states[base : base + fill_level] = set_states
        st.meta[set_base : set_base + int(img.num_sets[nid])] = directory._meta
        buffer = node.buffer
        queue = list(buffer._finish_times)
        ft_base = int(img.ft_base[nid])
        if queue:
            st.ft[ft_base : ft_base + len(queue)] = queue
        st.ft_len[nid] = len(queue)
        st.last_finish[nid] = buffer._last_finish
        stats = buffer.stats
        st.accepted[nid] = stats.accepted
        st.rejected[nid] = stats.rejected
        st.high_water[nid] = stats.high_water
    return st


def _flush_stats(img: _CompiledImage, st: _KernelState) -> None:
    """Flush counters and buffer statistics into the board objects.

    Called at telemetry boundaries (before ``on_countdown`` reads
    ``board.statistics()``) and at end of call.  Counter deltas are
    zeroed after flushing; buffer statistics are absolute, so repeated
    flushes are idempotent.  Directory contents are deliberately *not*
    synchronised here — ``statistics()`` never reads them.
    """
    acc = st.acc
    for nid, node in enumerate(img.nodes):
        row = acc[nid]
        nonzero = np.nonzero(row)[0]
        if nonzero.size:
            counters = node.counters
            for cid in nonzero.tolist():
                counters.increment(COUNTER_NAMES[cid], int(row[cid]))
            row[nonzero] = 0
        buffer = node.buffer
        buffer._last_finish = float(st.last_finish[nid])
        stats = buffer.stats
        stats.accepted = int(st.accepted[nid])
        stats.rejected = int(st.rejected[nid])
        stats.high_water = int(st.high_water[nid])


def _store_state(img: _CompiledImage, st: _KernelState) -> None:
    """Write every flat structure back into the board object graph."""
    _flush_stats(img, st)
    for nid, node in enumerate(img.nodes):
        directory = node.directory
        set_base = int(img.set_base[nid])
        line_base = int(img.line_base[nid])
        assoc = int(img.assoc[nid])
        for s in range(int(img.num_sets[nid])):
            fill_level = int(st.set_len[set_base + s])
            base = line_base + s * assoc
            set_tags = st.tags[base : base + fill_level].tolist()
            set_states = st.states[base : base + fill_level].tolist()
            directory._tags[s] = set_tags
            directory._states[s] = set_states
            # Reversed so the first occurrence wins, matching
            # TagStateDirectory._rebuild_way_map.
            directory._ways[s] = {
                set_tags[way]: way for way in range(fill_level - 1, -1, -1)
            }
        directory._meta = st.meta[
            set_base : set_base + int(img.num_sets[nid])
        ].tolist()
        buffer = node.buffer
        cap = int(img.cap[nid])
        ft_base = int(img.ft_base[nid])
        head = int(st.ft_head[nid])
        length = int(st.ft_len[nid])
        if head + length <= cap:
            queue = st.ft[ft_base + head : ft_base + head + length].tolist()
        else:
            wrap = head + length - cap
            queue = (
                st.ft[ft_base + head : ft_base + cap].tolist()
                + st.ft[ft_base : ft_base + wrap].tolist()
            )
        buffer._finish_times = deque(queue)


# ---------------------------------------------------------------------------
# The flat kernel (numba-compatible subset; njit-wrapped when available).
# ---------------------------------------------------------------------------


def _plru_touch(way, meta, levels):
    node = 1
    for level in range(levels - 1, -1, -1):
        bit = (way >> level) & 1
        if bit:
            meta &= ~(1 << node)
        else:
            meta |= 1 << node
        node = (node << 1) | bit
    return meta


def _plru_victim(meta, levels):
    node = 1
    way = 0
    for _ in range(levels):
        bit = (meta >> node) & 1
        way = (way << 1) | bit
        node = (node << 1) | bit
    return way


def _remote_flat(
    nid, op, addr, now,
    off_bits, set_mask, tag_shift, assoc, set_base, line_base,
    cap, service, ft_base,
    tr_next, tr_inval, tr_hit, tr_def,
    tags, states, set_len,
    ft, ft_head, ft_len, last_finish, accepted, rejected, high_water,
    acc,
):
    """Flat-array NodeController.process_remote.

    Returns -1 on an undefined transition, else a bit mask:
    bit 0 = line held, bit 1 = supplied dirty.
    """
    if op == _REMOTE_READ:
        acc[nid, _CID_REMOTE_READ] += 1
    else:
        acc[nid, _CID_REMOTE_WRITE] += 1
    base = ft_base[nid]
    capacity = cap[nid]
    head = ft_head[nid]
    length = ft_len[nid]
    while length > 0 and ft[base + head] <= now:
        head += 1
        if head == capacity:
            head = 0
        length -= 1
    ft_head[nid] = head
    ft_len[nid] = length
    if length >= capacity:
        rejected[nid] += 1
        return 0
    last = last_finish[nid]
    start = now if now > last else last
    finish = start + service[nid]
    tail = head + length
    if tail >= capacity:
        tail -= capacity
    ft[base + tail] = finish
    ft_len[nid] = length + 1
    last_finish[nid] = finish
    accepted[nid] += 1
    if length + 1 > high_water[nid]:
        high_water[nid] = length + 1
    set_index = (addr >> off_bits[nid]) & set_mask[nid]
    tag = addr >> tag_shift[nid]
    node_assoc = assoc[nid]
    set_slot = set_base[nid] + set_index
    line_slot = line_base[nid] + set_index * node_assoc
    fill_level = set_len[set_slot]
    way = -1
    for candidate in range(fill_level):
        if tags[line_slot + candidate] == tag:
            way = candidate
            break
    if way < 0:
        return 0
    state = states[line_slot + way]
    t_index = (nid * _N_OPS + op) * _N_STATES + state
    if tr_def[t_index] == 0:
        return -1
    result = 1
    if tr_hit[t_index] != 0 and _K_DIRTY[state] != 0:
        acc[nid, _CID_SUPPLIED_DIRTY] += 1
        result = 3
    if tr_inval[t_index] != 0:
        for shift in range(way, fill_level - 1):
            tags[line_slot + shift] = tags[line_slot + shift + 1]
            states[line_slot + shift] = states[line_slot + shift + 1]
        set_len[set_slot] = fill_level - 1
        acc[nid, _CID_INVALIDATED] += 1
    else:
        states[line_slot + way] = tr_next[t_index]
    return result


def _kernel(
    cpus, cmds, addrs, resps, nows,
    n_groups, local_node, grp_start, grp_len, grp_nodes,
    peer_start, peer_len, peer_nodes,
    off_bits, set_mask, tag_shift, assoc, set_base, line_base,
    policy, plru_levels, fill_write, fill_read_shared, fill_read_alone,
    cap, service, ft_base,
    tr_next, tr_inval, tr_hit, tr_def,
    tags, states, set_len, meta,
    ft, ft_head, ft_len, last_finish, accepted, rejected, high_water,
    acc, out,
):
    """One chunk of admitted tenures over flat state; out = [retries, error]."""
    retries = 0
    for i in range(cpus.shape[0]):
        cpu = cpus[i]
        cmd = cmds[i]
        addr = addrs[i]
        resp = resps[i]
        now = nows[i]

        # Admission pre-check across every group before any state
        # changes (a refused tenure must be side-effect free).
        refused = False
        for g in range(n_groups):
            nid = local_node[(g << 8) + cpu]
            if nid >= 0:
                base = ft_base[nid]
                capacity = cap[nid]
                head = ft_head[nid]
                length = ft_len[nid]
                while length > 0 and ft[base + head] <= now:
                    head += 1
                    if head == capacity:
                        head = 0
                    length -= 1
                ft_head[nid] = head
                ft_len[nid] = length
                if length >= capacity:
                    rejected[nid] += 1
                    refused = True
        if refused:
            retries += 1
            continue

        for g in range(n_groups):
            nid = local_node[(g << 8) + cpu]
            if nid < 0:
                # Unmapped master (see CacheEmulationFirmware.process).
                if cmd == _READ:
                    remote_op = _REMOTE_READ
                elif cmd == _CASTOUT and cpu <= _MAX_PROCESSOR_ID:
                    continue
                else:
                    remote_op = _REMOTE_WRITE
                group_base = grp_start[g]
                for k in range(grp_len[g]):
                    held = _remote_flat(
                        grp_nodes[group_base + k], remote_op, addr, now,
                        off_bits, set_mask, tag_shift, assoc, set_base,
                        line_base, cap, service, ft_base,
                        tr_next, tr_inval, tr_hit, tr_def,
                        tags, states, set_len,
                        ft, ft_head, ft_len, last_finish, accepted,
                        rejected, high_water, acc,
                    )
                    if held < 0:
                        out[1] = 1
                        return
                continue

            # Local path; the pre-check guarantees buffer room at `now`.
            base = ft_base[nid]
            capacity = cap[nid]
            head = ft_head[nid]
            length = ft_len[nid]
            last = last_finish[nid]
            start = now if now > last else last
            finish = start + service[nid]
            tail = head + length
            if tail >= capacity:
                tail -= capacity
            ft[base + tail] = finish
            length += 1
            ft_len[nid] = length
            last_finish[nid] = finish
            accepted[nid] += 1
            if length > high_water[nid]:
                high_water[nid] = length

            acc[nid, _K_CMD_BASE[cmd]] += 1
            extra_cid = _K_CMD_EXTRA[cmd]
            if extra_cid >= 0:
                acc[nid, extra_cid] += 1
            op = _K_CMD_OP[cmd]

            set_index = (addr >> off_bits[nid]) & set_mask[nid]
            tag = addr >> tag_shift[nid]
            node_assoc = assoc[nid]
            set_slot = set_base[nid] + set_index
            line_slot = line_base[nid] + set_index * node_assoc
            fill_level = set_len[set_slot]
            way = -1
            for candidate in range(fill_level):
                if tags[line_slot + candidate] == tag:
                    way = candidate
                    break

            if way >= 0:
                state = states[line_slot + way]
                t_index = (nid * _N_OPS + op) * _N_STATES + state
                if tr_def[t_index] == 0:
                    out[1] = 1
                    return
                acc[nid, _K_CMD_HIT[cmd]] += 1
                acc[nid, _K_HIT_STATE[state]] += 1
                if tr_inval[t_index] != 0:
                    for shift in range(way, fill_level - 1):
                        tags[line_slot + shift] = tags[line_slot + shift + 1]
                        states[line_slot + shift] = states[line_slot + shift + 1]
                    set_len[set_slot] = fill_level - 1
                else:
                    states[line_slot + way] = tr_next[t_index]
                    node_policy = policy[nid]
                    if node_policy == _POLICY_LRU:
                        if way != 0:
                            moved_tag = tags[line_slot + way]
                            moved_state = states[line_slot + way]
                            for shift in range(way, 0, -1):
                                tags[line_slot + shift] = tags[line_slot + shift - 1]
                                states[line_slot + shift] = states[line_slot + shift - 1]
                            tags[line_slot] = moved_tag
                            states[line_slot] = moved_state
                    elif node_policy == _POLICY_PLRU:
                        meta[set_slot] = _plru_touch(
                            way, meta[set_slot], plru_levels[nid]
                        )
                if op == _LOCAL_WRITE and (state == _SHARED or state == _OWNED):
                    probe_base = peer_start[nid]
                    for k in range(peer_len[nid]):
                        held = _remote_flat(
                            peer_nodes[probe_base + k], _REMOTE_WRITE, addr,
                            now,
                            off_bits, set_mask, tag_shift, assoc, set_base,
                            line_base, cap, service, ft_base,
                            tr_next, tr_inval, tr_hit, tr_def,
                            tags, states, set_len,
                            ft, ft_head, ft_len, last_finish, accepted,
                            rejected, high_water, acc,
                        )
                        if held < 0:
                            out[1] = 1
                            return
                if _K_CMD_FETCH[cmd] != 0:
                    sat_cid = _K_SAT_HIT[resp]
                    if sat_cid >= 0:
                        acc[nid, sat_cid] += 1
                continue

            # Miss path.
            acc[nid, _K_CMD_MISS[cmd]] += 1
            if op == _LOCAL_CASTOUT:
                acc[nid, _CID_INCLUSION] += 1
                fill = fill_write[nid]
            elif op == _LOCAL_WRITE:
                probe_base = peer_start[nid]
                for k in range(peer_len[nid]):
                    held = _remote_flat(
                        peer_nodes[probe_base + k], _REMOTE_WRITE, addr, now,
                        off_bits, set_mask, tag_shift, assoc, set_base,
                        line_base, cap, service, ft_base,
                        tr_next, tr_inval, tr_hit, tr_def,
                        tags, states, set_len,
                        ft, ft_head, ft_len, last_finish, accepted,
                        rejected, high_water, acc,
                    )
                    if held < 0:
                        out[1] = 1
                        return
                fill = fill_write[nid]
            else:  # LOCAL_READ
                shared_elsewhere = False
                probe_base = peer_start[nid]
                for k in range(peer_len[nid]):
                    held = _remote_flat(
                        peer_nodes[probe_base + k], _REMOTE_READ, addr, now,
                        off_bits, set_mask, tag_shift, assoc, set_base,
                        line_base, cap, service, ft_base,
                        tr_next, tr_inval, tr_hit, tr_def,
                        tags, states, set_len,
                        ft, ft_head, ft_len, last_finish, accepted,
                        rejected, high_water, acc,
                    )
                    if held < 0:
                        out[1] = 1
                        return
                    if held > 0:
                        shared_elsewhere = True
                    if held == 3:
                        acc[nid, _CID_INTERVENTION] += 1
                if shared_elsewhere:
                    fill = fill_read_shared[nid]
                else:
                    fill = fill_read_alone[nid]

            # Install (replacement transcribed from repro.memories.replacement).
            victim_state = -1
            node_policy = policy[nid]
            if node_policy == _POLICY_PLRU:
                if fill_level < node_assoc:
                    tags[line_slot + fill_level] = tag
                    states[line_slot + fill_level] = fill
                    set_len[set_slot] = fill_level + 1
                    meta[set_slot] = _plru_touch(
                        fill_level, meta[set_slot], plru_levels[nid]
                    )
                else:
                    victim_way = _plru_victim(meta[set_slot], plru_levels[nid])
                    victim_state = states[line_slot + victim_way]
                    tags[line_slot + victim_way] = tag
                    states[line_slot + victim_way] = fill
                    meta[set_slot] = _plru_touch(
                        victim_way, meta[set_slot], plru_levels[nid]
                    )
            else:  # LRU / FIFO: insert at front, evict from the back.
                if fill_level >= node_assoc:
                    victim_state = states[line_slot + fill_level - 1]
                    fill_level -= 1
                for shift in range(fill_level, 0, -1):
                    tags[line_slot + shift] = tags[line_slot + shift - 1]
                    states[line_slot + shift] = states[line_slot + shift - 1]
                tags[line_slot] = tag
                states[line_slot] = fill
                set_len[set_slot] = fill_level + 1
            acc[nid, _K_FILL[fill]] += 1
            if victim_state >= 0:
                if _K_DIRTY[victim_state] != 0:
                    acc[nid, _CID_EVICT_DIRTY] += 1
                else:
                    acc[nid, _CID_EVICT_CLEAN] += 1
            if _K_CMD_FETCH[cmd] != 0:
                sat_cid = _K_SAT_MISS[resp]
                if sat_cid >= 0:
                    acc[nid, sat_cid] += 1
    out[0] = retries


if HAVE_NUMBA:  # pragma: no cover - numba absent from the CI image
    _plru_touch = _numba.njit(cache=True)(_plru_touch)
    _plru_victim = _numba.njit(cache=True)(_plru_victim)
    _remote_flat = _numba.njit(cache=True)(_remote_flat)
    _kernel = _numba.njit(cache=True)(_kernel)


def _flat_runner(img: _CompiledImage, st: _KernelState):
    """Adapt the flat kernel to the replay_with_runner interface."""
    out = np.zeros(2, dtype=np.int64)

    def run(cpus, cmds, addrs, resps, nows) -> int:
        out[0] = 0
        out[1] = 0
        _kernel(
            cpus.astype(np.int64), cmds.astype(np.int64),
            addrs.astype(np.int64), resps.astype(np.int64),
            np.ascontiguousarray(nows),
            img.n_groups, img.local_node, img.grp_start, img.grp_len,
            img.grp_nodes, img.peer_start, img.peer_len, img.peer_nodes,
            img.off_bits, img.set_mask, img.tag_shift, img.assoc,
            img.set_base, img.line_base,
            img.policy, img.plru_levels,
            img.fill_write, img.fill_read_shared, img.fill_read_alone,
            img.cap, img.service, img.ft_base,
            img.tr_next, img.tr_inval, img.tr_hit, img.tr_def,
            st.tags, st.states, st.set_len, st.meta,
            st.ft, st.ft_head, st.ft_len, st.last_finish,
            st.accepted, st.rejected, st.high_water,
            st.acc, out,
        )
        if out[1]:
            raise EmulationError(
                "compiled kernel hit an undefined protocol transition"
            )
        return int(out[0])

    return run


# ---------------------------------------------------------------------------
# Production no-numba fallback: fused object path with compiled-style
# integer-id accumulators and inlined install.
# ---------------------------------------------------------------------------


class _CompiledNode(_FusedNode):
    """_FusedNode with an integer-indexed counter accumulator and the
    extra per-node constants the inlined install path needs."""

    __slots__ = ("accv", "policy_code", "assoc", "victim_way")

    def __init__(self, node) -> None:
        super().__init__(node)
        self.accv = [0] * len(COUNTER_NAMES)
        policy = node.directory.policy
        self.policy_code = _POLICY_CODE[type(policy)]
        self.assoc = node.config.assoc
        self.victim_way = (
            policy.victim_way if type(policy) is PlruPolicy else None
        )

    def store(self) -> None:
        buffer = self.buffer
        buffer._last_finish = self.last_finish
        stats = buffer.stats
        stats.accepted = self.accepted
        stats.rejected = self.rejected
        stats.high_water = self.high_water
        counters = self.counters
        accv = self.accv
        for cid, value in enumerate(accv):
            if value:
                counters.increment(COUNTER_NAMES[cid], value)
                accv[cid] = 0


def _remote_compiled(fused: _CompiledNode, op: int, address: int, now: float):
    """_remote with integer-id counter accumulation."""
    accv = fused.accv
    if op == _REMOTE_READ:
        accv[_CID_REMOTE_READ] += 1
    else:
        accv[_CID_REMOTE_WRITE] += 1
    ft = fused.ft
    while ft and ft[0] <= now:
        ft.popleft()
    if len(ft) >= fused.capacity:
        fused.rejected += 1
        return False, False
    last = fused.last_finish
    start = now if now > last else last
    finish = start + fused.service
    ft.append(finish)
    fused.last_finish = finish
    fused.accepted += 1
    depth = len(ft)
    if depth > fused.high_water:
        fused.high_water = depth
    set_index = (address >> fused.off_bits) & fused.set_mask
    tag = address >> fused.tag_shift
    way = fused.ways[set_index].get(tag, -1)
    if way < 0:
        return False, False
    states_in_set = fused.states[set_index]
    state = states_in_set[way]
    next_state, invalidates, is_hit = fused.trans[op][state]
    supplied_dirty = is_hit and _DIRTY_OF[state]
    if supplied_dirty:
        accv[_CID_SUPPLIED_DIRTY] += 1
    if invalidates:
        _invalidate(fused, set_index, way)
        accv[_CID_INVALIDATED] += 1
    else:
        states_in_set[way] = next_state
    return True, supplied_dirty


def _process_local(local: _CompiledNode, cpu, cmd, addr, resp, now) -> None:
    """One admitted local tenure on a _CompiledNode (multi-group path).

    The single-group runner inlines this same sequence for speed; the
    two stay in lock-step via the shared bit-identity suite.
    """
    last = local.last_finish
    start = now if now > last else last
    finish = start + local.service
    local.ft.append(finish)
    local.last_finish = finish
    local.accepted += 1
    depth = len(local.ft)
    if depth > local.high_water:
        local.high_water = depth

    accv = local.accv
    base_cid, extra_cid, op, hit_cid, miss_cid, fetches = _CMD_TAB[cmd]
    accv[base_cid] += 1
    if extra_cid >= 0:
        accv[extra_cid] += 1

    set_index = (addr >> local.off_bits) & local.set_mask
    tag = addr >> local.tag_shift
    ways = local.ways[set_index]
    way = ways.get(tag, -1)

    if way >= 0:
        states_in_set = local.states[set_index]
        state = states_in_set[way]
        next_state, invalidates, _is_hit = local.trans[op][state]
        accv[hit_cid] += 1
        accv[_HIT_STATE_CID[state]] += 1
        if invalidates:
            _invalidate(local, set_index, way)
        else:
            states_in_set[way] = next_state
            if local.is_lru:
                if way:
                    tags_in_set = local.tags[set_index]
                    tags_in_set.insert(0, tags_in_set.pop(way))
                    states_in_set.insert(0, states_in_set.pop(way))
                    for position in range(way + 1):
                        ways[tags_in_set[position]] = position
            elif local.touch_meta is not None:
                meta = local.meta
                meta[set_index] = local.touch_meta(way, meta[set_index])
        if op == _LOCAL_WRITE and (state == _SHARED or state == _OWNED):
            for peer in local.peers:
                _remote_compiled(peer, _REMOTE_WRITE, addr, now)
        if fetches:
            accv[_SAT_HIT_CID[resp]] += 1
        return

    accv[miss_cid] += 1
    if op == _LOCAL_CASTOUT:
        accv[_CID_INCLUSION] += 1
        fill = local.fill_write
    elif op == _LOCAL_WRITE:
        for peer in local.peers:
            _remote_compiled(peer, _REMOTE_WRITE, addr, now)
        fill = local.fill_write
    else:
        shared_elsewhere = False
        for peer in local.peers:
            held, dirty = _remote_compiled(peer, _REMOTE_READ, addr, now)
            if held:
                shared_elsewhere = True
            if dirty:
                accv[_CID_INTERVENTION] += 1
        fill = local.fill_read_shared if shared_elsewhere else local.fill_read_alone
    victim_state = _install_inline(local, set_index, tag, fill)
    accv[_FILL_CID[fill]] += 1
    if victim_state >= 0:
        if _DIRTY_OF[victim_state]:
            accv[_CID_EVICT_DIRTY] += 1
        else:
            accv[_CID_EVICT_CLEAN] += 1
    if fetches:
        accv[_SAT_MISS_CID[resp]] += 1


def _install_inline(local: _CompiledNode, set_index, tag, fill) -> int:
    """Inlined directory.install with incremental way-map maintenance.

    Returns the victim's state, or -1 when no line was evicted —
    transcribed from repro.memories.replacement so every victim choice
    matches the object path.
    """
    tags_in_set = local.tags[set_index]
    states_in_set = local.states[set_index]
    ways = local.ways[set_index]
    if local.policy_code == _POLICY_PLRU:
        meta = local.meta
        fill_level = len(tags_in_set)
        if fill_level < local.assoc:
            tags_in_set.append(tag)
            states_in_set.append(fill)
            ways[tag] = fill_level
            meta[set_index] = local.touch_meta(fill_level, meta[set_index])
            return -1
        way = local.victim_way(meta[set_index])
        victim_state = states_in_set[way]
        del ways[tags_in_set[way]]
        tags_in_set[way] = tag
        states_in_set[way] = fill
        ways[tag] = way
        meta[set_index] = local.touch_meta(way, meta[set_index])
        return victim_state
    # LRU / FIFO: insert at front, evict from the back.
    victim_state = -1
    if len(tags_in_set) >= local.assoc:
        victim_tag = tags_in_set.pop()
        victim_state = states_in_set.pop()
        del ways[victim_tag]
    tags_in_set.insert(0, tag)
    states_in_set.insert(0, fill)
    for position in range(len(tags_in_set)):
        ways[tags_in_set[position]] = position
    return victim_state


def _python_runner(firmware):
    """Build the no-numba compiled runner, or None when ineligible."""
    groups = getattr(firmware, "_groups", None)
    if groups is None:
        return None
    compiled_of: dict = {}
    for _local_by_cpu, _peers_of, controllers in groups:
        for node in controllers:
            if node.sdram is not None or node.ecc:
                return None
            if type(node.directory.policy) not in _POLICY_CODE:
                return None
            if id(node) not in compiled_of:
                compiled_of[id(node)] = _CompiledNode(node)
    all_nodes = list(compiled_of.values())
    compiled_groups = []
    for local_by_cpu, peers_of, controllers in groups:
        for node in controllers:
            compiled_of[id(node)].peers = tuple(
                compiled_of[id(peer)] for peer in peers_of[node.index]
            )
        local_table: List[Optional[_CompiledNode]] = [None] * 256
        for cpu, node in local_by_cpu.items():
            if cpu > 255:  # the packed trace cpu field is 8 bits wide
                return None
            local_table[cpu] = compiled_of[id(node)]
        compiled_groups.append(
            (local_table, tuple(compiled_of[id(node)] for node in controllers))
        )
    if len(compiled_groups) == 1:
        return _single_group_run(compiled_groups[0], all_nodes)
    return _multi_group_run(compiled_groups, all_nodes)


def _multi_group_run(compiled_groups, all_nodes):
    def run(cpus, cmds, addrs, resps, nows) -> int:
        for fused in all_nodes:
            fused.load()
        retries = 0
        for cpu, cmd, addr, resp, now in zip(
            cpus.tolist(), cmds.tolist(), addrs.tolist(),
            resps.tolist(), nows.tolist(),
        ):
            refused = False
            for local_table, _controllers in compiled_groups:
                local = local_table[cpu]
                if local is not None:
                    ft = local.ft
                    while ft and ft[0] <= now:
                        ft.popleft()
                    if len(ft) >= local.capacity:
                        local.rejected += 1
                        refused = True
            if refused:
                retries += 1
                continue
            for local_table, controllers in compiled_groups:
                local = local_table[cpu]
                if local is None:
                    if cmd == _READ:
                        op = _REMOTE_READ
                    elif cmd == _CASTOUT and cpu <= _MAX_PROCESSOR_ID:
                        continue
                    else:
                        op = _REMOTE_WRITE
                    for fused in controllers:
                        _remote_compiled(fused, op, addr, now)
                    continue
                _process_local(local, cpu, cmd, addr, resp, now)
        for fused in all_nodes:
            fused.store()
        return retries

    return run


def _single_group_run(group, all_nodes):
    """The single-coherence-group fast path (the common machine shape):
    admission pre-check collapses to one buffer, routing to one table
    lookup, and the whole local tenure is inlined."""
    local_table, controllers = group
    cmd_tab = _CMD_TAB
    hit_state_cid = _HIT_STATE_CID
    fill_cid = _FILL_CID
    dirty_of = _DIRTY_OF
    sat_hit_cid = _SAT_HIT_CID
    sat_miss_cid = _SAT_MISS_CID
    remote = _remote_compiled
    invalidate = _invalidate
    install = _install_inline

    def run(cpus, cmds, addrs, resps, nows) -> int:
        for fused in all_nodes:
            fused.load()
        retries = 0
        for cpu, cmd, addr, resp, now in zip(
            cpus.tolist(), cmds.tolist(), addrs.tolist(),
            resps.tolist(), nows.tolist(),
        ):
            local = local_table[cpu]
            if local is None:
                # Unmapped master: no local buffer, so no admission
                # pre-check — probe the group's controllers directly.
                if cmd == _READ:
                    op = _REMOTE_READ
                elif cmd == _CASTOUT and cpu <= _MAX_PROCESSOR_ID:
                    continue
                else:
                    op = _REMOTE_WRITE
                for fused in controllers:
                    remote(fused, op, addr, now)
                continue

            ft = local.ft
            while ft and ft[0] <= now:
                ft.popleft()
            if len(ft) >= local.capacity:
                local.rejected += 1
                retries += 1
                continue

            last = local.last_finish
            start = now if now > last else last
            finish = start + local.service
            ft.append(finish)
            local.last_finish = finish
            local.accepted += 1
            depth = len(ft)
            if depth > local.high_water:
                local.high_water = depth

            accv = local.accv
            base_cid, extra_cid, op, hit_cid, miss_cid, fetches = cmd_tab[cmd]
            accv[base_cid] += 1
            if extra_cid >= 0:
                accv[extra_cid] += 1

            set_index = (addr >> local.off_bits) & local.set_mask
            tag = addr >> local.tag_shift
            ways = local.ways[set_index]
            way = ways.get(tag, -1)

            if way >= 0:
                states_in_set = local.states[set_index]
                state = states_in_set[way]
                next_state, invalidates, _is_hit = local.trans[op][state]
                accv[hit_cid] += 1
                accv[hit_state_cid[state]] += 1
                if invalidates:
                    invalidate(local, set_index, way)
                else:
                    states_in_set[way] = next_state
                    if local.is_lru:
                        if way:
                            tags_in_set = local.tags[set_index]
                            tags_in_set.insert(0, tags_in_set.pop(way))
                            states_in_set.insert(0, states_in_set.pop(way))
                            for position in range(way + 1):
                                ways[tags_in_set[position]] = position
                    elif local.touch_meta is not None:
                        meta = local.meta
                        meta[set_index] = local.touch_meta(way, meta[set_index])
                if op == _LOCAL_WRITE and (state == _SHARED or state == _OWNED):
                    for peer in local.peers:
                        remote(peer, _REMOTE_WRITE, addr, now)
                if fetches:
                    accv[sat_hit_cid[resp]] += 1
                continue

            accv[miss_cid] += 1
            if op == _LOCAL_CASTOUT:
                accv[_CID_INCLUSION] += 1
                fill = local.fill_write
            elif op == _LOCAL_WRITE:
                for peer in local.peers:
                    remote(peer, _REMOTE_WRITE, addr, now)
                fill = local.fill_write
            else:
                shared_elsewhere = False
                for peer in local.peers:
                    held, dirty = remote(peer, _REMOTE_READ, addr, now)
                    if held:
                        shared_elsewhere = True
                    if dirty:
                        accv[_CID_INTERVENTION] += 1
                fill = (
                    local.fill_read_shared
                    if shared_elsewhere
                    else local.fill_read_alone
                )
            victim_state = install(local, set_index, tag, fill)
            accv[fill_cid[fill]] += 1
            if victim_state >= 0:
                if dirty_of[victim_state]:
                    accv[_CID_EVICT_DIRTY] += 1
                else:
                    accv[_CID_EVICT_CLEAN] += 1
            if fetches:
                accv[sat_miss_cid[resp]] += 1
        for fused in all_nodes:
            fused.store()
        return retries

    return run


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------


def replay_words_compiled(board, words: np.ndarray) -> int:
    """Replay packed records through the compiled engine; returns the count.

    Precondition (proven statically by the engine registry): the board
    grants ``EXACT_FLOAT_CLOCK``, ``INERT_BACKGROUND_TICK``,
    ``DETERMINISTIC_REPLACEMENT`` and ``DENSE_PROTOCOL_STATE``.  A board
    that slips past the prover (direct calls) falls back to the batched
    engine rather than corrupting state.
    """
    if int(words.shape[0]) == 0:
        return 0
    firmware = board.firmware
    if HAVE_NUMBA or _FORCE_FLAT_KERNEL:
        img = lower_image(firmware)
        if img is None:
            return replay_words_batched(board, words)
        st = _load_state(img)
        runner = _flat_runner(img, st)
        try:
            return replay_with_runner(
                board, words, runner, flush=lambda: _flush_stats(img, st)
            )
        finally:
            _store_state(img, st)
    runner = _python_runner(firmware)
    if runner is None:
        return replay_words_batched(board, words)
    return replay_with_runner(board, words, runner)
