"""The MemorIES board — the paper's primary contribution, in software.

Public surface:

* :class:`~repro.memories.config.CacheNodeConfig` — one emulated cache's
  parameters, validated against the Table 2 hardware envelope.
* :class:`~repro.memories.board.MemoriesBoard` /
  :func:`~repro.memories.board.board_for_machine` — the board chassis with
  a loaded firmware image; plugs into a live host or replays traces.
* :class:`~repro.memories.console.MemoriesConsole` — programming and
  statistics extraction.
* :mod:`repro.memories.protocol_table` — loadable coherence-protocol map
  files (MSI/MESI/MOESI built in).
* :mod:`repro.memories.firmware` — the alternate firmware images of
  Section 2.3 (hot-spot profiling, trace collection, NUMA sparse directory,
  remote cache).
* :mod:`repro.memories.ecc` — SECDED protection for the tag/state
  directory plus the background patrol scrubber (the recovery half of
  :mod:`repro.faults`).
"""

from repro.memories.ecc import (
    DirectoryScrubber,
    EccTagStateDirectory,
    secded_decode,
    secded_encode,
)

from repro.memories.board import (
    CacheEmulationFirmware,
    MemoriesBoard,
    board_for_machine,
)
from repro.memories.cache_model import TagStateDirectory
from repro.memories.config import CacheNodeConfig
from repro.memories.console import MemoriesConsole
from repro.memories.counters import CounterBank
from repro.memories.node_controller import NodeController
from repro.memories.protocol_table import (
    CacheOp,
    LineState,
    ProtocolTable,
    load_protocol,
)
from repro.memories.replacement import make_policy
from repro.memories.sdram import SdramModel
from repro.memories.tx_buffer import TransactionBuffer

__all__ = [
    "CacheEmulationFirmware",
    "CacheNodeConfig",
    "CacheOp",
    "CounterBank",
    "DirectoryScrubber",
    "EccTagStateDirectory",
    "LineState",
    "MemoriesBoard",
    "MemoriesConsole",
    "NodeController",
    "ProtocolTable",
    "SdramModel",
    "TagStateDirectory",
    "TransactionBuffer",
    "board_for_machine",
    "load_protocol",
    "make_policy",
    "secded_decode",
    "secded_encode",
]
