"""Replacement policies for the emulated cache directories.

The board's SDRAM directory stores replacement metadata next to each tag
("state/Tag/LRU functions", Section 3.3).  Policies here operate directly on
a set's parallel ``tags``/``states`` lists so the directory hot loop stays
allocation-free:

* ``lru``    — true least-recently-used (move-to-front lists).
* ``fifo``   — first-in first-out (insertion order, hits do not refresh).
* ``random`` — uniform random victim, reproducible via the board's RNG seed.
* ``plru``   — tree pseudo-LRU, the policy real SRAM tag arrays often use;
  requires a power-of-two associativity.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.addr import is_power_of_two
from repro.common.errors import ConfigurationError


class ReplacementPolicy:
    """Interface: stateless except for optional per-set metadata.

    A policy may reorder the set's lists on :meth:`touch` (LRU does) and
    must install new lines via :meth:`insert`, returning the evicted
    ``(tag, state)`` pair when the set was full.
    """

    name = "abstract"
    needs_meta = False

    def make_meta(self) -> int:
        """Initial per-set metadata word (tree bits for PLRU)."""
        return 0

    def touch(self, tags: List[int], states: List[int], way: int, meta: int) -> Tuple[int, int]:
        """Record a hit on ``way``; returns (new way index, new meta)."""
        raise NotImplementedError

    def insert(
        self,
        tags: List[int],
        states: List[int],
        tag: int,
        state: int,
        assoc: int,
        meta: int,
    ) -> Tuple[Optional[Tuple[int, int]], int]:
        """Install a line; returns ((victim tag, victim state) or None, meta)."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Move-to-front true LRU; the board's default."""

    name = "lru"

    def touch(self, tags, states, way, meta):
        if way != 0:
            tags.insert(0, tags.pop(way))
            states.insert(0, states.pop(way))
        return 0, meta

    def insert(self, tags, states, tag, state, assoc, meta):
        victim = None
        if len(tags) >= assoc:
            victim = (tags.pop(), states.pop())
        tags.insert(0, tag)
        states.insert(0, state)
        return victim, meta


class FifoPolicy(ReplacementPolicy):
    """Insertion-order eviction; hits do not refresh a line's position."""

    name = "fifo"

    def touch(self, tags, states, way, meta):
        return way, meta

    def insert(self, tags, states, tag, state, assoc, meta):
        victim = None
        if len(tags) >= assoc:
            victim = (tags.pop(), states.pop())
        tags.insert(0, tag)
        states.insert(0, state)
        return victim, meta


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection, seeded for reproducibility."""

    name = "random"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0xD1CE)

    def touch(self, tags, states, way, meta):
        return way, meta

    def insert(self, tags, states, tag, state, assoc, meta):
        victim = None
        if len(tags) >= assoc:
            way = int(self._rng.integers(0, len(tags)))
            victim = (tags[way], states[way])
            tags[way] = tag
            states[way] = state
            return victim, meta
        tags.append(tag)
        states.append(state)
        return victim, meta


class PlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two number of ways.

    The per-set metadata word holds one bit per internal tree node; bit
    value 0 means "the LRU side is the left subtree".  Way positions are
    stable (no list reordering), matching how a hardware tag array works.
    """

    name = "plru"
    needs_meta = True

    def __init__(self, assoc: int) -> None:
        if not is_power_of_two(assoc):
            raise ConfigurationError(
                f"plru requires a power-of-two associativity, got {assoc}"
            )
        self._assoc = assoc
        self._levels = assoc.bit_length() - 1

    def _update_on_access(self, way: int, meta: int) -> int:
        """Flip tree bits so the accessed way's path is marked MRU."""
        node = 1
        for level in range(self._levels - 1, -1, -1):
            bit = (way >> level) & 1
            # Point the node *away* from the way just used.
            if bit:
                meta &= ~(1 << node)
            else:
                meta |= 1 << node
            node = (node << 1) | bit
        return meta

    def victim_way(self, meta: int) -> int:
        """Follow the tree bits to the pseudo-LRU way."""
        node = 1
        way = 0
        for _ in range(self._levels):
            bit = (meta >> node) & 1
            way = (way << 1) | bit
            node = (node << 1) | bit
        return way

    def touch(self, tags, states, way, meta):
        return way, self._update_on_access(way, meta)

    def insert(self, tags, states, tag, state, assoc, meta):
        if len(tags) < assoc:
            way = len(tags)
            tags.append(tag)
            states.append(state)
            return None, self._update_on_access(way, meta)
        way = self.victim_way(meta)
        victim = (tags[way], states[way])
        tags[way] = tag
        states[way] = state
        return victim, self._update_on_access(way, meta)


def make_policy(
    name: str,
    assoc: int,
    rng: Optional[np.random.Generator] = None,
) -> ReplacementPolicy:
    """Instantiate a replacement policy by its configuration name.

    Raises:
        ConfigurationError: unknown policy name, or plru with a
            non-power-of-two associativity.
    """
    name = name.lower()
    if name == "lru":
        return LruPolicy()
    if name == "fifo":
        return FifoPolicy()
    if name == "random":
        return RandomPolicy(rng)
    if name == "plru":
        return PlruPolicy(assoc)
    raise ConfigurationError(f"unknown replacement policy {name!r}")
