"""The console software.

The real console is a Windows PC driving the board over a parallel port; it
performs "power-up initialization of the MemorIES board, cache parameter
setting, and statistics extraction" (Section 2).  :class:`MemoriesConsole`
is that program's API surface: it programs target machines into a board,
uploads protocol map files to individual node controllers, extracts and
formats statistics, and offers a small textual command interface so the
examples can feel like a lab session.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.common.errors import ConfigurationError
from repro.memories.board import (
    CacheEmulationFirmware,
    DEFAULT_ASSUMED_UTILIZATION,
    MemoriesBoard,
)
from repro.memories.protocol_table import ProtocolTable
from repro.target.mapping import TargetMachine


class MemoriesConsole:
    """Programming and diagnostics interface to one board.

    Example:
        >>> from repro.memories import CacheNodeConfig, MemoriesConsole
        >>> from repro.target import single_node_machine
        >>> console = MemoriesConsole()
        >>> board = console.power_up(
        ...     single_node_machine(CacheNodeConfig.create("64MB"), n_cpus=8))
        >>> console.read_statistics()["board.retries_posted"]
        0
    """

    def __init__(self) -> None:
        self.board: Optional[MemoriesBoard] = None
        self._log: List[str] = []

    # ------------------------------------------------------------------ #
    # Programming
    # ------------------------------------------------------------------ #

    def power_up(
        self,
        machine: TargetMachine,
        seed: int = 0,
        assumed_utilization: float = DEFAULT_ASSUMED_UTILIZATION,
        enforce_envelope: bool = True,
        force: bool = False,
        ecc: bool = False,
        scrub_interval: Optional[float] = None,
    ) -> MemoriesBoard:
        """Initialise a board with cache-emulation firmware for ``machine``.

        Every node config is validated against the Table 2 envelope before
        the board comes up, exactly like the real console refuses bad
        parameter settings.  Pass ``enforce_envelope=False`` for scaled-down
        experiment configurations, whose caches intentionally fall below
        the board's 2 MB minimum; geometry is still checked.

        The machine's protocol tables are additionally run through the
        :mod:`repro.verify` model checker; a machine referencing a table
        that fails verification is refused unless ``force=True`` (the
        real board would run it — straight into silent state corruption).

        ``ecc=True`` builds SECDED-protected tag/state directories with a
        background patrol scrubber (cadence ``scrub_interval`` bus cycles).
        """
        for spec in machine.nodes:
            if enforce_envelope:
                spec.config.validate()
            else:
                spec.config.validate_geometry()
        if not force:
            self._refuse_unverified(machine)
        firmware = CacheEmulationFirmware(
            machine, seed=seed, ecc=ecc, scrub_interval=scrub_interval
        )
        self.board = MemoriesBoard(
            firmware,
            assumed_utilization=assumed_utilization,
            name=machine.name,
        )
        self._log.append(f"power-up: {machine.describe()}")
        return self.board

    def attach(self, board: MemoriesBoard) -> None:
        """Take control of an already-constructed board (any firmware)."""
        self.board = board
        self._log.append(f"attached to board {board.name!r}")

    def load_protocol_map(
        self, node_index: int, table: ProtocolTable, force: bool = False
    ) -> None:
        """Upload a protocol map file to one node controller FPGA.

        Section 3.2: "Different state table files could be loaded to
        different node controller FPGAs to experiment with different
        coherence protocols during the same measurement."

        The table is model-checked first (see :mod:`repro.verify`); an
        unverified table is refused unless ``force=True``.
        """
        if not force:
            from repro.verify.protocol import require_verified

            require_verified(table)
        firmware = self._emulation_firmware()
        try:
            node = firmware.nodes[node_index]
        except IndexError:
            raise ConfigurationError(
                f"board has {len(firmware.nodes)} nodes; no node {node_index}"
            ) from None
        node.protocol = table
        node._table = table.raw_table()
        node._fill = table.fill
        self._log.append(f"node {node_index}: loaded protocol {table.name!r}")

    # ------------------------------------------------------------------ #
    # Statistics extraction
    # ------------------------------------------------------------------ #

    def read_statistics(self) -> dict:
        """Pull the merged counter snapshot off the board."""
        board = self._require_board()
        return board.statistics()

    def reset_statistics(self) -> None:
        """Re-initialise the board's counters and directories."""
        self._require_board().reset()
        self._log.append("statistics reset")

    def report(self) -> str:
        """Human-readable statistics report, one counter per line."""
        board = self._require_board()
        lines = [f"=== MemorIES board {board.name!r} ==="]
        lines.append(f"emulated wall-clock: {board.emulated_seconds:.3f}s")
        for name, value in sorted(board.statistics().items()):
            lines.append(f"{name:40s} {value}")
        return "\n".join(lines)

    def miss_ratios(self) -> List[float]:
        """Per-node miss ratios (cache-emulation firmware only)."""
        return [node.miss_ratio() for node in self._emulation_firmware().nodes]

    def wrapped_counters(self) -> List[str]:
        """Names of 40-bit counters that have overflowed at least once.

        The paper sizes the counters for ">30 hours" at 20% bus
        utilization; an operator polling statistics less often than that
        must check this before trusting absolute counts.  Covers every
        bank the board can enumerate — node counters, resilience counters
        and the global-events FPGA.
        """
        return self._require_board().wrapped_counters()

    def resilience_report(self) -> str:
        """Recovery-machinery health: retries, snoop losses, buffers, ECC.

        One screen an operator reads after (or during) a long monitoring
        run to decide whether the collected statistics can be trusted:
        how often the bus had to re-issue retried tenures, whether the
        passive monitor ever missed a snoop, how close the transaction
        buffers came to overflowing, and what the directory ECC saw.
        """
        board = self._require_board()
        lines = [f"=== resilience: board {board.name!r} ==="]
        lines.append(f"retries posted            {board.retries_posted}")
        lines.append(f"snoop losses              {board.snoop_losses}")
        firmware = board.firmware
        for node in getattr(firmware, "nodes", []):
            buf = node.buffer
            lines.append(
                f"node {node.index}: buffer high-water {buf.stats.high_water}"
                f"/{buf.capacity}, rejected {buf.stats.rejected}"
            )
            if node.ecc:
                scrubber = node.scrubber
                cadence = (
                    f"scrub every {scrubber.interval_cycles:.0f} cycles, full pass "
                    f"{scrubber.full_pass_cycles():.0f} cycles, "
                    f"{node.directory.ecc_stats.scrub_passes} passes done"
                    if scrubber is not None
                    else "no scrubber"
                )
                lines.append(f"node {node.index}: ECC on ({cadence})")
            else:
                lines.append(f"node {node.index}: ECC off")
            for name, value in sorted(node.resilience.snapshot().items()):
                lines.append(f"  {name:38s} {value}")
        wrapped = board.wrapped_counters()
        if wrapped:
            lines.append("WRAPPED counters: " + ", ".join(wrapped))
        return "\n".join(lines)

    def watch(self, every_transactions: Optional[int] = None) -> str:
        """One frame of the live monitoring dashboard.

        The first call attaches an in-memory
        :class:`~repro.telemetry.CounterSampler` to the board (cadence
        ``every_transactions``, default
        :data:`~repro.telemetry.DEFAULT_EVERY_TRANSACTIONS`); every call
        takes a fresh sample — so polling ``watch`` *is* the periodic
        readout — and renders the series so far: windowed miss-ratio and
        utilization sparklines, span profile, wrap flags.
        """
        from repro.telemetry import CounterSampler, MemorySink, TelemetrySeries

        board = self._require_board()
        attached = False
        if board.telemetry is None:
            board.attach_telemetry(
                CounterSampler(
                    MemorySink(),
                    every_transactions=every_transactions,
                    label=board.name,
                )
            )
            self._log.append("watch: telemetry sampler attached")
            attached = True
        sampler = board.telemetry
        records = getattr(sampler.sink, "records", None)
        if records is None:
            return (
                "board sampler writes to an external sink; "
                "use 'python -m repro.cli telemetry report' on its output"
            )
        sampler.sample(board)
        series = TelemetrySeries(records)
        lines = [f"=== watch: board {board.name!r} ==="]
        if attached:
            lines.append(
                f"(sampler attached, every "
                f"{sampler.every_transactions} transactions; dashboard "
                f"fills as traffic runs)"
            )
        lines.append(f"emulated wall-clock: {board.emulated_seconds:.3f}s")
        lines.append(series.dashboard())
        return "\n".join(lines)

    def self_test(self) -> "SelfTestResult":
        """Run the power-on diagnostic (resets the board's statistics)."""
        from repro.memories.selftest import run_self_test

        result = run_self_test(self._require_board())
        self._log.append(
            "self-test " + ("passed" if result.passed else "FAILED")
        )
        return result

    # ------------------------------------------------------------------ #
    # Textual command interface
    # ------------------------------------------------------------------ #

    def execute(self, command_line: str) -> str:
        """Run one console command; returns its output text.

        Supported commands: ``stats``, ``report``, ``reset``, ``describe``,
        ``log``, ``self-test``, ``protocol <node>``, ``overflows``,
        ``verify``, ``engines [shards]``, ``faults``,
        ``watch [every_transactions]``, ``supervise <run_dir>``,
        ``service <service_root>``, ``timeline <run_dir>``.
        """
        command = command_line.strip().lower()
        if command == "self-test":
            return self.self_test().render()
        if command.startswith("watch"):
            parts = command.split()
            every = int(parts[1]) if len(parts) > 1 else None
            return self.watch(every)
        if command.startswith("supervise"):
            # Needs no board: reads the run directory's journal only.
            parts = command_line.strip().split()
            if len(parts) < 2:
                raise ConfigurationError("usage: supervise <run_dir>")
            from repro.supervisor import RunSupervisor, render_status

            supervisor = RunSupervisor.open(parts[1])
            try:
                self._log.append(f"supervise: inspected {parts[1]}")
                return render_status(supervisor.status())
            finally:
                supervisor.close()
        if command.startswith("service"):
            # Needs no board: reads the service root's manifest only.
            parts = command_line.strip().split()
            if len(parts) < 2:
                raise ConfigurationError("usage: service <service_root>")
            from repro.service import render_service_manifest

            self._log.append(f"service: inspected {parts[1]}")
            return render_service_manifest(parts[1])
        if command.startswith("timeline"):
            # Needs no board: pure function of the run directory's files.
            parts = command_line.strip().split()
            if len(parts) < 2:
                raise ConfigurationError("usage: timeline <run_dir>")
            from repro.obs import build_timeline, timeline_text

            self._log.append(f"timeline: inspected {parts[1]}")
            return timeline_text(build_timeline(parts[1]))
        if command == "faults":
            return self.resilience_report()
        if command == "verify":
            from repro.verify.machine import check_machine

            machine = self._emulation_firmware().machine
            report = check_machine(machine)
            self._log.append(f"verify: {report.summary()}")
            return report.render(verbose=True)
        if command.startswith("engines"):
            parts = command.split()
            shards = int(parts[1]) if len(parts) > 1 else None
            from repro.engines import decide_all

            board = self._require_board()
            lines = [f"=== engines: board {board.name!r} ==="]
            for decision in decide_all(board=board, shards=shards):
                verdict = "eligible" if decision.eligible else "REJECTED"
                lines.append(f"{decision.spec.name:8s} [{verdict}]")
                for finding in decision.report.findings:
                    lines.append(f"  {finding.render()}")
            self._log.append("engines: capability decisions rendered")
            return "\n".join(lines)
        if command.startswith("protocol"):
            parts = command.split()
            node_index = int(parts[1]) if len(parts) > 1 else 0
            firmware = self._emulation_firmware()
            try:
                node = firmware.nodes[node_index]
            except IndexError:
                raise ConfigurationError(
                    f"board has {len(firmware.nodes)} nodes; no node {node_index}"
                ) from None
            return node.protocol.render()
        if command == "overflows":
            wrapped = self.wrapped_counters()
            if not wrapped:
                return "no counters have wrapped"
            return "WRAPPED (values are modulo 2^40): " + ", ".join(wrapped)
        if command == "stats":
            return "\n".join(
                f"{k} {v}" for k, v in sorted(self.read_statistics().items())
            )
        if command == "report":
            return self.report()
        if command == "reset":
            self.reset_statistics()
            return "ok"
        if command == "describe":
            firmware = self._emulation_firmware()
            return firmware.machine.describe()
        if command == "log":
            return "\n".join(self._log)
        raise ConfigurationError(f"unknown console command {command_line!r}")

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _refuse_unverified(self, machine: TargetMachine) -> None:
        """Raise when the machine's programming fails static verification."""
        from repro.verify.machine import check_machine

        report = check_machine(machine)
        if not report.ok:
            details = "\n".join(f.render() for f in report.errors)
            raise ConfigurationError(
                f"machine {machine.name!r} failed verification "
                f"(pass force=True to program it anyway):\n{details}"
            )

    def _require_board(self) -> MemoriesBoard:
        if self.board is None:
            raise ConfigurationError("no board attached; call power_up() first")
        return self.board

    def _emulation_firmware(self) -> CacheEmulationFirmware:
        board = self._require_board()
        firmware = board.firmware
        if not isinstance(firmware, CacheEmulationFirmware):
            raise ConfigurationError(
                "this operation requires cache-emulation firmware; "
                f"the board is running {type(firmware).__name__}"
            )
        return firmware
