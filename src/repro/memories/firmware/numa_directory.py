"""NUMA sparse-directory coherence emulation firmware.

Section 2.3: "MemorIES can also emulate NUMA directory protocols, for
example, a system with 4 NUMA nodes kept coherent using a sparse-directory
cache coherence scheme.  The memory address space can be partitioned so that
one of the 4 nodes is the 'home' for that particular partition ...  The
private 256MB memory present in each of the 4 nodes can be partitioned to
hold both the L3 tag directory and the sparse directory belonging to the
corresponding 'home'.  If an entry gets evicted out of the sparse directory,
then the other L3 nodes can be informed about the eviction so that the entry
can also be invalidated in the other L3 tag directories."

The firmware therefore gives every emulated node two structures:

* an **L3 tag directory** for the node's processors (a plain
  :class:`~repro.memories.cache_model.TagStateDirectory`), and
* a **sparse directory** covering the slice of the address space the node is
  home for: a set-associative table of (line → presence vector, dirty owner).

Because the board is passive it cannot invalidate the host's real L1/L2
caches (the paper suggests shrinking or disabling the host L2 to
compensate); evictions *can* and do invalidate the emulated L3 directories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.addr import AddressMap, is_power_of_two, log2_int
from repro.common.errors import ConfigurationError
from repro.memories.cache_model import TagStateDirectory
from repro.memories.config import CacheNodeConfig
from repro.memories.counters import CounterBank
from repro.memories.protocol_table import LineState


@dataclass
class SparseEntry:
    """One sparse-directory entry: who caches a home line, and how."""

    presence: int = 0      # bit i set => node i's L3 holds the line
    dirty_owner: int = -1  # node holding it modified, -1 when clean


class SparseDirectory:
    """Set-associative sparse directory for one home node's partition.

    Args:
        entries: total directory entries (the 'sparseness' knob — fewer
            entries than cacheable lines forces evictions).
        assoc: directory associativity.
        line_size: coherence granularity in bytes.
    """

    def __init__(self, entries: int, assoc: int, line_size: int) -> None:
        if entries % assoc != 0:
            raise ConfigurationError(f"{entries} entries not divisible by {assoc}-way")
        num_sets = entries // assoc
        if not is_power_of_two(num_sets):
            raise ConfigurationError(f"sparse set count {num_sets} not a power of two")
        self.entries = entries
        self.assoc = assoc
        self.amap = AddressMap(line_size=line_size, num_sets=num_sets)
        self._tags: List[List[int]] = [[] for _ in range(num_sets)]
        self._data: List[List[SparseEntry]] = [[] for _ in range(num_sets)]
        self.evictions = 0

    def lookup(self, address: int) -> Optional[SparseEntry]:
        """Find the entry for a line, refreshing its LRU position."""
        set_index = self.amap.set_index(address)
        tag = self.amap.tag(address)
        tags = self._tags[set_index]
        try:
            way = tags.index(tag)
        except ValueError:
            return None
        if way != 0:
            tags.insert(0, tags.pop(way))
            data = self._data[set_index]
            data.insert(0, data.pop(way))
        return self._data[set_index][0]

    def allocate(self, address: int) -> Tuple[SparseEntry, Optional[Tuple[int, SparseEntry]]]:
        """Install a fresh entry; returns (entry, evicted (address, entry) or None)."""
        set_index = self.amap.set_index(address)
        tag = self.amap.tag(address)
        tags = self._tags[set_index]
        data = self._data[set_index]
        evicted = None
        if len(tags) >= self.assoc:
            victim_tag = tags.pop()
            victim_entry = data.pop()
            self.evictions += 1
            evicted = (self.amap.rebuild(victim_tag, set_index), victim_entry)
        entry = SparseEntry()
        tags.insert(0, tag)
        data.insert(0, entry)
        return entry, evicted

    def occupancy(self) -> float:
        """Fraction of directory entries in use."""
        used = sum(len(tags) for tags in self._tags)
        return used / self.entries

    def clear(self) -> None:
        for tags in self._tags:
            tags.clear()
        for data in self._data:
            data.clear()
        self.evictions = 0


class NumaDirectoryFirmware:
    """Sparse-directory NUMA emulation over up to four home nodes.

    Args:
        l3_config: configuration of each node's emulated L3.
        cpu_nodes: for every host CPU ID, the NUMA node it belongs to
            (e.g. ``[0, 0, 1, 1, 2, 2, 3, 3]`` for 8 CPUs on 4 nodes).
        sparse_entries: entries per home node's sparse directory.
        sparse_assoc: sparse-directory associativity.
        home_granularity: size of the address-interleaving unit that picks a
            line's home node (defaults to 4 KB pages).
    """

    def __init__(
        self,
        l3_config: CacheNodeConfig,
        cpu_nodes: Sequence[int],
        sparse_entries: int = 4096,
        sparse_assoc: int = 4,
        home_granularity: int = 4096,
    ) -> None:
        if not cpu_nodes:
            raise ConfigurationError("cpu_nodes must not be empty")
        self.n_nodes = max(cpu_nodes) + 1
        if self.n_nodes > 4:
            raise ConfigurationError("the board emulates at most 4 NUMA nodes")
        if not is_power_of_two(home_granularity):
            raise ConfigurationError("home granularity must be a power of two")
        self.cpu_nodes = tuple(cpu_nodes)
        self._home_shift = log2_int(home_granularity)
        self.l3_config = l3_config
        self.l3: List[TagStateDirectory] = [
            TagStateDirectory(l3_config) for _ in range(self.n_nodes)
        ]
        self.sparse: List[SparseDirectory] = [
            SparseDirectory(sparse_entries, sparse_assoc, l3_config.line_size)
            for _ in range(self.n_nodes)
        ]
        self.counters = CounterBank(prefix="numa")

    def home_of(self, address: int) -> int:
        """Home node of an address (page-interleaved partitioning)."""
        return (address >> self._home_shift) % self.n_nodes

    def process(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        if cpu_id >= len(self.cpu_nodes):
            # Unmapped master (I/O); writes invalidate everywhere.
            if command is not BusCommand.READ:
                self._invalidate_everywhere(address)
            return True
        node = self.cpu_nodes[cpu_id]
        home = self.home_of(address)
        counters = self.counters
        if node == home:
            counters.increment("requests.local")
        else:
            counters.increment("requests.remote")

        is_write = command in (BusCommand.RWITM, BusCommand.DCLAIM, BusCommand.CASTOUT)
        l3 = self.l3[node]
        set_index, tag, way = l3.probe(address)

        if way >= 0:
            counters.increment("l3.hits")
            state = LineState(l3.state_at(set_index, way))
            if is_write and state is LineState.SHARED:
                # Upgrade: home directory must invalidate other sharers.
                self._directory_write(node, address)
                l3.set_state(set_index, way, int(LineState.MODIFIED))
            elif is_write:
                l3.set_state(set_index, way, int(LineState.MODIFIED))
            l3.touch(set_index, way)
            return True

        counters.increment("l3.misses")
        if is_write:
            sharers = self._directory_write(node, address)
            fill = LineState.MODIFIED
        else:
            sharers = self._directory_read(node, address)
            fill = LineState.SHARED if sharers else LineState.EXCLUSIVE
        evicted = l3.install(set_index, tag, int(fill))
        if evicted is not None:
            victim_addr, _victim_state = evicted
            self._drop_presence(node, victim_addr)
        return True

    # ------------------------------------------------------------------ #
    # Home-directory actions
    # ------------------------------------------------------------------ #

    def _entry_for(self, address: int) -> SparseEntry:
        home = self.home_of(address)
        directory = self.sparse[home]
        entry = directory.lookup(address)
        if entry is None:
            self.counters.increment("sparse.misses")
            entry, evicted = directory.allocate(address)
            if evicted is not None:
                victim_addr, victim_entry = evicted
                self.counters.increment("sparse.evictions")
                self._invalidate_presence(victim_addr, victim_entry.presence)
        else:
            self.counters.increment("sparse.hits")
        return entry

    def _directory_read(self, node: int, address: int) -> int:
        """Register a read; returns the pre-existing sharer set (sans node)."""
        entry = self._entry_for(address)
        others = entry.presence & ~(1 << node)
        if entry.dirty_owner >= 0 and entry.dirty_owner != node:
            self.counters.increment("interventions.dirty")
            entry.dirty_owner = -1
        entry.presence |= 1 << node
        return others

    def _directory_write(self, node: int, address: int) -> int:
        """Register a write; invalidates all other sharers' L3 copies."""
        entry = self._entry_for(address)
        others = entry.presence & ~(1 << node)
        if others:
            self._invalidate_presence(address, others)
        if entry.dirty_owner >= 0 and entry.dirty_owner != node:
            self.counters.increment("interventions.dirty")
        entry.presence = 1 << node
        entry.dirty_owner = node
        return others

    def _invalidate_presence(self, address: int, presence: int) -> None:
        """Invalidate an address in every L3 named by a presence vector."""
        for node in range(self.n_nodes):
            if presence & (1 << node):
                l3 = self.l3[node]
                set_index, _tag, way = l3.probe(address)
                if way >= 0:
                    l3.invalidate(set_index, way)
                    self.counters.increment("invalidations.sent")

    def _drop_presence(self, node: int, address: int) -> None:
        """An L3 evicted a line; clear its presence bit at the home."""
        home = self.home_of(address)
        entry = self.sparse[home].lookup(address)
        if entry is not None:
            entry.presence &= ~(1 << node)
            if entry.dirty_owner == node:
                entry.dirty_owner = -1

    def _invalidate_everywhere(self, address: int) -> None:
        home = self.home_of(address)
        entry = self.sparse[home].lookup(address)
        if entry is not None and entry.presence:
            self._invalidate_presence(address, entry.presence)
            entry.presence = 0
            entry.dirty_owner = -1

    # ------------------------------------------------------------------ #
    # Console interface
    # ------------------------------------------------------------------ #

    def remote_access_fraction(self) -> float:
        """Fraction of requests whose home is a different node."""
        local = self.counters.read("requests.local")
        remote = self.counters.read("requests.remote")
        total = local + remote
        if total == 0:
            return 0.0
        return remote / total

    def snapshot(self) -> dict:
        merged = self.counters.snapshot()
        for node, directory in enumerate(self.sparse):
            merged[f"numa.sparse{node}.occupancy_pct"] = int(
                directory.occupancy() * 100
            )
        return merged

    def reset(self) -> None:
        self.counters.reset()
        for l3 in self.l3:
            l3.clear()
        for directory in self.sparse:
            directory.clear()
