"""Hot-spot identification firmware.

Section 2.3: "The FPGAs can be programmed to treat their private 256MB
memory as a table of memory read/write frequency counters either on cache
line basis or page basis.  These counters help to identify hot spots in
cache lines or in memory pages and provide useful insight into program
behavior for OS and application tuning."

The model keeps a lazily-populated counter table keyed by line or page
number, bounded by the number of 8-byte counters the node's 256 MB SDRAM
could hold, and reports the hottest regions on request.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.addr import is_power_of_two, log2_int
from repro.common.errors import ConfigurationError
from repro.memories.config import NODE_SDRAM_BYTES

#: Each frequency counter occupies one 8-byte SDRAM word (paper hardware).
COUNTER_BYTES = 8

#: Maximum distinct regions the 256 MB table can track.
TABLE_CAPACITY = NODE_SDRAM_BYTES // COUNTER_BYTES


class HotSpotFirmware:
    """Per-line or per-page read/write frequency profiling.

    Args:
        granularity_bytes: 128 for cache-line counters, 4096 for page
            counters (any power of two works).

    Attributes:
        reads / writes: counter tables keyed by region number.
        dropped: references ignored because the table was full — the
            hardware analogue of running out of SDRAM counter words.
    """

    def __init__(self, granularity_bytes: int = 4096) -> None:
        if not is_power_of_two(granularity_bytes):
            raise ConfigurationError(
                f"granularity {granularity_bytes} is not a power of two"
            )
        self.granularity_bytes = granularity_bytes
        self._shift = log2_int(granularity_bytes)
        self.reads: Dict[int, int] = {}
        self.writes: Dict[int, int] = {}
        self.dropped = 0

    def process(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        region = address >> self._shift
        if command is BusCommand.READ:
            table = self.reads
        else:  # RWITM / DCLAIM / CASTOUT are all write-side traffic
            table = self.writes
        if region not in table and len(self.reads) + len(self.writes) >= TABLE_CAPACITY:
            self.dropped += 1
            return True
        table[region] = table.get(region, 0) + 1
        return True

    def hottest(self, n: int = 10, kind: str = "total") -> List[Tuple[int, int]]:
        """Top-``n`` (region number, count) pairs.

        Args:
            n: how many regions to report.
            kind: ``"reads"``, ``"writes"`` or ``"total"``.
        """
        if kind == "reads":
            table = self.reads
        elif kind == "writes":
            table = self.writes
        elif kind == "total":
            table = dict(self.reads)
            for region, count in self.writes.items():
                table[region] = table.get(region, 0) + count
        else:
            raise ConfigurationError(f"unknown kind {kind!r}")
        return heapq.nlargest(n, table.items(), key=lambda item: (item[1], -item[0]))

    def region_address(self, region: int) -> int:
        """First byte address of a region number."""
        return region << self._shift

    def snapshot(self) -> dict:
        return {
            "hotspot.regions_tracked": len(self.reads) + len(self.writes),
            "hotspot.reads": sum(self.reads.values()),
            "hotspot.writes": sum(self.writes.values()),
            "hotspot.dropped": self.dropped,
        }

    def reset(self) -> None:
        self.reads.clear()
        self.writes.clear()
        self.dropped = 0
