"""Remote-cache emulation firmware.

Section 2.3: "In a similar vein, MemorIES can also model NUMA nodes with
remote caches.  The private 256MB memory belonging to each node can hold
both the L3 tag directory as well as the remote cache tag directory."

A *remote cache* holds only lines whose home is a **different** node: it
shortcuts the NUMA interconnect for repeatedly used remote data.  Each
emulated node therefore carries two directories — the L3 (all lines) and the
remote cache (remote-home lines only) — and the firmware reports how many
remote references the remote cache absorbs, the figure of merit for sizing
such caches.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.addr import is_power_of_two, log2_int
from repro.common.errors import ConfigurationError
from repro.memories.cache_model import TagStateDirectory
from repro.memories.config import CacheNodeConfig
from repro.memories.counters import CounterBank
from repro.memories.protocol_table import LineState


class RemoteCacheFirmware:
    """Per-node L3 plus remote-cache directories.

    Args:
        l3_config: each node's emulated L3 configuration.
        remote_config: each node's remote-cache configuration (usually
            smaller than the L3).
        cpu_nodes: NUMA node of every host CPU ID.
        home_granularity: address-interleaving unit for home assignment.
    """

    def __init__(
        self,
        l3_config: CacheNodeConfig,
        remote_config: CacheNodeConfig,
        cpu_nodes: Sequence[int],
        home_granularity: int = 4096,
    ) -> None:
        if not cpu_nodes:
            raise ConfigurationError("cpu_nodes must not be empty")
        self.n_nodes = max(cpu_nodes) + 1
        if self.n_nodes > 4:
            raise ConfigurationError("the board emulates at most 4 NUMA nodes")
        if not is_power_of_two(home_granularity):
            raise ConfigurationError("home granularity must be a power of two")
        self.cpu_nodes = tuple(cpu_nodes)
        self._home_shift = log2_int(home_granularity)
        self.l3: List[TagStateDirectory] = [
            TagStateDirectory(l3_config) for _ in range(self.n_nodes)
        ]
        self.remote: List[TagStateDirectory] = [
            TagStateDirectory(remote_config) for _ in range(self.n_nodes)
        ]
        self.counters = CounterBank(prefix="rcache")

    def home_of(self, address: int) -> int:
        """Home node of an address."""
        return (address >> self._home_shift) % self.n_nodes

    def process(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        if cpu_id >= len(self.cpu_nodes):
            return True  # I/O master: out of scope for remote-cache sizing
        node = self.cpu_nodes[cpu_id]
        home = self.home_of(address)
        counters = self.counters
        is_write = command in (BusCommand.RWITM, BusCommand.DCLAIM, BusCommand.CASTOUT)
        state = LineState.MODIFIED if is_write else LineState.SHARED

        # L3 is checked first regardless of the line's home.
        l3 = self.l3[node]
        set_index, tag, way = l3.probe(address)
        if way >= 0:
            counters.increment("l3.hits")
            if is_write:
                l3.set_state(set_index, way, int(LineState.MODIFIED))
            l3.touch(set_index, way)
            return True
        counters.increment("l3.misses")
        l3.install(set_index, tag, int(state))

        if home == node:
            counters.increment("local.misses")
            return True

        # Remote-home miss: does the remote cache absorb the interconnect trip?
        counters.increment("remote.references")
        remote = self.remote[node]
        r_set, r_tag, r_way = remote.probe(address)
        if r_way >= 0:
            counters.increment("remote.hits")
            if is_write:
                remote.set_state(r_set, r_way, int(LineState.MODIFIED))
            remote.touch(r_set, r_way)
        else:
            counters.increment("remote.misses")
            remote.install(r_set, r_tag, int(state))
        return True

    def remote_hit_ratio(self) -> float:
        """Fraction of remote-home L3 misses the remote cache satisfied."""
        references = self.counters.read("remote.references")
        if references == 0:
            return 0.0
        return self.counters.read("remote.hits") / references

    def snapshot(self) -> dict:
        return self.counters.snapshot()

    def reset(self) -> None:
        self.counters.reset()
        for directory in self.l3:
            directory.clear()
        for directory in self.remote:
            directory.clear()
