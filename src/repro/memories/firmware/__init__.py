"""Alternate FPGA firmware images (Section 2.3 of the paper).

"Although the primary use of the MemorIES board is to emulate large cache
systems, the tool is very flexible and can be programmed to perform many
other functions relatively easily by changing the FPGA firmware and
recompiling."  The four functions the paper names are all here:

* :class:`~repro.memories.firmware.hotspot.HotSpotFirmware` — per-line or
  per-page read/write frequency counters for hot-spot identification.
* :class:`~repro.memories.firmware.tracer.TraceCollectorFirmware` — real-time
  bus trace capture into on-board memory (up to 10^9 8-byte records).
* :class:`~repro.memories.firmware.numa_directory.NumaDirectoryFirmware` —
  sparse-directory cache-coherence emulation for a multi-node NUMA target.
* :class:`~repro.memories.firmware.remote_cache.RemoteCacheFirmware` — NUMA
  nodes with remote caches (L3 directory + remote-cache directory per node).
"""

from repro.memories.firmware.hotspot import HotSpotFirmware
from repro.memories.firmware.numa_directory import NumaDirectoryFirmware, SparseDirectory
from repro.memories.firmware.remote_cache import RemoteCacheFirmware
from repro.memories.firmware.tracer import TraceCollectorFirmware

__all__ = [
    "HotSpotFirmware",
    "NumaDirectoryFirmware",
    "RemoteCacheFirmware",
    "SparseDirectory",
    "TraceCollectorFirmware",
]
