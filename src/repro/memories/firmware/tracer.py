"""Real-time bus trace collection firmware.

Section 2.3: "The on-board memory ... can be used to collect bus traces from
the host machine and later dump to a disk in the console machine.  The
current revision of the MemorIES board is capable of collecting traces
containing up to 1 billion 8-byte wide bus references at a time ...
MemorIES requires no such stoppage [unlike a logic analyser], allowing for
the collection of large traces without gaps."

This firmware is how live host runs become the repeatable offline traces the
paper's case studies lean on: plug a board running it into a
:class:`~repro.host.smp.HostSMP`, run the workload, then :meth:`to_trace` or
:meth:`save`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.bus.trace import BOARD_TRACE_CAPACITY, BusTrace, TraceWriter
from repro.bus.transaction import BusCommand, SnoopResponse


class TraceCollectorFirmware:
    """Capture the filtered memory-reference stream into on-board SDRAM.

    Args:
        capacity: maximum records (defaults to the board's 10^9 limit).

    Attributes:
        overflowed: True once references arrived after the buffer filled;
            the board keeps running (it is passive) but stops recording,
            and the console is expected to notice via this flag.
    """

    def __init__(self, capacity: int = BOARD_TRACE_CAPACITY) -> None:
        self.writer = TraceWriter(capacity=capacity)
        self.overflowed = False

    def process(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        recorded = self.writer.append_raw(
            cpu_id, int(command), address, int(snoop_response)
        )
        if not recorded:
            self.overflowed = True
        return True

    def __len__(self) -> int:
        return len(self.writer)

    def to_trace(self) -> BusTrace:
        """Snapshot the captured records as an in-memory trace."""
        return self.writer.to_trace()

    def save(self, path: Union[str, Path]) -> None:
        """Dump the captured trace to the console machine's disk."""
        self.writer.save(path)

    def snapshot(self) -> dict:
        return {
            "tracer.records": len(self.writer),
            "tracer.capacity": self.writer.capacity,
            "tracer.overflowed": int(self.overflowed),
        }

    def reset(self) -> None:
        self.writer = TraceWriter(capacity=self.writer.capacity)
        self.overflowed = False
