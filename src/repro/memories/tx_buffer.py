"""Transaction buffering and the SDRAM throughput model.

Section 3.3 of the paper: the SDRAM implementing the state/tag/LRU
functions sustains roughly **42% of the maximum 6xx bus bandwidth**.  To
ride out bursts above that rate the board buffers transactions — the address
filter accepts operations at the full 100 MHz bus rate, and each node
controller has a **512-entry** transaction buffer pacing its SDRAM directory
operations.  Only when the buffers are completely full does the address
filter post a **retry** on the bus (the one active thing the otherwise
passive board can do); the authors report this never happened below 42%
sustained utilization.

:class:`TransactionBuffer` models one such queue with a deterministic
service time per operation, measured in bus cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.errors import ValidationError

#: SDRAM directory throughput as a fraction of peak bus tenure bandwidth.
SDRAM_BANDWIDTH_FRACTION = 0.42

#: Node-controller transaction buffer depth (Section 3.3).
NODE_BUFFER_ENTRIES = 512

#: Address-filter burst buffer depth (absorbs scheduling jitter between the
#: bus and the node controllers; the paper gives no number, sized generously).
FILTER_BUFFER_ENTRIES = 64


def service_cycles_per_op(
    bandwidth_fraction: float = SDRAM_BANDWIDTH_FRACTION,
    tenure_cycles: int = 2,
) -> float:
    """Bus cycles one directory operation occupies the SDRAM.

    A bus that issues one tenure every ``tenure_cycles`` at 100% utilization
    offers ``1/tenure_cycles`` ops/cycle; SDRAM sustains ``bandwidth_fraction``
    of that, i.e. one op per ``tenure_cycles / fraction`` cycles.
    """
    if not 0 < bandwidth_fraction <= 1:
        raise ValidationError(f"bandwidth fraction {bandwidth_fraction} out of (0, 1]")
    return tenure_cycles / bandwidth_fraction


@dataclass
class BufferStats:
    """Occupancy and overflow statistics for one transaction buffer."""

    accepted: int = 0
    rejected: int = 0
    high_water: int = 0
    #: Synthetic operations enqueued by the fault injector (not real work).
    injected: int = 0

    @property
    def ever_rejected(self) -> bool:
        """True if the buffer ever forced a bus retry."""
        return self.rejected > 0


class TransactionBuffer:
    """A fixed-depth queue drained at a deterministic service rate.

    Each accepted operation completes ``service_cycles`` after the later of
    its arrival and the previous operation's completion (a single-server
    deterministic queue).  :meth:`offer` returns False — meaning the board
    must post a retry — only when ``capacity`` operations are still
    in flight.

    Args:
        capacity: queue depth (512 for node controllers).
        service_cycles: bus cycles per directory operation.
    """

    def __init__(
        self,
        capacity: int = NODE_BUFFER_ENTRIES,
        service_cycles: float = service_cycles_per_op(),
    ) -> None:
        if capacity < 1:
            raise ValidationError("buffer capacity must be >= 1")
        self.capacity = capacity
        self.service_cycles = float(service_cycles)
        self.stats = BufferStats()
        self._finish_times: deque[float] = deque()
        self._last_finish = 0.0

    def occupancy(self, now_cycle: float) -> int:
        """Operations still in flight at ``now_cycle``."""
        self._drain(now_cycle)
        return len(self._finish_times)

    def can_accept(self, now_cycle: float) -> bool:
        """True when :meth:`offer` would succeed at ``now_cycle``.

        Side-effect free (beyond draining completed operations, which
        :meth:`offer` would do anyway): the firmware uses this to pre-check
        admission across every involved buffer so a refused tenure leaves
        no partial state behind and can be cleanly retried by the bus
        master.
        """
        self._drain(now_cycle)
        return len(self._finish_times) < self.capacity

    def note_rejection(self) -> None:
        """Account one refused admission decided by an external pre-check."""
        self.stats.rejected += 1

    def inject_occupancy(self, now_cycle: float, ops: int) -> int:
        """Fault injection: enqueue synthetic operations to crowd the queue.

        Models a burst of directory traffic arriving faster than the SDRAM
        drains — the condition that forces the address filter to post bus
        retries.  Synthetic operations are tracked separately from real
        ones (``stats.injected``) so emulation counters stay honest.
        Returns how many were enqueued (capped at the free capacity).
        """
        self._drain(now_cycle)
        room = self.capacity - len(self._finish_times)
        injected = min(max(ops, 0), room)
        start = now_cycle if now_cycle > self._last_finish else self._last_finish
        for _ in range(injected):
            start += self.service_cycles
            self._finish_times.append(start)
        if injected:
            self._last_finish = start
            self.stats.injected += injected
        return injected

    def _drain(self, now_cycle: float) -> None:
        finish_times = self._finish_times
        while finish_times and finish_times[0] <= now_cycle:
            finish_times.popleft()

    def offer(self, now_cycle: float, service_cycles: Optional[float] = None) -> bool:
        """Try to enqueue one operation arriving at ``now_cycle``.

        Returns True when accepted; False when the buffer is full (the
        caller must post a bus retry, which the paper's Section 3.3 notes
        has never been observed in practice below 42% utilization).

        Args:
            now_cycle: arrival time in bus cycles.
            service_cycles: per-operation service time override; a detailed
                SDRAM model (see :mod:`repro.memories.sdram`) supplies
                address-dependent costs here, otherwise the buffer's
                constant applies.
        """
        self._drain(now_cycle)
        if len(self._finish_times) >= self.capacity:
            self.stats.rejected += 1
            return False
        cost = self.service_cycles if service_cycles is None else service_cycles
        start = now_cycle if now_cycle > self._last_finish else self._last_finish
        finish = start + cost
        self._finish_times.append(finish)
        self._last_finish = finish
        self.stats.accepted += 1
        depth = len(self._finish_times)
        if depth > self.stats.high_water:
            self.stats.high_water = depth
        return True

    def offer_batch(self, now_cycles) -> int:
        """Enqueue a batch of operations; exactly ``offer`` per element.

        ``now_cycles`` must be ascending (replay time is monotonic).  The
        fast path applies when the queue is idle at the first arrival and
        consecutive arrivals are spaced at least one service time apart —
        then every operation is accepted at depth one and only the last
        finish time survives, so the whole batch collapses to O(1) state
        updates.  Any other shape falls back to the per-element loop.
        Returns the number accepted.
        """
        arrivals = np.asarray(now_cycles, dtype=np.float64)
        count = int(arrivals.shape[0])
        if count == 0:
            return 0
        first = float(arrivals[0])
        self._drain(first)
        service = self.service_cycles
        # Spacing test mirrors the serial drain comparison bit for bit:
        # operation i-1 (finishing at now[i-1] + service) has left the
        # queue by arrival i.
        if (
            not self._finish_times
            and self._last_finish <= first
            and bool(np.all(arrivals[:-1] + service <= arrivals[1:]))
        ):
            stats = self.stats
            stats.accepted += count
            if stats.high_water < 1:
                stats.high_water = 1
            finish = float(arrivals[-1]) + service
            self._finish_times.append(finish)
            self._last_finish = finish
            return count
        accepted = 0
        offer = self.offer
        for now_cycle in arrivals.tolist():
            if offer(now_cycle):
                accepted += 1
        return accepted

    def reset(self) -> None:
        """Clear in-flight operations and statistics."""
        self._finish_times.clear()
        self._last_finish = 0.0
        self.stats = BufferStats()

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Mutable state for board checkpoints (configuration excluded)."""
        return {
            "finish_times": list(self._finish_times),
            "last_finish": self._last_finish,
            "stats": {
                "accepted": self.stats.accepted,
                "rejected": self.stats.rejected,
                "high_water": self.stats.high_water,
                "injected": self.stats.injected,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed buffer state."""
        self._finish_times = deque(float(t) for t in state["finish_times"])
        self._last_finish = float(state["last_finish"])
        stats = state["stats"]
        self.stats = BufferStats(
            accepted=int(stats["accepted"]),
            rejected=int(stats["rejected"]),
            high_water=int(stats["high_water"]),
            injected=int(stats.get("injected", 0)),
        )
