"""The address-filter FPGA.

First stage of the board's pipeline (Section 3.1): it interfaces with the
6xx bus, discards transactions that are irrelevant to cache emulation —
I/O register accesses, interrupts, sync tenures, and tenures that were
retried by other bus devices (they will be reissued, so processing them
would double-count) — and forwards the survivors, grouped by bus ID, to the
global events counter FPGA.

Its small input buffer accepts operations at the full 100 MHz bus rate; the
deeper pacing buffers live in the node controllers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.tx_buffer import FILTER_BUFFER_ENTRIES, TransactionBuffer


@dataclass
class FilterStats:
    """What the filter saw and what it discarded."""

    observed: int = 0
    forwarded: int = 0
    filtered_io: int = 0
    filtered_interrupts: int = 0
    filtered_sync: int = 0
    filtered_retried: int = 0

    def snapshot(self) -> dict:
        """Counter-style dict for console statistics extraction."""
        return {
            "filter.observed": self.observed,
            "filter.forwarded": self.forwarded,
            "filter.io": self.filtered_io,
            "filter.interrupts": self.filtered_interrupts,
            "filter.sync": self.filtered_sync,
            "filter.retried": self.filtered_retried,
        }


class AddressFilter:
    """Filters bus tenures down to the coherent-memory stream.

    The filter's :meth:`admit` returns True when the tenure should continue
    into the emulation pipeline.  Filtered tenures consume no buffer space
    ("Operations such as I/O register accesses, interrupts or memory
    operations that are rejected by other system bus devices are filtered
    out and do not take up any transaction buffer space", Section 3.3).
    """

    def __init__(self) -> None:
        self.stats = FilterStats()
        # The input buffer runs at full bus rate: service one op per cycle.
        self.buffer = TransactionBuffer(
            capacity=FILTER_BUFFER_ENTRIES, service_cycles=1.0
        )

    def admit(
        self,
        command: BusCommand,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        """Decide whether a tenure enters the emulation pipeline."""
        stats = self.stats
        stats.observed += 1
        if command in (BusCommand.IO_READ, BusCommand.IO_WRITE):
            stats.filtered_io += 1
            return False
        if command is BusCommand.INTERRUPT:
            stats.filtered_interrupts += 1
            return False
        if command is BusCommand.SYNC:
            stats.filtered_sync += 1
            return False
        if snoop_response is SnoopResponse.RETRY:
            stats.filtered_retried += 1
            return False
        self.buffer.offer(now_cycle)
        stats.forwarded += 1
        return True

    def reset(self) -> None:
        """Console re-initialisation."""
        self.stats = FilterStats()
        self.buffer.reset()

    def state_dict(self) -> dict:
        """Mutable state for board checkpoints."""
        return {
            "stats": {
                "observed": self.stats.observed,
                "forwarded": self.stats.forwarded,
                "filtered_io": self.stats.filtered_io,
                "filtered_interrupts": self.stats.filtered_interrupts,
                "filtered_sync": self.stats.filtered_sync,
                "filtered_retried": self.stats.filtered_retried,
            },
            "buffer": self.buffer.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed filter state."""
        stats = state["stats"]
        self.stats = FilterStats(
            observed=int(stats["observed"]),
            forwarded=int(stats["forwarded"]),
            filtered_io=int(stats["filtered_io"]),
            filtered_interrupts=int(stats["filtered_interrupts"]),
            filtered_sync=int(stats["filtered_sync"]),
            filtered_retried=int(stats["filtered_retried"]),
        )
        self.buffer.load_state_dict(state["buffer"])
