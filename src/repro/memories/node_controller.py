"""One emulated shared-cache node (an SMP node controller FPGA).

Each of the board's four node controllers runs the cache-emulation firmware
for one emulated node: it receives the filtered bus-transaction stream, and
for every transaction applies its loaded protocol table to the SDRAM tag/state
directory — as a *local* operation when the requesting CPU belongs to this
node, or as a *remote* operation when a peer node of the same coherence group
issued it (keeping multiple emulated caches coherent, Section 2.1/2.2).

Besides maintaining the directory, the controller attributes every local L2
miss to the source that satisfies it in the target machine — another L2
(modified/shared intervention, taken from the real bus's combined snoop
response), the emulated cache itself, or memory — which is exactly the
Figure 12 breakdown.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.errors import EmulationError
from repro.memories.cache_model import TagStateDirectory
from repro.memories.config import CacheNodeConfig
from repro.memories.counters import CounterBank
from repro.memories.protocol_table import (
    CacheOp,
    LineState,
    ProtocolTable,
    load_protocol,
)
from repro.memories.replacement import make_policy
from repro.memories.sdram import SdramModel
from repro.memories.tx_buffer import TransactionBuffer


class NodeController:
    """Cache-emulation firmware for one node controller FPGA.

    Args:
        index: controller position on the board (0..3, i.e. Nodes A..D).
        config: the emulated cache's configuration.
        cpus: host CPU IDs local to this node.
        group: coherence group (see :mod:`repro.target.mapping`).
        protocol: protocol table; defaults to the one named in ``config``.
        rng: generator for the random replacement policy, if configured.
        buffer: transaction buffer pacing the SDRAM; a default 512-entry
            buffer is created when omitted.
        sdram: optional bank-level SDRAM timing model
            (:class:`repro.memories.sdram.SdramModel`); when present each
            directory operation is charged its address-dependent cost
            instead of the constant 42%-bandwidth service time.
    """

    def __init__(
        self,
        index: int,
        config: CacheNodeConfig,
        cpus: Sequence[int],
        group: int = 0,
        protocol: Optional[ProtocolTable] = None,
        rng: Optional[np.random.Generator] = None,
        buffer: Optional[TransactionBuffer] = None,
        sdram: Optional["SdramModel"] = None,
        ecc: bool = False,
        scrub_interval: Optional[float] = None,
    ) -> None:
        self.index = index
        self.config = config
        self.cpus = frozenset(cpus)
        self.group = group
        self.protocol = protocol if protocol is not None else load_protocol(
            config.protocol
        )
        policy = make_policy(config.replacement, config.assoc, rng)
        self.ecc = ecc
        self.scrubber = None
        self.resilience = CounterBank(prefix=f"node{index}.resilience")
        if ecc:
            from repro.memories.ecc import (
                DEFAULT_SCRUB_INTERVAL,
                DirectoryScrubber,
                EccTagStateDirectory,
            )

            self.directory = EccTagStateDirectory(config, policy)
            self.scrubber = DirectoryScrubber(
                self.directory,
                counters=self.resilience,
                interval_cycles=(
                    DEFAULT_SCRUB_INTERVAL
                    if scrub_interval is None
                    else scrub_interval
                ),
            )
        else:
            self.directory = TagStateDirectory(config, policy)
        self.buffer = buffer if buffer is not None else TransactionBuffer()
        self.sdram = sdram
        self.counters = CounterBank(prefix=f"node{index}")
        self._table = self.protocol.raw_table()
        self._fill = self.protocol.fill

    def _offer(self, address: int, now_cycle: float) -> bool:
        """Admit one directory operation, pricing it via the SDRAM model."""
        if self.sdram is None:
            return self.buffer.offer(now_cycle)
        amap = self.directory.amap
        entry_address = amap.set_index(address) * self.config.assoc * 8
        cost = self.sdram.access_cycles(entry_address, now_cycle)
        return self.buffer.offer(now_cycle, cost)

    # ------------------------------------------------------------------ #
    # Local operations
    # ------------------------------------------------------------------ #

    def process_local(
        self,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
        peers: Sequence["NodeController"],
    ) -> bool:
        """Handle a tenure issued by one of this node's CPUs.

        Returns False when the transaction buffer was full and the operation
        had to be dropped (the board will post a bus retry).
        """
        if not self._offer(address, now_cycle):
            return False

        counters = self.counters
        directory = self.directory
        set_index, tag, way = directory.probe(address)
        if way >= 0 and self.ecc:
            way = self._verify_probed(address, set_index, way)

        if command is BusCommand.READ:
            counters.increment("local.read")
            op = CacheOp.LOCAL_READ
        elif command is BusCommand.RWITM:
            counters.increment("local.write")
            op = CacheOp.LOCAL_WRITE
        elif command is BusCommand.DCLAIM:
            counters.increment("local.write")
            counters.increment("local.upgrade")
            op = CacheOp.LOCAL_WRITE
        elif command is BusCommand.CASTOUT:
            counters.increment("local.castout")
            op = CacheOp.LOCAL_CASTOUT
        else:
            raise EmulationError(f"non-memory command {command.name} reached a node")

        kind = _OP_KIND[op]
        fetches_data = command in (BusCommand.READ, BusCommand.RWITM)

        if way >= 0:
            state = LineState(directory.state_at(set_index, way))
            transition = self._table[(int(op), int(state))]
            counters.increment(f"hit.{kind}")
            counters.increment(f"hit_state.{state.name}")
            if transition.next_state is LineState.INVALID:
                directory.invalidate(set_index, way)
            else:
                directory.set_state(set_index, way, int(transition.next_state))
                directory.touch(set_index, way)
            # A write hit on a non-exclusive line (Shared, or dirty-shared
            # Owned) must invalidate peer copies — the target machine's
            # inter-node upgrade.  Owned matters: after a remote read
            # demotes Modified to Owned, peers hold Shared copies, and a
            # write hit that skipped the probe would leave them stale
            # (found by the repro.verify model checker's SWMR invariant).
            if op is CacheOp.LOCAL_WRITE and state in (
                LineState.SHARED, LineState.OWNED
            ):
                for peer in peers:
                    peer.process_remote(CacheOp.REMOTE_WRITE, address, now_cycle)
            if fetches_data:
                self._attribute_satisfaction(snoop_response, hit=True)
            return True

        # Miss path.
        counters.increment(f"miss.{kind}")
        if op is CacheOp.LOCAL_CASTOUT:
            # Non-inclusive caches receive castouts for lines they no longer
            # hold (Section 3.4); allocate write-back data in a dirty state.
            counters.increment("inclusion.castout_miss")
            fill_state = self._fill.write
        elif op is CacheOp.LOCAL_WRITE:
            for peer in peers:
                peer.process_remote(CacheOp.REMOTE_WRITE, address, now_cycle)
            fill_state = self._fill.write
        else:  # LOCAL_READ
            shared_elsewhere = False
            for peer in peers:
                held, dirty = peer.process_remote(
                    CacheOp.REMOTE_READ, address, now_cycle
                )
                if held:
                    shared_elsewhere = True
                if dirty:
                    counters.increment("intervention.from_peer")
            fill_state = (
                self._fill.read_shared if shared_elsewhere else self._fill.read_alone
            )

        evicted = directory.install(set_index, tag, int(fill_state))
        counters.increment(f"fill.{fill_state.name}")
        if evicted is not None:
            _victim_addr, victim_state = evicted
            if LineState(victim_state).is_dirty:
                counters.increment("evict.dirty")
            else:
                counters.increment("evict.clean")
        if fetches_data:
            self._attribute_satisfaction(snoop_response, hit=False)
        return True

    def _verify_probed(self, address: int, set_index: int, way: int) -> int:
        """ECC demand-check of a probed line; returns the post-repair way.

        Real SECDED SDRAM verifies every word it reads.  A corrected flip
        may change the line's tag back (so the probed hit was false), and
        an uncorrectable word drops the line — both cases re-probe so the
        caller always operates on a verified view.
        """
        from repro.memories.ecc import EccOutcome

        outcome = self.directory.verify_line(set_index, way, self.resilience)
        if outcome is EccOutcome.CLEAN:
            return way
        _set_index, _tag, way = self.directory.probe(address)
        return way

    def ecc_self_check(self) -> int:
        """Sweep the whole directory through ECC; returns uncorrectable lines.

        The supervisor's per-segment health check: a node reporting
        uncorrectable directory corruption here is a candidate for being
        taken offline.  The sweep is strictly read-only — no counters
        move, no lines drop, no repairs happen (that stays with the
        patrol scrubber) — so running it never perturbs bit-identity
        with an unsupervised replay.
        """
        if not self.ecc:
            return 0
        return self.directory.self_check()

    def can_accept(self, now_cycle: float) -> bool:
        """Whether this controller could admit one more operation now."""
        return self.buffer.can_accept(now_cycle)

    def tick(self, now_cycle: float) -> None:
        """Advance background machinery (the ECC patrol scrubber)."""
        if self.scrubber is not None:
            self.scrubber.tick(now_cycle)

    def resync_address(self, address: int, now_cycle: float) -> bool:
        """Conservatively resynchronise after a missed (lost) bus tenure.

        A passive monitor that skipped a cycle cannot know what the lost
        tenure did to this line, so the only safe repair is to invalidate
        any copy and let the next reference refill it — over-counting
        misses slightly rather than silently diverging from the host.
        Returns True when a line was dropped.
        """
        self.resilience.increment("resync.checked")
        directory = self.directory
        set_index, _tag, way = directory.probe(address)
        if way >= 0 and self.ecc:
            way = self._verify_probed(address, set_index, way)
        if way < 0:
            return False
        directory.invalidate(set_index, way)
        self.resilience.increment("resync.invalidated")
        return True

    def _attribute_satisfaction(
        self, snoop_response: SnoopResponse, hit: bool
    ) -> None:
        """Figure 12 accounting: where did this L2 miss get its data?"""
        counters = self.counters
        if snoop_response is SnoopResponse.MODIFIED:
            counters.increment("satisfied.mod_int")
        elif snoop_response is SnoopResponse.SHARED:
            counters.increment("satisfied.shr_int")
        elif hit:
            counters.increment("satisfied.l3")
        else:
            counters.increment("satisfied.memory")

    # ------------------------------------------------------------------ #
    # Remote operations
    # ------------------------------------------------------------------ #

    def process_remote(
        self,
        op: CacheOp,
        address: int,
        now_cycle: float,
    ) -> tuple[bool, bool]:
        """Handle a tenure from another node of the same coherence group.

        Returns (held a valid copy, supplied dirty data).  Remote probes
        consume directory bandwidth too, so they pass through the
        transaction buffer; an overflowing remote probe is dropped silently
        (it carries no data in the emulated machine).
        """
        if op is CacheOp.REMOTE_READ:
            self.counters.increment("remote.read")
        else:
            self.counters.increment("remote.write")
        if not self._offer(address, now_cycle):
            return False, False

        directory = self.directory
        set_index, _tag, way = directory.probe(address)
        if way >= 0 and self.ecc:
            way = self._verify_probed(address, set_index, way)
        if way < 0:
            return False, False
        state = LineState(directory.state_at(set_index, way))
        transition = self._table[(int(op), int(state))]
        supplied_dirty = transition.is_hit and state.is_dirty
        if supplied_dirty:
            self.counters.increment("remote.supplied_dirty")
        if transition.next_state is LineState.INVALID:
            directory.invalidate(set_index, way)
            self.counters.increment("remote.invalidated")
        else:
            directory.set_state(set_index, way, int(transition.next_state))
        return True, supplied_dirty

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #

    def references(self) -> int:
        """Local data references (reads + writes; castouts excluded)."""
        counters = self.counters
        return counters.read("local.read") + counters.read("local.write")

    def misses(self) -> int:
        """Local read + write misses."""
        counters = self.counters
        return counters.read("miss.read") + counters.read("miss.write")

    def miss_ratio(self) -> float:
        """Emulated-cache miss ratio over local data references."""
        references = self.references()
        if references == 0:
            return 0.0
        return self.misses() / references

    def satisfied_breakdown(self) -> dict:
        """Figure 12 categories as fractions of data-fetching references."""
        counters = self.counters
        categories = {
            "memory": counters.read("satisfied.memory"),
            "l3": counters.read("satisfied.l3"),
            "mod_int": counters.read("satisfied.mod_int"),
            "shr_int": counters.read("satisfied.shr_int"),
        }
        total = sum(categories.values())
        if total == 0:
            return {name: 0.0 for name in categories}
        return {name: value / total for name, value in categories.items()}

    def buffer_snapshot(self) -> dict:
        """Per-node transaction-buffer observables for board statistics.

        Surfacing ``high_water`` and ``rejected`` is what lets an operator
        tell *why* the board posted retries (Section 3.3's overflow case)
        instead of discovering it post-hoc from skewed miss ratios.
        """
        stats = self.buffer.stats
        prefix = f"node{self.index}.buffer"
        return {
            f"{prefix}.accepted": stats.accepted,
            f"{prefix}.rejected": stats.rejected,
            f"{prefix}.high_water": stats.high_water,
        }

    def reset(self) -> None:
        """Console re-initialisation: clear directory, buffer and counters."""
        self.directory.clear()
        self.buffer.reset()
        self.counters.reset()
        self.resilience.reset()
        if self.scrubber is not None:
            self.scrubber.reset()

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Mutable controller state for board checkpoints."""
        state = {
            "directory": self.directory.state_dict(),
            "buffer": self.buffer.state_dict(),
            "counters": self.counters.state_dict(),
            "resilience": self.resilience.state_dict(),
        }
        if self.sdram is not None:
            state["sdram"] = self.sdram.state_dict()
        if self.scrubber is not None:
            state["scrubber"] = self.scrubber.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed controller state."""
        self.directory.load_state_dict(state["directory"])
        self.buffer.load_state_dict(state["buffer"])
        self.counters.load_state_dict(state["counters"])
        self.resilience.load_state_dict(state.get("resilience", {}))
        if self.sdram is not None and "sdram" in state:
            self.sdram.load_state_dict(state["sdram"])
        if self.scrubber is not None and "scrubber" in state:
            self.scrubber.load_state_dict(state["scrubber"])


_OP_KIND = {
    CacheOp.LOCAL_READ: "read",
    CacheOp.LOCAL_WRITE: "write",
    CacheOp.LOCAL_CASTOUT: "castout",
}
