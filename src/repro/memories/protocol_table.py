"""Programmable coherence-protocol state tables.

Section 3.2 of the paper: "cache state transitions are modeled as a lookup
table which consists of the type of memory operation, the current state of
the cache entry, and the resulting state ...  The table lookup map file is
loaded into each cache node controller FPGA during the initialization phase.
Different state table files could be loaded to different node controller
FPGAs to experiment with different coherence protocols during the same
measurement."

This module is that mechanism in software.  A :class:`ProtocolTable` maps
``(operation, current state)`` to ``(next state, hit?)`` plus *fill rules*
that pick the allocation state of a missing line depending on whether another
emulated node holds a copy.  Tables serialise to and from plain dictionaries
(the "map file"), and three firmware-builtin protocols ship: MSI, MESI and
MOESI.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

from repro.common.errors import ProtocolError


class CacheOp(enum.IntEnum):
    """Operations a node controller applies to its directory.

    ``LOCAL_*`` operations come from CPUs mapped to this node;
    ``REMOTE_*`` operations are tenures from CPUs of *other* emulated nodes,
    which the controller snoops to keep multiple emulated caches coherent.
    """

    LOCAL_READ = 0
    LOCAL_WRITE = 1       # RWITM or DCLAIM from a local CPU
    LOCAL_CASTOUT = 2     # dirty L2 line written back into this cache
    REMOTE_READ = 3
    REMOTE_WRITE = 4


class LineState(enum.IntEnum):
    """Superset of states used by the shipped protocols.

    A given protocol table may use only a subset (MSI never produces
    ``EXCLUSIVE`` or ``OWNED``).
    """

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3
    OWNED = 4

    @property
    def is_valid(self) -> bool:
        return self is not LineState.INVALID

    @property
    def is_dirty(self) -> bool:
        """States whose eviction requires a write-back."""
        return self in (LineState.MODIFIED, LineState.OWNED)


@dataclass(frozen=True)
class Transition:
    """Result of one table lookup.

    Attributes:
        next_state: state the line moves to.
        is_hit: whether the operation counts as a cache hit (it found valid
            data, or for remote ops, whether this node supplied data).
    """

    next_state: LineState
    is_hit: bool


@dataclass(frozen=True)
class FillRules:
    """Allocation states for lines installed on a miss.

    Attributes:
        read_shared: state after a local read miss when some other emulated
            node holds the line.
        read_alone: state after a local read miss when no other node holds
            the line.
        write: state after a local write (RWITM) miss.
    """

    read_shared: LineState
    read_alone: LineState
    write: LineState


class ProtocolTable:
    """One loadable protocol: a transition table plus fill rules.

    Args:
        name: protocol name (reported by the console).
        states: states this protocol may place a line in (excluding INVALID).
        transitions: mapping from (op, current valid state) to Transition.
        fill: allocation rules for misses.

    Raises:
        ProtocolError: if the table is not *closed* — i.e. some
            (operation, state) pair for a declared state is undefined, or a
            transition produces an undeclared state.
    """

    def __init__(
        self,
        name: str,
        states: Tuple[LineState, ...],
        transitions: Mapping[Tuple[CacheOp, LineState], Transition],
        fill: FillRules,
    ) -> None:
        self.name = name
        self.states = tuple(states)
        self.fill = fill
        self._table: Dict[Tuple[int, int], Transition] = {
            (int(op), int(state)): transition
            for (op, state), transition in transitions.items()
        }
        self._check_closed()

    def _check_closed(self) -> None:
        declared = set(self.states)
        if LineState.INVALID in declared:
            raise ProtocolError(f"{self.name}: INVALID must not be declared")
        for op in CacheOp:
            for state in declared:
                transition = self._table.get((int(op), int(state)))
                if transition is None:
                    raise ProtocolError(
                        f"{self.name}: missing transition ({op.name}, {state.name})"
                    )
                if (
                    transition.next_state is not LineState.INVALID
                    and transition.next_state not in declared
                ):
                    raise ProtocolError(
                        f"{self.name}: transition ({op.name}, {state.name}) "
                        f"produces undeclared state {transition.next_state.name}"
                    )
        for label, state in (
            ("read_shared", self.fill.read_shared),
            ("read_alone", self.fill.read_alone),
            ("write", self.fill.write),
        ):
            if state not in declared:
                raise ProtocolError(
                    f"{self.name}: fill rule {label} uses undeclared "
                    f"state {state.name}"
                )

    def lookup(self, op: CacheOp, state: LineState) -> Transition:
        """Table lookup; raises ProtocolError on an undefined pair."""
        transition = self._table.get((int(op), int(state)))
        if transition is None:
            raise ProtocolError(
                f"{self.name}: undefined transition ({op.name}, {state.name})"
            )
        return transition

    def raw_table(self) -> Dict[Tuple[int, int], Transition]:
        """The underlying int-keyed table (node controllers inline this)."""
        return self._table

    # ------------------------------------------------------------------ #
    # Map-file serialisation
    # ------------------------------------------------------------------ #

    def to_map(self) -> dict:
        """Serialise to the JSON-compatible 'map file' structure."""
        return {
            "name": self.name,
            "states": [state.name for state in self.states],
            "fill": {
                "read_shared": self.fill.read_shared.name,
                "read_alone": self.fill.read_alone.name,
                "write": self.fill.write.name,
            },
            "transitions": [
                {
                    "op": CacheOp(op).name,
                    "state": LineState(state).name,
                    "next": transition.next_state.name,
                    "hit": transition.is_hit,
                }
                for (op, state), transition in sorted(self._table.items())
            ],
        }

    @classmethod
    def from_map(cls, data: Mapping) -> "ProtocolTable":
        """Deserialise a map file produced by :meth:`to_map`."""
        try:
            states = tuple(LineState[name] for name in data["states"])
            fill = FillRules(
                read_shared=LineState[data["fill"]["read_shared"]],
                read_alone=LineState[data["fill"]["read_alone"]],
                write=LineState[data["fill"]["write"]],
            )
            transitions = {
                (CacheOp[entry["op"]], LineState[entry["state"]]): Transition(
                    next_state=LineState[entry["next"]],
                    is_hit=bool(entry["hit"]),
                )
                for entry in data["transitions"]
            }
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed protocol map file: {exc}") from exc
        return cls(str(data["name"]), states, transitions, fill)

    def render(self) -> str:
        """ASCII state-transition table (what the console shows on demand).

        Rows are current states, columns operations; each cell shows the
        next state, with ``*`` marking transitions that supply data.
        """
        ops = list(CacheOp)
        header = ["state"] + [op.name for op in ops]
        widths = [max(len(header[0]), 9)] + [
            max(len(op.name), 10) for op in ops
        ]
        lines = [f"protocol {self.name!r}"]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for state in self.states:
            cells = [state.name.ljust(widths[0])]
            for op, width in zip(ops, widths[1:]):
                transition = self.lookup(op, state)
                text = transition.next_state.name + (
                    "*" if transition.is_hit else ""
                )
                cells.append(text.ljust(width))
            lines.append("  ".join(cells))
        lines.append(
            f"fills: read_shared={self.fill.read_shared.name} "
            f"read_alone={self.fill.read_alone.name} "
            f"write={self.fill.write.name}   (* = supplies data / hit)"
        )
        return "\n".join(lines)

    def save(self, path: Union[str, Path]) -> None:
        """Write the map file to disk (what the console uploads to FPGAs)."""
        Path(path).write_text(json.dumps(self.to_map(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ProtocolTable":
        """Read a map file from disk."""
        return cls.from_map(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------- #
# Firmware-builtin protocols
# ---------------------------------------------------------------------- #

_I, _S, _E, _M, _O = (
    LineState.INVALID,
    LineState.SHARED,
    LineState.EXCLUSIVE,
    LineState.MODIFIED,
    LineState.OWNED,
)
_LR, _LW, _LC, _RR, _RW = (
    CacheOp.LOCAL_READ,
    CacheOp.LOCAL_WRITE,
    CacheOp.LOCAL_CASTOUT,
    CacheOp.REMOTE_READ,
    CacheOp.REMOTE_WRITE,
)


def _msi() -> ProtocolTable:
    transitions = {
        (_LR, _S): Transition(_S, True),
        (_LR, _M): Transition(_M, True),
        (_LW, _S): Transition(_M, True),
        (_LW, _M): Transition(_M, True),
        (_LC, _S): Transition(_M, True),
        (_LC, _M): Transition(_M, True),
        (_RR, _S): Transition(_S, False),
        (_RR, _M): Transition(_S, True),   # supplies dirty data
        (_RW, _S): Transition(_I, False),
        (_RW, _M): Transition(_I, True),   # supplies dirty data, then dies
    }
    fill = FillRules(read_shared=_S, read_alone=_S, write=_M)
    return ProtocolTable("msi", (_S, _M), transitions, fill)


def _mesi() -> ProtocolTable:
    transitions = {
        (_LR, _S): Transition(_S, True),
        (_LR, _E): Transition(_E, True),
        (_LR, _M): Transition(_M, True),
        (_LW, _S): Transition(_M, True),
        (_LW, _E): Transition(_M, True),
        (_LW, _M): Transition(_M, True),
        (_LC, _S): Transition(_M, True),
        (_LC, _E): Transition(_M, True),
        (_LC, _M): Transition(_M, True),
        (_RR, _S): Transition(_S, False),
        (_RR, _E): Transition(_S, False),
        (_RR, _M): Transition(_S, True),
        (_RW, _S): Transition(_I, False),
        (_RW, _E): Transition(_I, False),
        (_RW, _M): Transition(_I, True),
    }
    fill = FillRules(read_shared=_S, read_alone=_E, write=_M)
    return ProtocolTable("mesi", (_S, _E, _M), transitions, fill)


def _moesi() -> ProtocolTable:
    transitions = {
        (_LR, _S): Transition(_S, True),
        (_LR, _E): Transition(_E, True),
        (_LR, _M): Transition(_M, True),
        (_LR, _O): Transition(_O, True),
        (_LW, _S): Transition(_M, True),
        (_LW, _E): Transition(_M, True),
        (_LW, _M): Transition(_M, True),
        (_LW, _O): Transition(_M, True),
        (_LC, _S): Transition(_M, True),
        (_LC, _E): Transition(_M, True),
        (_LC, _M): Transition(_M, True),
        (_LC, _O): Transition(_M, True),
        (_RR, _S): Transition(_S, False),
        (_RR, _E): Transition(_S, False),
        (_RR, _M): Transition(_O, True),   # keep ownership, supply data
        (_RR, _O): Transition(_O, True),   # owner keeps supplying
        (_RW, _S): Transition(_I, False),
        (_RW, _E): Transition(_I, False),
        (_RW, _M): Transition(_I, True),
        (_RW, _O): Transition(_I, True),
    }
    fill = FillRules(read_shared=_S, read_alone=_E, write=_M)
    return ProtocolTable("moesi", (_S, _E, _M, _O), transitions, fill)


_BUILTINS = {"msi": _msi, "mesi": _mesi, "moesi": _moesi}


def load_protocol(name: str) -> ProtocolTable:
    """Return a fresh instance of a firmware-builtin protocol table.

    Raises:
        ProtocolError: for an unknown protocol name.
    """
    factory = _BUILTINS.get(name.lower())
    if factory is None:
        raise ProtocolError(
            f"unknown protocol {name!r}; builtins are {sorted(_BUILTINS)}"
        )
    return factory()
