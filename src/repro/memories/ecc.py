"""Per-line SECDED protection and background scrubbing for the directory.

The SDRAM tag/state directory is the board's only large RAM structure; a
days-long run (the paper sizes its 40-bit counters for ">30 hours" of
continuous monitoring) gives soft errors time to accumulate.  Real server
SDRAM pairs every word with Hamming single-error-correct / double-error-
detect (SECDED) check bits and a background scrubber that sweeps the array,
correcting single-bit flips before a second flip in the same word turns
them uncorrectable.  This module adds exactly that to the reproduction:

* :func:`secded_encode` / :func:`secded_decode` — an extended-Hamming codec
  over the packed ``(tag, state)`` word of one directory line.
* :class:`EccTagStateDirectory` — a :class:`TagStateDirectory` that stores
  check bits alongside every line, verifies lines on access, and exposes
  :meth:`EccTagStateDirectory.inject_bit_flip` for the fault-injection
  layer (flipping a stored bit *without* refreshing the check bits, the
  way a real soft error would).
* :class:`DirectoryScrubber` — an incremental background sweep driven off
  the board's bus-cycle clock.

ECC is opt-in (``NodeController(..., ecc=True)``): with it disabled the
directory stores raw states and behaves bit-identically to the unprotected
board, which keeps zero-fault runs byte-comparable to the seed behavior.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError, ValidationError
from repro.memories.cache_model import TagStateDirectory
from repro.memories.counters import CounterBank

#: Bits reserved for the coherence state in the protected word.  LineState
#: needs 3; the fourth is headroom so an injected flip can produce an
#: *invalid* state encoding — the case on-access verification must catch.
STATE_BITS = 4
STATE_MASK = (1 << STATE_BITS) - 1

#: Default scrub cadence: one partial pass per this many bus cycles.
DEFAULT_SCRUB_INTERVAL = 10_000.0
#: Directory sets examined per scrub pass.
DEFAULT_SETS_PER_PASS = 64


# --------------------------------------------------------------------------- #
# Extended Hamming (SECDED) codec
# --------------------------------------------------------------------------- #


class EccOutcome(enum.Enum):
    """Result of verifying one protected word against its check bits."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


class SecdedCodec:
    """Extended-Hamming SECDED codec for a fixed data width.

    Data bits occupy the codeword positions that are not powers of two
    (1-based); positions ``2^i`` hold the Hamming parity bits and one extra
    overall-parity bit extends single-error correction to double-error
    detection.  Parity masks are precomputed so encode/verify are a handful
    of big-int ANDs and popcounts — this sits on the directory's install
    path when ECC is enabled.
    """

    def __init__(self, data_bits: int) -> None:
        if data_bits < 1:
            raise ValidationError(f"data width {data_bits} must be >= 1")
        self.data_bits = data_bits
        r = 1
        while (1 << r) < data_bits + r + 1:
            r += 1
        self.parity_bits = r
        # Codeword positions (1-based) of each data bit, in order.
        self._positions: List[int] = []
        position = 1
        while len(self._positions) < data_bits:
            if position & (position - 1):
                self._positions.append(position)
            position += 1
        self._position_of = {pos: i for i, pos in enumerate(self._positions)}
        # For each parity bit i: mask over *data-bit indices* whose codeword
        # position has bit i set.
        self._parity_masks: List[int] = []
        for i in range(r):
            mask = 0
            for data_index, pos in enumerate(self._positions):
                if pos & (1 << i):
                    mask |= 1 << data_index
            self._parity_masks.append(mask)

    def encode(self, data: int) -> int:
        """Check bits: r Hamming parity bits, plus overall parity at bit r."""
        if data < 0 or data >> self.data_bits:
            raise ValidationError(
                f"data {data:#x} does not fit in {self.data_bits} bits"
            )
        parity = 0
        for i, mask in enumerate(self._parity_masks):
            if bin(data & mask).count("1") & 1:
                parity |= 1 << i
        overall = (bin(data).count("1") + bin(parity).count("1")) & 1
        return parity | (overall << self.parity_bits)

    def decode(self, data: int, check: int) -> Tuple[int, EccOutcome]:
        """Verify ``data`` against stored ``check``; correct if possible.

        Returns the (possibly corrected) data word and the outcome.  Flips
        in the check bits themselves are detected and absorbed too.
        """
        r = self.parity_bits
        stored_parity = check & ((1 << r) - 1)
        stored_overall = (check >> r) & 1
        syndrome = 0
        for i, mask in enumerate(self._parity_masks):
            if bin(data & mask).count("1") & 1:
                syndrome |= 1 << i
        syndrome ^= stored_parity
        overall = (
            bin(data).count("1") + bin(stored_parity).count("1") + stored_overall
        ) & 1
        if syndrome == 0 and overall == 0:
            return data, EccOutcome.CLEAN
        if overall == 1:
            # Odd number of flips: assume exactly one, at codeword position
            # `syndrome`.  Syndrome 0 means the overall parity bit itself
            # flipped; a power-of-two syndrome means a parity bit flipped —
            # in both cases the data word is already correct.
            data_index = self._position_of.get(syndrome)
            if data_index is not None:
                data ^= 1 << data_index
            return data, EccOutcome.CORRECTED
        # Even parity but non-zero syndrome: an even number of flips —
        # beyond SECDED's correction power.
        return data, EccOutcome.UNCORRECTABLE


_CODEC_CACHE: dict = {}


def codec_for(data_bits: int) -> SecdedCodec:
    """Shared :class:`SecdedCodec` instance for a data width."""
    codec = _CODEC_CACHE.get(data_bits)
    if codec is None:
        codec = _CODEC_CACHE[data_bits] = SecdedCodec(data_bits)
    return codec


def secded_encode(data: int, data_bits: int) -> int:
    """Functional form of :meth:`SecdedCodec.encode`."""
    return codec_for(data_bits).encode(data)


def secded_decode(data: int, check: int, data_bits: int) -> Tuple[int, EccOutcome]:
    """Functional form of :meth:`SecdedCodec.decode`."""
    return codec_for(data_bits).decode(data, check)


# --------------------------------------------------------------------------- #
# ECC-protected directory
# --------------------------------------------------------------------------- #


@dataclass
class EccStats:
    """Model-side ECC bookkeeping (the counter bank holds the event counts).

    Attributes:
        scrub_passes: completed incremental scrub passes.
        lines_scrubbed: lines examined by the scrubber.
    """

    scrub_passes: int = 0
    lines_scrubbed: int = 0


class EccTagStateDirectory(TagStateDirectory):
    """A tag/state directory whose lines carry SECDED check bits.

    The protected word of one line is ``(tag << STATE_BITS) | state``; its
    check bits are packed into the high bits of the stored state integer, so
    replacement policies — which reorder the parallel ``tags``/``states``
    lists in lockstep — keep data and check bits associated for free.

    Legitimate writes (install / set_state) refresh the check bits; the
    fault injector's :meth:`inject_bit_flip` deliberately does not, exactly
    like a particle strike in SDRAM.
    """

    #: Physical address width bounding the tag (the 50-bit trace field).
    ADDRESS_BITS = 50

    def __init__(self, config, policy=None) -> None:
        super().__init__(config, policy)
        amap = self.amap
        tag_bits = max(
            1, self.ADDRESS_BITS - amap.offset_bits - amap.index_bits
        )
        self._data_bits = STATE_BITS + tag_bits
        self._codec = codec_for(self._data_bits)
        self._check_shift = STATE_BITS + 4  # state field + headroom
        self.ecc_stats = EccStats()

    # -- encoding helpers ------------------------------------------------ #

    def _encode(self, tag: int, state: int) -> int:
        word = (tag << STATE_BITS) | (state & STATE_MASK)
        check = self._codec.encode(word)
        return (state & STATE_MASK) | (check << self._check_shift)

    # -- overridden hot-path operations ---------------------------------- #

    def state_at(self, set_index: int, way: int) -> int:
        return self._states[set_index][way] & STATE_MASK

    def set_state(self, set_index: int, way: int, state: int) -> None:
        tag = self._tags[set_index][way]
        self._states[set_index][way] = self._encode(tag, state)

    def install(self, set_index: int, tag: int, state: int):
        result = super().install(set_index, tag, self._encode(tag, state))
        if result is None:
            return None
        victim_addr, victim_stored = result
        return victim_addr, self._victim_state(victim_addr, victim_stored)

    def _victim_state(self, victim_addr: int, stored: int) -> int:
        """State of an evicted line, ECC-verified on its way out.

        A line can sit corrupted between scrub passes and be chosen as the
        replacement victim without ever being re-accessed; this is the one
        read path :meth:`verify_line` cannot cover (the line is already
        gone).  Correct what is correctable; anything still outside the
        state alphabet leaves as INVALID (a clean eviction) rather than
        crashing the protocol-table lookup.
        """
        state = stored & STATE_MASK
        word = (self.amap.tag(victim_addr) << STATE_BITS) | state
        corrected, outcome = self._codec.decode(word, stored >> self._check_shift)
        if outcome is not EccOutcome.UNCORRECTABLE:
            state = corrected & STATE_MASK
        if not self._state_is_valid(state):
            from repro.memories.protocol_table import LineState

            return int(LineState.INVALID)
        return state

    def invalidate(self, set_index: int, way: int) -> int:
        return super().invalidate(set_index, way) & STATE_MASK

    def lookup_state(self, address: int) -> int:
        return super().lookup_state(address) & STATE_MASK

    def iter_lines(self):
        for address, stored in super().iter_lines():
            yield address, stored & STATE_MASK

    # -- verification, scrubbing, injection ------------------------------ #

    def verify_line(
        self,
        set_index: int,
        way: int,
        counters: Optional[CounterBank] = None,
    ) -> EccOutcome:
        """Check one line's word against its check bits; repair in place.

        Single-bit flips (in tag, state or the check bits) are corrected.
        Uncorrectable words, words whose corrected state is not a valid
        encoding, and corrections that would duplicate another way's tag
        are conservatively invalidated — the emulated line is refetched on
        its next reference, which only ever *overstates* the miss ratio.
        """
        tags = self._tags[set_index]
        states = self._states[set_index]
        stored = states[way]
        tag = tags[way]
        word = (tag << STATE_BITS) | (stored & STATE_MASK)
        check = stored >> self._check_shift
        corrected, outcome = self._codec.decode(word, check)
        if outcome is EccOutcome.CLEAN:
            return outcome
        if counters is not None:
            counters.increment("ecc.detected")
        if outcome is EccOutcome.UNCORRECTABLE:
            if counters is not None:
                counters.increment("ecc.uncorrectable")
            super().invalidate(set_index, way)
            return outcome
        new_tag = corrected >> STATE_BITS
        new_state = corrected & STATE_MASK
        duplicate = new_tag != tag and new_tag in tags
        if duplicate or not self._state_is_valid(new_state):
            # Correcting would collide with another resident line (the flip
            # let a second copy of the tag be installed meanwhile) or the
            # original word itself was corrupt beyond the state alphabet:
            # drop the line instead of guessing.
            if counters is not None:
                counters.increment("ecc.dropped")
            super().invalidate(set_index, way)
            return EccOutcome.UNCORRECTABLE
        tags[way] = new_tag
        states[way] = self._encode(new_tag, new_state)
        self._rebuild_way_map(set_index)
        if counters is not None:
            counters.increment("ecc.corrected")
        return outcome

    @staticmethod
    def _state_is_valid(state: int) -> bool:
        from repro.memories.protocol_table import LineState

        try:
            LineState(state)
        except ValueError:
            return False
        return True

    def self_check(self) -> int:
        """Count resident lines whose stored word is beyond repair.

        A strictly read-only probe: unlike :meth:`verify_line` it never
        repairs, invalidates or counts anything, so running it changes no
        state whatsoever.  The run supervisor calls it between replay
        segments to decide whether a directory bank has failed hard
        enough to take the node offline; *repair* of correctable damage
        stays with the patrol scrubber at its own cadence, which keeps
        supervised runs bit-identical to unsupervised ones even while
        faults are being injected.

        Counts the same conditions :meth:`verify_line` would invalidate
        for: uncorrectable words, and corrections that would collide with
        another way's tag or land outside the state alphabet.
        """
        uncorrectable = 0
        for set_index in range(len(self._tags)):
            tags = self._tags[set_index]
            states = self._states[set_index]
            for way in range(len(tags)):
                stored = states[way]
                word = (tags[way] << STATE_BITS) | (stored & STATE_MASK)
                corrected, outcome = self._codec.decode(
                    word, stored >> self._check_shift
                )
                if outcome is EccOutcome.CLEAN:
                    continue
                if outcome is EccOutcome.UNCORRECTABLE:
                    uncorrectable += 1
                    continue
                new_tag = corrected >> STATE_BITS
                duplicate = new_tag != tags[way] and new_tag in tags
                if duplicate or not self._state_is_valid(corrected & STATE_MASK):
                    uncorrectable += 1
        return uncorrectable

    def scrub_set(
        self, set_index: int, counters: Optional[CounterBank] = None
    ) -> int:
        """Verify every line of one set; returns lines examined."""
        examined = 0
        way = 0
        # verify_line may drop lines, shrinking the list while we walk it.
        while way < len(self._tags[set_index]):
            outcome = self.verify_line(set_index, way, counters)
            examined += 1
            if outcome is not EccOutcome.UNCORRECTABLE:
                way += 1
        self.ecc_stats.lines_scrubbed += examined
        return examined

    @property
    def stored_bits(self) -> int:
        """Width of one stored line word: data plus SECDED check bits."""
        return self._data_bits + self._codec.parity_bits + 1

    def inject_bit_flip(self, set_index: int, way: int, bit: int) -> None:
        """Flip one stored bit of a line without refreshing its check bits.

        ``bit`` indexes the protected word: bits ``0..STATE_BITS-1`` hit the
        coherence state, higher bits hit the tag.  Bits at or above the
        check-bit boundary flip a check bit instead.
        """
        if bit < 0 or bit >= self.stored_bits:
            raise ValidationError(f"bit index {bit} outside the stored word")
        tags = self._tags[set_index]
        states = self._states[set_index]
        if bit < STATE_BITS:
            states[way] ^= 1 << bit
        elif bit < self._data_bits:
            tags[way] ^= 1 << (bit - STATE_BITS)
            self._rebuild_way_map(set_index)
        else:
            states[way] ^= 1 << (self._check_shift + (bit - self._data_bits))


class DirectoryScrubber:
    """Incremental background scrub of one ECC directory.

    Driven from the board's bus-cycle clock: every ``interval_cycles`` the
    scrubber examines the next ``sets_per_pass`` sets, wrapping around the
    directory — the patrol-scrub pattern of real memory controllers.

    Args:
        directory: the :class:`EccTagStateDirectory` to sweep.
        counters: resilience counter bank receiving ecc.* event counts.
        interval_cycles: bus cycles between partial passes.
        sets_per_pass: sets examined per pass.
    """

    def __init__(
        self,
        directory: EccTagStateDirectory,
        counters: Optional[CounterBank] = None,
        interval_cycles: float = DEFAULT_SCRUB_INTERVAL,
        sets_per_pass: int = DEFAULT_SETS_PER_PASS,
    ) -> None:
        if not isinstance(directory, EccTagStateDirectory):
            raise ConfigurationError(
                "the scrubber requires an ECC-protected directory"
            )
        if interval_cycles <= 0 or sets_per_pass < 1:
            raise ConfigurationError(
                "scrub interval and sets per pass must be positive"
            )
        self.directory = directory
        self.counters = counters
        self.interval_cycles = float(interval_cycles)
        self.sets_per_pass = int(sets_per_pass)
        self._cursor = 0
        self._next_due = self.interval_cycles

    def full_pass_cycles(self) -> float:
        """Bus cycles one complete sweep of the directory takes."""
        num_sets = self.directory.config.num_sets
        passes = (num_sets + self.sets_per_pass - 1) // self.sets_per_pass
        return passes * self.interval_cycles

    def tick(self, now_cycle: float) -> int:
        """Run any scrub passes that have come due; returns lines examined."""
        examined = 0
        num_sets = self.directory.config.num_sets
        while now_cycle >= self._next_due:
            for _ in range(self.sets_per_pass):
                examined += self.directory.scrub_set(self._cursor, self.counters)
                self._cursor = (self._cursor + 1) % num_sets
            self.directory.ecc_stats.scrub_passes += 1
            self._next_due += self.interval_cycles
        return examined

    def scrub_all(self) -> int:
        """One immediate full sweep (console diagnostic; tests)."""
        examined = 0
        for set_index in range(self.directory.config.num_sets):
            examined += self.directory.scrub_set(set_index, self.counters)
        self.directory.ecc_stats.scrub_passes += 1
        return examined

    def reset(self) -> None:
        """Restart the patrol from set 0 with a fresh schedule."""
        self._cursor = 0
        self._next_due = self.interval_cycles

    def state_dict(self) -> dict:
        """Checkpointable scrubber position."""
        return {"cursor": self._cursor, "next_due": self._next_due}

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed scrubber position."""
        self._cursor = int(state["cursor"])
        self._next_due = float(state["next_due"])
