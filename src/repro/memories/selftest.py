"""Board self-test: the console's power-on diagnostic.

Section 3.1: the console FPGA "is necessary for all diagnostic activities".
This module is that diagnostic: it drives a deterministic test pattern
through the whole pipeline — filter, global counters, node controller,
directory, protocol table, transaction buffer — and checks every observable
against values computed from first principles.  A wrong counter pinpoints
the stage that broke.

Run it through the console::

    console = MemoriesConsole()
    board = console.power_up(machine)
    print(run_self_test(board).render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.memories.board import CacheEmulationFirmware, MemoriesBoard
from repro.memories.protocol_table import LineState


@dataclass
class SelfTestResult:
    """Outcome of one diagnostic run."""

    checks: List[tuple] = field(default_factory=list)  # (name, ok, detail)

    @property
    def passed(self) -> bool:
        return all(ok for _name, ok, _detail in self.checks)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, ok, detail))

    def render(self) -> str:
        lines = ["MemorIES self-test: " + ("PASS" if self.passed else "FAIL")]
        for name, ok, detail in self.checks:
            status = "ok  " if ok else "FAIL"
            suffix = f" ({detail})" if detail and not ok else ""
            lines.append(f"  [{status}] {name}{suffix}")
        return "\n".join(lines)


def run_self_test(board: MemoriesBoard) -> SelfTestResult:
    """Exercise the board's pipeline with a known pattern.

    The board is reset before and after; the test needs cache-emulation
    firmware with at least one node observing CPU 0.

    Raises:
        ConfigurationError: wrong firmware, or CPU 0 unmapped.
    """
    firmware = board.firmware
    if not isinstance(firmware, CacheEmulationFirmware):
        raise ConfigurationError("self-test requires cache-emulation firmware")
    node = next((n for n in firmware.nodes if 0 in n.cpus), None)
    if node is None:
        raise ConfigurationError("self-test needs a node observing CPU 0")

    board.reset()
    result = SelfTestResult()
    line = node.config.line_size

    def observe(cpu, command, address, response=SnoopResponse.NULL):
        """Drive one tenure; a crash anywhere in the pipeline is a FAIL,
        not a console crash (a diagnostic must survive broken hardware)."""
        from repro.common.errors import ReproError

        try:
            board.observe(
                BusTransaction(cpu, command, address, snoop_response=response)
            )
        except ReproError as error:
            result.record(
                f"pipeline raised on {command.name}", False, str(error)
            )

    # 1. Filter: non-memory and retried tenures must be discarded.
    observe(0, BusCommand.IO_READ, 0x0)
    observe(0, BusCommand.INTERRUPT, 0x0)
    observe(0, BusCommand.READ, 0x0, SnoopResponse.RETRY)
    filter_stats = board.address_filter.stats
    result.record(
        "address filter discards I/O, interrupts and retried tenures",
        filter_stats.filtered_io == 1
        and filter_stats.filtered_interrupts == 1
        and filter_stats.filtered_retried == 1
        and filter_stats.forwarded == 0,
        f"forwarded={filter_stats.forwarded}",
    )

    # 2. Cold read then re-read: one miss, one hit, exclusive fill (MESI)
    #    or the protocol's read_alone state in general.
    observe(0, BusCommand.READ, 0x10 * line)
    observe(0, BusCommand.READ, 0x10 * line)
    result.record(
        "cold read misses, warm read hits",
        node.counters.read("miss.read") == 1 and node.counters.read("hit.read") == 1,
        f"miss={node.counters.read('miss.read')} hit={node.counters.read('hit.read')}",
    )
    expected_fill = node.protocol.fill.read_alone
    result.record(
        f"read-alone fill state is {expected_fill.name}",
        node.directory.lookup_state(0x10 * line) == int(expected_fill),
    )

    # 3. RWITM dirties; the dirty line's eviction must be counted.
    observe(0, BusCommand.RWITM, 0x20 * line)
    result.record(
        "RWITM fills the write state",
        node.directory.lookup_state(0x20 * line)
        == int(node.protocol.fill.write),
    )

    # 4. Castout for an absent line: the Section 3.4 non-inclusive path.
    observe(0, BusCommand.CASTOUT, 0x30 * line)
    result.record(
        "castout of an absent line allocates dirty (non-inclusive cache)",
        node.counters.read("inclusion.castout_miss") == 1
        and LineState(node.directory.lookup_state(0x30 * line)).is_dirty,
    )

    # 5. Snoop-hint attribution: a MODIFIED response is a mod-int.
    observe(0, BusCommand.READ, 0x40 * line, SnoopResponse.MODIFIED)
    result.record(
        "modified snoop response attributed as intervention",
        node.counters.read("satisfied.mod_int") == 1,
    )

    # 6. Global counters saw exactly the forwarded tenures.
    tenures = board.global_counter.counters.read("bus.tenures")
    result.record(
        "global counter matches forwarded tenures",
        tenures == board.address_filter.stats.forwarded == 5,
        f"tenures={tenures}",
    )

    # 7. Transaction buffer accounted every directory operation.
    accepted = node.buffer.stats.accepted
    result.record(
        "transaction buffer accepted every operation without retries",
        accepted >= 5 and node.buffer.stats.rejected == 0,
        f"accepted={accepted}",
    )

    # 8. Clock: five tenures advanced the emulated clock accordingly.
    expected_cycles = 8 * board.cycles_per_tenure
    result.record(
        "board clock advanced per observed tenure",
        abs(board.now_cycle - expected_cycles) < 1e-9,
        f"now={board.now_cycle} expected={expected_cycles}",
    )

    board.reset()
    return result
