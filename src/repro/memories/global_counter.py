"""The global events counter and buffer FPGA.

Second stage of the board pipeline (Section 3.1): keeps machine-wide event
counters — bus cycles, tenures by command, traffic per requesting bus ID —
and forwards each transaction toward the node controller that owns the
requesting CPU.  The per-command and per-CPU counters are what the console
reads to report bus utilization and read/write ratios.
"""

from __future__ import annotations

import numpy as np

from repro.bus.transaction import BusCommand
from repro.memories.counters import CounterBank

_COMMAND_COUNTER = {
    BusCommand.READ: "bus.reads",
    BusCommand.RWITM: "bus.rwitms",
    BusCommand.DCLAIM: "bus.dclaims",
    BusCommand.CASTOUT: "bus.castouts",
}

#: Command-counter names indexed by raw command int (None = uncounted).
_COMMAND_COUNTER_BY_INT = [
    _COMMAND_COUNTER.get(command)
    for command in (
        BusCommand(i) for i in range(max(int(c) for c in BusCommand) + 1)
    )
]


class GlobalEventsCounter:
    """Global 40-bit counters over the filtered transaction stream."""

    def __init__(self) -> None:
        self.counters = CounterBank(prefix="global")

    def record(self, cpu_id: int, command: BusCommand, cycles_elapsed: float) -> None:
        """Account one forwarded tenure."""
        counters = self.counters
        counters.increment("bus.tenures")
        counters.increment("bus.cycles", int(cycles_elapsed))
        name = _COMMAND_COUNTER.get(command)
        if name is not None:
            counters.increment(name)
        counters.increment(f"cpu.{cpu_id}")

    def record_batch(
        self,
        cpu_ids: np.ndarray,
        commands: np.ndarray,
        cycles_per_tenure: float,
    ) -> None:
        """Account a batch of forwarded tenures sharing one tenure length.

        Counter increments commute, so this is exactly ``record`` applied
        per element — one bulk add per touched counter instead of four
        dict updates per tenure.
        """
        count = int(cpu_ids.shape[0])
        if count == 0:
            return
        counters = self.counters
        counters.increment("bus.tenures", count)
        counters.increment("bus.cycles", count * int(cycles_per_tenure))
        command_counts = np.bincount(
            commands.astype(np.int64), minlength=len(_COMMAND_COUNTER_BY_INT)
        )
        for command, name in enumerate(_COMMAND_COUNTER_BY_INT):
            if name is not None and command_counts[command]:
                counters.increment(name, int(command_counts[command]))
        cpu_counts = np.bincount(cpu_ids.astype(np.int64))
        for cpu_id in np.nonzero(cpu_counts)[0].tolist():
            counters.increment(f"cpu.{cpu_id}", int(cpu_counts[cpu_id]))

    def read_write_ratio(self) -> float:
        """Reads per write-intent tenure (RWITM + DCLAIM)."""
        counters = self.counters
        writes = counters.read("bus.rwitms") + counters.read("bus.dclaims")
        if writes == 0:
            return float("inf") if counters.read("bus.reads") else 0.0
        return counters.read("bus.reads") / writes

    def snapshot(self) -> dict:
        """Qualified counter dict for console statistics extraction."""
        return self.counters.snapshot()

    def reset(self) -> None:
        """Console re-initialisation."""
        self.counters.reset()

    def state_dict(self) -> dict:
        """Mutable state for board checkpoints."""
        return {"counters": self.counters.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed counter state."""
        self.counters.load_state_dict(state["counters"])
