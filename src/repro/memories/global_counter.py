"""The global events counter and buffer FPGA.

Second stage of the board pipeline (Section 3.1): keeps machine-wide event
counters — bus cycles, tenures by command, traffic per requesting bus ID —
and forwards each transaction toward the node controller that owns the
requesting CPU.  The per-command and per-CPU counters are what the console
reads to report bus utilization and read/write ratios.
"""

from __future__ import annotations

from repro.bus.transaction import BusCommand
from repro.memories.counters import CounterBank

_COMMAND_COUNTER = {
    BusCommand.READ: "bus.reads",
    BusCommand.RWITM: "bus.rwitms",
    BusCommand.DCLAIM: "bus.dclaims",
    BusCommand.CASTOUT: "bus.castouts",
}


class GlobalEventsCounter:
    """Global 40-bit counters over the filtered transaction stream."""

    def __init__(self) -> None:
        self.counters = CounterBank(prefix="global")

    def record(self, cpu_id: int, command: BusCommand, cycles_elapsed: float) -> None:
        """Account one forwarded tenure."""
        counters = self.counters
        counters.increment("bus.tenures")
        counters.increment("bus.cycles", int(cycles_elapsed))
        name = _COMMAND_COUNTER.get(command)
        if name is not None:
            counters.increment(name)
        counters.increment(f"cpu.{cpu_id}")

    def read_write_ratio(self) -> float:
        """Reads per write-intent tenure (RWITM + DCLAIM)."""
        counters = self.counters
        writes = counters.read("bus.rwitms") + counters.read("bus.dclaims")
        if writes == 0:
            return float("inf") if counters.read("bus.reads") else 0.0
        return counters.read("bus.reads") / writes

    def snapshot(self) -> dict:
        """Qualified counter dict for console statistics extraction."""
        return self.counters.snapshot()

    def reset(self) -> None:
        """Console re-initialisation."""
        self.counters.reset()

    def state_dict(self) -> dict:
        """Mutable state for board checkpoints."""
        return {"counters": self.counters.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed counter state."""
        self.counters.load_state_dict(state["counters"])
