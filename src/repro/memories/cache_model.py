"""The SDRAM-resident tag/state directory of one emulated cache node.

Each node controller FPGA owns four 64 MB SDRAM DIMMs holding, for every
line frame of the emulated cache, its tag, coherence state and replacement
metadata.  :class:`TagStateDirectory` models that structure: a set-associative
array of (tag, state) pairs managed by a pluggable replacement policy.

The directory itself is protocol-agnostic — it stores whatever state integers
the node controller's protocol table produces — and exposes fine-grained
operations (probe / touch / install / invalidate) so the controller can apply
table transitions between them.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.common.addr import AddressMap
from repro.common.errors import EmulationError
from repro.memories.config import CacheNodeConfig
from repro.memories.protocol_table import LineState
from repro.memories.replacement import ReplacementPolicy, make_policy

#: Physical address width bounding the stored tag (the 50-bit trace field).
_TAG_ADDRESS_BITS = 50


class TagStateDirectory:
    """Set-associative tag/state array for one emulated cache.

    Args:
        config: geometry (size / associativity / line size) of the cache.
        policy: replacement policy instance; defaults to the one named in
            ``config.replacement``.
    """

    def __init__(
        self,
        config: CacheNodeConfig,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        config.validate_geometry()
        self.config = config
        self.amap = AddressMap(line_size=config.line_size, num_sets=config.num_sets)
        self.policy = policy if policy is not None else make_policy(
            config.replacement, config.assoc
        )
        num_sets = config.num_sets
        self._tags: list[list[int]] = [[] for _ in range(num_sets)]
        self._states: list[list[int]] = [[] for _ in range(num_sets)]
        # One make_meta() call per set: a policy is free to return mutable
        # metadata, and replicating a single instance across sets would
        # alias every set's replacement state onto one object.
        self._meta: list = [self.policy.make_meta() for _ in range(num_sets)]
        # Per-set tag -> way index, the O(1) replacement for scanning
        # tags.index(tag) on every probe.  Kept coherent by every mutator;
        # rare paths that edit tags in place (fault injection, ECC repair)
        # rebuild their set via _rebuild_way_map.
        self._ways: list[dict[int, int]] = [{} for _ in range(num_sets)]

    def _rebuild_way_map(self, set_index: int) -> None:
        """Recompute one set's tag->way map from its tag list.

        First occurrence wins when (corrupted) duplicate tags exist, the
        same line ``list.index`` used to return.
        """
        tags = self._tags[set_index]
        ways: dict[int, int] = {}
        for way in range(len(tags) - 1, -1, -1):
            ways[tags[way]] = way
        self._ways[set_index] = ways

    # ------------------------------------------------------------------ #
    # Hot-path operations
    # ------------------------------------------------------------------ #

    def probe(self, address: int) -> Tuple[int, int, int]:
        """Locate ``address``; returns (set_index, tag, way) with way=-1 on miss."""
        amap = self.amap
        set_index = amap.set_index(address)
        tag = amap.tag(address)
        way = self._ways[set_index].get(tag, -1)
        return set_index, tag, way

    def state_at(self, set_index: int, way: int) -> int:
        """State integer stored at (set, way)."""
        return self._states[set_index][way]

    def set_state(self, set_index: int, way: int, state: int) -> None:
        """Overwrite the state at (set, way)."""
        self._states[set_index][way] = state

    def touch(self, set_index: int, way: int) -> int:
        """Record a hit for the replacement policy; returns the new way."""
        new_way, meta = self.policy.touch(
            self._tags[set_index], self._states[set_index], way, self._meta[set_index]
        )
        self._meta[set_index] = meta
        if new_way != way:
            if new_way == 0:
                # Promotion to MRU rotates positions 0..way one step; no
                # entry beyond the hit way moves.
                tags = self._tags[set_index]
                ways = self._ways[set_index]
                for position in range(way + 1):
                    ways[tags[position]] = position
            else:
                self._rebuild_way_map(set_index)
        return new_way

    def install(
        self, set_index: int, tag: int, state: int
    ) -> Optional[Tuple[int, int]]:
        """Allocate a line; returns (victim line address, victim state) or None."""
        victim, meta = self.policy.insert(
            self._tags[set_index],
            self._states[set_index],
            tag,
            state,
            self.config.assoc,
            self._meta[set_index],
        )
        self._meta[set_index] = meta
        # insert() may rotate, replace or evict anywhere in the set, so the
        # miss path pays one O(assoc) map rebuild.
        self._rebuild_way_map(set_index)
        if victim is None:
            return None
        victim_tag, victim_state = victim
        return self.amap.rebuild(victim_tag, set_index), victim_state

    def invalidate(self, set_index: int, way: int) -> int:
        """Drop the line at (set, way); returns its former state."""
        tags = self._tags[set_index]
        tag = tags.pop(way)
        state = self._states[set_index].pop(way)
        ways = self._ways[set_index]
        if ways.get(tag) == way:
            del ways[tag]
        for position in range(way, len(tags)):
            ways[tags[position]] = position
        return state

    # ------------------------------------------------------------------ #
    # Whole-directory queries (console, tests, peers)
    # ------------------------------------------------------------------ #

    def lookup_state(self, address: int) -> int:
        """State of the line holding ``address`` (INVALID when absent)."""
        set_index, tag, way = self.probe(address)
        if way < 0:
            return int(LineState.INVALID)
        return self._states[set_index][way]

    def resident_lines(self) -> int:
        """Number of valid lines currently in the directory."""
        return sum(len(tags) for tags in self._tags)

    def ways_in_set(self, set_index: int) -> int:
        """Number of resident lines in one set (fault injection, console)."""
        return len(self._tags[set_index])

    @property
    def stored_bits(self) -> int:
        """Flippable bits per line exposed to the fault injector.

        The unprotected directory confines injected flips to the tag field
        (a corrupted tag silently loses or aliases the line — exactly the
        soft-error symptom ECC exists to catch — while a flipped raw state
        would be an invalid protocol-table index and crash the emulation
        rather than skew it).  :class:`repro.memories.ecc.EccTagStateDirectory`
        overrides this to span the whole protected word.
        """
        amap = self.amap
        return max(1, _TAG_ADDRESS_BITS - amap.offset_bits - amap.index_bits)

    def inject_bit_flip(self, set_index: int, way: int, bit: int) -> None:
        """Fault injection: flip one stored tag bit of a resident line."""
        if bit < 0 or bit >= self.stored_bits:
            raise EmulationError(f"bit index {bit} outside the stored tag")
        self._tags[set_index][way] ^= 1 << bit
        self._rebuild_way_map(set_index)

    def occupancy(self) -> float:
        """Fraction of line frames in use."""
        return self.resident_lines() / self.config.num_lines

    def iter_lines(self) -> Iterator[Tuple[int, int]]:
        """Yield (line address, state) for every resident line."""
        rebuild = self.amap.rebuild
        for set_index, (tags, states) in enumerate(zip(self._tags, self._states)):
            for tag, state in zip(tags, states):
                yield rebuild(tag, set_index), state

    def check_invariants(self) -> None:
        """Assert structural invariants; used by property-based tests.

        Raises:
            EmulationError: if a set exceeds the associativity, holds
                duplicate tags, or parallel arrays lost sync.
        """
        assoc = self.config.assoc
        for set_index, (tags, states) in enumerate(zip(self._tags, self._states)):
            if len(tags) != len(states):
                raise EmulationError(f"set {set_index}: tag/state arrays diverged")
            if len(tags) > assoc:
                raise EmulationError(f"set {set_index}: {len(tags)} lines > {assoc}-way")
            if len(set(tags)) != len(tags):
                raise EmulationError(f"set {set_index}: duplicate tags")
            ways = self._ways[set_index]
            if len(ways) != len(tags) or any(
                way >= len(tags) or tags[way] != tag for tag, way in ways.items()
            ):
                raise EmulationError(f"set {set_index}: tag->way map out of sync")

    def clear(self) -> None:
        """Invalidate the whole directory (console power-up initialisation)."""
        for tags in self._tags:
            tags.clear()
        for states in self._states:
            states.clear()
        for ways in self._ways:
            ways.clear()
        self._meta = [self.policy.make_meta() for _ in range(self.config.num_sets)]

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Full mutable contents (tags, states, replacement metadata).

        For an ECC-protected subclass the stored state integers already
        carry the packed check bits, so this captures them for free.
        """
        return {
            "tags": [list(tags) for tags in self._tags],
            "states": [list(states) for states in self._states],
            "meta": list(self._meta),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore checkpointed contents into a same-geometry directory.

        Raises:
            EmulationError: when the checkpoint's set count does not match
                this directory's geometry.
        """
        tags = state["tags"]
        states = state["states"]
        meta = state["meta"]
        if len(tags) != self.config.num_sets or len(states) != len(tags):
            raise EmulationError(
                f"checkpoint has {len(tags)} sets; directory has "
                f"{self.config.num_sets}"
            )
        self._tags = [[int(t) for t in row] for row in tags]
        self._states = [[int(s) for s in row] for row in states]
        self._meta = [int(m) for m in meta]
        self._ways = [{} for _ in range(len(self._tags))]
        for set_index in range(len(self._tags)):
            self._rebuild_way_map(set_index)
