"""The MemorIES board: chassis, firmware dispatch, and trace replay.

:class:`MemoriesBoard` is the self-contained board of Figure 5.  It bundles
the address-filter FPGA, the global events counter FPGA and a *firmware*
object — the programmable part.  The shipped cache-emulation firmware
(:class:`CacheEmulationFirmware`) instantiates up to four node controllers
from a :class:`~repro.target.mapping.TargetMachine` programming; the
alternate firmware images of Section 2.3 live in
:mod:`repro.memories.firmware`.

The board can be used two ways, mirroring the paper:

* **Live**, plugged into a running :class:`~repro.host.smp.HostSMP` via
  ``host.plug_in(board)`` — it then observes every bus tenure in real time.
* **Offline**, replaying a collected :class:`~repro.bus.trace.BusTrace`
  with :meth:`MemoriesBoard.replay` ("a mechanism to collect traces for
  finer and repeatable off-line analysis", Section 1).

Time: the board keeps its own bus-cycle clock, advancing a configurable
number of cycles per observed tenure (2 busy cycles / assumed utilization).
``emulated_seconds`` is therefore the wall-clock time the real board would
have spent — the quantity Tables 3 and 4 compare against software
simulators.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from repro.telemetry.sampler import CounterSampler
    from repro.telemetry.spans import RunTrace

import numpy as np

from repro.bus.bus import ADDRESS_TENURE_CYCLES
from repro.bus.trace import BusTrace, iter_decoded
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ConfigurationError, EmulationError
from repro.memories.address_filter import AddressFilter
from repro.memories.global_counter import GlobalEventsCounter
from repro.memories.node_controller import NodeController
from repro.memories.protocol_table import CacheOp
from repro.target.mapping import TargetMachine

#: The observed bus utilization regime from Section 3.3 ("always varied
#: between 2% to 20%"); the board's clock model defaults to the top of it.
DEFAULT_ASSUMED_UTILIZATION = 0.20

#: Bus IDs above this belong to I/O bridges, not processors (see
#: :mod:`repro.host.smp`); the distinction matters for unmapped-master
#: castout handling below.
_MAX_PROCESSOR_ID = 15


class Firmware(Protocol):
    """What a loadable FPGA firmware image must implement."""

    def process(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        """Handle one filtered tenure; False requests a bus retry."""
        ...

    def snapshot(self) -> dict:
        """Counter snapshot for console statistics extraction."""
        ...

    def reset(self) -> None:
        """Re-initialise firmware state."""
        ...


class CacheEmulationFirmware:
    """The primary firmware: up to four emulated shared-cache nodes.

    Args:
        machine: the target-machine programming (node configs, CPU
            partitioning, coherence groups).
        seed: seed for any random replacement policies.
        ecc: protect every node's SDRAM directory with SECDED ECC and a
            background patrol scrubber (see :mod:`repro.memories.ecc`).
            Off by default — the unprotected directory is bit-identical to
            the original board model.
        scrub_interval: scrubber cadence override in bus cycles (only
            meaningful with ``ecc``).
    """

    def __init__(
        self,
        machine: TargetMachine,
        seed: int = 0,
        ecc: bool = False,
        scrub_interval: Optional[float] = None,
    ) -> None:
        self.machine = machine
        self.ecc = ecc
        self.nodes: List[NodeController] = []
        rng = np.random.default_rng(seed)
        self._rng = rng
        for index, spec in enumerate(machine.nodes):
            self.nodes.append(
                NodeController(
                    index=index,
                    config=spec.config,
                    cpus=spec.cpus,
                    group=spec.group,
                    rng=rng,
                    ecc=ecc,
                    scrub_interval=scrub_interval,
                )
            )
        # Nodes taken out of service by the degradation ladder (see
        # offline_node); excluded from routing, ticks and resyncs.
        self.offline: set = set()
        # Pre-computed routing: per group, cpu -> local controller, and each
        # controller's peer list within the group.
        self._groups: List[Tuple[Dict[int, NodeController], Dict[int, Tuple[NodeController, ...]], Tuple[NodeController, ...]]] = []
        self._rebuild_groups()

    def _rebuild_groups(self) -> None:
        """Recompute routing over the nodes still in service."""
        groups: List[Tuple[Dict[int, NodeController], Dict[int, Tuple[NodeController, ...]], Tuple[NodeController, ...]]] = []
        for group, indices in self.machine.groups().items():
            controllers = [
                self.nodes[i] for i in indices if i not in self.offline
            ]
            if not controllers:
                continue
            local_by_cpu: Dict[int, NodeController] = {}
            peers_of: Dict[int, Tuple[NodeController, ...]] = {}
            for controller in controllers:
                for cpu in controller.cpus:
                    local_by_cpu[cpu] = controller
                peers_of[controller.index] = tuple(
                    c for c in controllers if c is not controller
                )
            groups.append((local_by_cpu, peers_of, tuple(controllers)))
        self._groups = groups

    def offline_node(self, index: int) -> None:
        """Take one emulated node out of service (degraded-mode operation).

        The node's counters freeze at their current values (they stay in
        statistics snapshots — the history up to the failure is still
        real data); its CPUs fall through to the unmapped-master path, so
        their traffic keeps driving coherence on the surviving nodes, the
        same way an uninstantiated target node's would.  Idempotent.
        """
        if not 0 <= index < len(self.nodes):
            raise ConfigurationError(
                f"cannot offline node {index}; board has {len(self.nodes)}"
            )
        if index in self.offline:
            return
        self.offline.add(index)
        self._rebuild_groups()

    def process(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        # Admission pre-check: a refusal must be side-effect free so the bus
        # master can re-issue the tenure and have it processed exactly once.
        # Every local controller involved is checked *before* any directory
        # or counter state changes; only the full buffers account the
        # rejection.  (Remote probes overflowing mid-processing are still
        # dropped silently — they carry no data in the emulated machine.)
        rejected = False
        for local_by_cpu, _peers_of, _controllers in self._groups:
            local = local_by_cpu.get(cpu_id)
            if local is not None and not local.can_accept(now_cycle):
                local.buffer.note_rejection()
                rejected = True
        if rejected:
            return False

        accepted = True
        for local_by_cpu, peers_of, controllers in self._groups:
            local = local_by_cpu.get(cpu_id)
            if local is None:
                # Unmapped master.  An unmapped *processor* (its emulated
                # node exists in the target but is not instantiated on this
                # board, e.g. nodes 5..8 of an 8-node target) contributes
                # coherence traffic: reads snoop, ownership claims
                # invalidate, but its castouts go to memory and touch
                # nothing.  An I/O bridge doing DMA is different: DMA writes
                # arrive as castout-style tenures and must invalidate stale
                # cached copies.
                if command is BusCommand.READ:
                    op = CacheOp.REMOTE_READ
                elif command is BusCommand.CASTOUT and cpu_id <= _MAX_PROCESSOR_ID:
                    continue
                else:
                    op = CacheOp.REMOTE_WRITE
                for controller in controllers:
                    controller.process_remote(op, address, now_cycle)
            else:
                ok = local.process_local(
                    command, address, snoop_response, now_cycle,
                    peers_of[local.index],
                )
                if not ok:
                    accepted = False
        return accepted

    def snapshot(self) -> dict:
        merged: dict = {}
        for node in self.nodes:
            merged.update(node.counters.snapshot())
            merged.update(node.resilience.snapshot())
            merged.update(node.buffer_snapshot())
        return merged

    def wrapped_counters(self) -> Iterator[str]:
        """Qualified names of 40-bit counters that have overflowed."""
        for node in self.nodes:
            yield from node.counters.wrapped_counters()
            yield from node.resilience.wrapped_counters()

    def tick(self, now_cycle: float) -> None:
        """Advance background machinery (ECC patrol scrubbers)."""
        for node in self.nodes:
            if node.index not in self.offline:
                node.tick(now_cycle)

    def tick_active(self) -> bool:
        """Whether :meth:`tick` currently does any work.

        The batched replay engine cannot interleave time-driven machinery
        (the ECC patrol scrubber) between tenures, so it asks this hint and
        falls back to the scalar path whenever any in-service node has a
        scrubber.  With none, per-tenure ticks are pure no-ops and skipping
        them is bit-exact.
        """
        return any(
            node.scrubber is not None
            for node in self.nodes
            if node.index not in self.offline
        )

    def resync_address(self, address: int, now_cycle: float) -> int:
        """Recover from a lost snoop: conservatively resync every node.

        Returns how many nodes dropped a (suspect) copy of the line.
        """
        dropped = 0
        for node in self.nodes:
            if node.index in self.offline:
                continue
            if node.resync_address(address, now_cycle):
                dropped += 1
        return dropped

    def reset(self) -> None:
        for node in self.nodes:
            node.reset()
        if self.offline:
            self.offline.clear()
            self._rebuild_groups()

    def state_dict(self) -> dict:
        """Mutable firmware state for board checkpoints."""
        return {
            "rng": self._rng.bit_generator.state,
            "offline": sorted(self.offline),
            "nodes": [node.state_dict() for node in self.nodes],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed firmware state.

        Raises:
            EmulationError: when the checkpoint's node count does not match
                this firmware's programming.
        """
        nodes = state["nodes"]
        if len(nodes) != len(self.nodes):
            raise EmulationError(
                f"checkpoint has {len(nodes)} nodes; firmware has "
                f"{len(self.nodes)}"
            )
        self._rng.bit_generator.state = state["rng"]
        offline = set(state.get("offline", ()))
        if offline != self.offline:
            self.offline = offline
            self._rebuild_groups()
        for node, node_state in zip(self.nodes, nodes):
            node.load_state_dict(node_state)


class MemoriesBoard:
    """The assembled board (Figure 7's physical block diagram, in software).

    Args:
        firmware: the loaded firmware image; pass a
            :class:`CacheEmulationFirmware` for cache studies or one of the
            images in :mod:`repro.memories.firmware`.
        bus_hz: host bus clock (100 MHz on the S7A).
        assumed_utilization: bus utilization used to advance the board clock
            per tenure — sets how many wall-clock seconds a replayed trace
            represents.
        name: console label.
    """

    def __init__(
        self,
        firmware: Firmware,
        bus_hz: int = 100_000_000,
        assumed_utilization: float = DEFAULT_ASSUMED_UTILIZATION,
        name: str = "memories",
    ) -> None:
        if not 0.0 < assumed_utilization <= 1.0:
            raise ConfigurationError(
                f"utilization {assumed_utilization} outside (0, 1]"
            )
        self.firmware = firmware
        self.bus_hz = bus_hz
        self.name = name
        self.address_filter = AddressFilter()
        self.global_counter = GlobalEventsCounter()
        self.cycles_per_tenure = ADDRESS_TENURE_CYCLES / assumed_utilization
        self.now_cycle = 0.0
        self.retries_posted = 0
        self.snoop_losses = 0
        # Degraded-mode accounting (repro.supervisor): trace segments the
        # run skipped because their payload failed CRC, and the records
        # those segments would have replayed.
        self.segments_quarantined = 0
        self.records_skipped = 0
        # Background-machinery hook (the ECC patrol scrubber); optional so
        # alternate firmware images need not implement it.
        self._firmware_tick = getattr(firmware, "tick", None)
        # Offline-replay engine preference.  True lets the engine registry
        # (repro.engines) pick the best engine whose capabilities this
        # board provably grants (normally the vectorised batched engine);
        # False restricts selection to the scalar reference path (tests,
        # A/B benchmarks).  Correctness never depends on this flag — the
        # registry's capability prover handles that.
        self.batched_replay = True
        # Observability (repro.telemetry): with nothing attached the
        # dispatch path pays exactly one pointer test per tenure.
        self.telemetry: Optional["CounterSampler"] = None
        self.run_trace: Optional["RunTrace"] = None

    # ------------------------------------------------------------------ #
    # Telemetry attachment
    # ------------------------------------------------------------------ #

    def attach_telemetry(
        self,
        sampler: Optional["CounterSampler"] = None,
        run_trace: Optional["RunTrace"] = None,
    ) -> None:
        """Wire a counter sampler and/or a span trace into this board.

        The sampler observes every dispatched tenure (after its effects
        commit) and emits delta samples on its cadence; the run trace gets
        this board's cycle clock and wraps :meth:`replay` /
        :meth:`replay_words` in a ``replay`` span.  Both are pure
        observers: an instrumented replay's statistics are bit-identical
        to a bare one.
        """
        if sampler is not None:
            self.telemetry = sampler
        if run_trace is not None:
            run_trace.bind_clock(lambda: self.now_cycle)
            self.run_trace = run_trace

    def detach_telemetry(self) -> None:
        """Return the dispatch path to the uninstrumented fast path.

        The sampler's cadence cursor is checkpointed on the way out
        (:meth:`~repro.telemetry.sampler.CounterSampler.detach`): an armed
        countdown computed against *this* board's clock would otherwise
        survive the detachment and delay the first window after a later
        reattach — e.g. when the board keeps replaying uninstrumented, or
        the sampler moves to another board.
        """
        if self.telemetry is not None:
            self.telemetry.detach()
            self.telemetry = None
        if self.run_trace is not None:
            self.run_trace.bind_clock(None)
            self.run_trace = None

    # ------------------------------------------------------------------ #
    # Live operation (bus monitor protocol)
    # ------------------------------------------------------------------ #

    def observe(self, txn: BusTransaction) -> SnoopResponse:
        """Observe one live bus tenure (the Monitor protocol)."""
        return self._dispatch(
            txn.cpu_id, txn.command, txn.address, txn.snoop_response
        )

    def _dispatch(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
    ) -> SnoopResponse:
        self.now_cycle += self.cycles_per_tenure
        now = self.now_cycle
        if self._firmware_tick is not None:
            self._firmware_tick(now)
        if not self.address_filter.admit(command, snoop_response, now):
            response = SnoopResponse.NULL
        else:
            self.global_counter.record(cpu_id, command, self.cycles_per_tenure)
            if self.firmware.process(cpu_id, command, address, snoop_response, now):
                response = SnoopResponse.NULL
            else:
                self.retries_posted += 1
                response = SnoopResponse.RETRY
        # Sample *after* the tenure commits so window boundaries land on
        # exact transaction counts regardless of replay chunking.  The
        # sampler's countdown is decremented inline (rather than through
        # maybe_sample) to keep the instrumented fast path at one integer
        # decrement and compare per tenure.
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry._countdown -= 1
            if telemetry._countdown <= 0:
                telemetry.on_countdown(self)
        return response

    # ------------------------------------------------------------------ #
    # Offline replay
    # ------------------------------------------------------------------ #

    def replay(self, trace: BusTrace) -> int:
        """Replay a collected trace through the board; returns records run."""
        return self.replay_words(trace.words)

    def replay_words(self, words: np.ndarray) -> int:
        """Replay packed 64-bit records (the fast path).

        With a run trace attached the whole replay is timed as one
        ``replay`` span (cycle-domain boundaries plus wall-clock
        duration); sampling cadence is handled per-tenure by the attached
        sampler, so chunked and monolithic replays of the same words
        produce the identical series.
        """
        if self.run_trace is None:
            return self._replay_words(words)
        with self.run_trace.span("replay", records=int(words.shape[0])):
            return self._replay_words(words)

    def _replay_words(self, words: np.ndarray) -> int:
        # Engine selection is the registry's job (repro.engines): the
        # static capability prover picks the best engine whose
        # bit-identity preconditions this board provably grants, honouring
        # the batched_replay preference flag.  No refusal logic lives here.
        from repro.engines.registry import select_board_engine

        return select_board_engine(self).replay(self, words)

    def _replay_words_scalar(self, words: np.ndarray) -> int:
        """Reference replay path: one :meth:`_dispatch` per record.

        The batched engine (:mod:`repro.memories.batch`) must stay
        bit-identical to this loop; the registry selects this path
        whenever a board feature the batched engine cannot vectorise is
        active.
        """
        dispatch = self._dispatch
        command_of = _COMMANDS
        response_of = _RESPONSES
        for cpu_id, command, address, response in iter_decoded(words):
            dispatch(cpu_id, command_of[command], address, response_of[response])
        return int(words.shape[0])

    # ------------------------------------------------------------------ #
    # Console-facing state
    # ------------------------------------------------------------------ #

    @property
    def emulated_seconds(self) -> float:
        """Wall-clock seconds the real board would have spent so far."""
        return self.now_cycle / self.bus_hz

    def statistics(self) -> dict:
        """Merged counter snapshot across filter, global FPGA and firmware.

        Keys are sorted, so the dict is deterministic across runs and
        Python versions (golden tests and telemetry deltas rely on this),
        and ``board.wrapped_counters`` flags how many 40-bit counters have
        overflowed — a non-zero value means the absolute counts below are
        aliased and only wrap-aware deltas can be trusted.
        """
        merged = dict(self.address_filter.stats.snapshot())
        board_keys = {
            "board.retries_posted": self.retries_posted,
            "board.snoop_losses": self.snoop_losses,
            "board.wrapped_counters": len(self.wrapped_counters()),
            "board.segments_quarantined": self.segments_quarantined,
            "board.records_skipped": self.records_skipped,
            "board.offline_nodes": len(self.offline_nodes()),
        }
        for source, part in (
            ("global counter", self.global_counter.snapshot()),
            ("firmware", self.firmware.snapshot()),
            ("board", board_keys),
        ):
            for key, value in part.items():
                if key in merged:
                    raise EmulationError(
                        f"duplicate statistics key {key!r} from {source}: "
                        "a counter bank is shadowing another bank's counter"
                    )
                merged[key] = value
        return dict(sorted(merged.items()))

    def wrapped_counters(self) -> List[str]:
        """Qualified names of every overflowed 40-bit counter, sorted.

        Covers the global-events FPGA bank and (when the firmware exposes
        a ``wrapped_counters`` hook) every firmware counter bank.
        """
        wrapped = list(self.global_counter.counters.wrapped_counters())
        hook = getattr(self.firmware, "wrapped_counters", None)
        if hook is not None:
            wrapped.extend(hook())
        return sorted(wrapped)

    def note_segment_quarantined(self, records: int) -> None:
        """Account one skipped (quarantined) trace segment.

        The supervisor calls this instead of replaying a segment whose
        payload failed its CRC: the run continues, but the gap is explicit
        in ``board.segments_quarantined`` / ``board.records_skipped`` so
        downstream analysis knows the counters under-count reality.
        """
        self.segments_quarantined += 1
        self.records_skipped += int(records)

    def offline_node(self, index: int) -> None:
        """Take one emulated node out of service (degraded-mode operation).

        Delegates to the firmware's ``offline_node`` hook; see
        :meth:`CacheEmulationFirmware.offline_node` for semantics.

        Raises:
            ConfigurationError: when the loaded firmware image has no
                offline support, or ``index`` is out of range.
        """
        hook = getattr(self.firmware, "offline_node", None)
        if hook is None:
            raise ConfigurationError(
                "the loaded firmware image cannot offline nodes"
            )
        hook(index)

    def offline_nodes(self) -> List[int]:
        """Indices of nodes currently out of service, sorted."""
        return sorted(getattr(self.firmware, "offline", ()))

    def note_snoop_loss(self, address: int) -> int:
        """Record a snooped tenure the board failed to latch.

        A passive monitor that misses a bus cycle (the fault injector's
        ``drop_snoop`` site) cannot reconstruct what the lost tenure did, so
        the firmware conservatively invalidates any copy of the line and
        lets the next reference refill it.  Returns how many emulated nodes
        dropped a suspect copy; firmware images without a
        ``resync_address`` hook simply count the loss.
        """
        self.snoop_losses += 1
        resync = getattr(self.firmware, "resync_address", None)
        if resync is None:
            return 0
        return int(resync(address, self.now_cycle))

    def reset(self) -> None:
        """Power-up initialisation: clear everything, rewind the clock."""
        self.address_filter.reset()
        self.global_counter.reset()
        self.firmware.reset()
        self.now_cycle = 0.0
        self.retries_posted = 0
        self.snoop_losses = 0
        self.segments_quarantined = 0
        self.records_skipped = 0
        # Counters just dropped to zero; an attached sampler must forget
        # its previous snapshot or it would misread the drop as a wrap.
        if self.telemetry is not None:
            self.telemetry.reset()

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> dict:
        """Capture the board's complete mutable state.

        The returned dict is JSON-serialisable (see
        :mod:`repro.faults.checkpoint` for the file format) and, restored
        into an identically-programmed board, continues the emulation with
        statistics identical to an uninterrupted run.
        """
        state = {
            "version": 1,
            "name": self.name,
            "now_cycle": self.now_cycle,
            "retries_posted": self.retries_posted,
            "snoop_losses": self.snoop_losses,
            "segments_quarantined": self.segments_quarantined,
            "records_skipped": self.records_skipped,
            "address_filter": self.address_filter.state_dict(),
            "global_counter": self.global_counter.state_dict(),
        }
        firmware_state = getattr(self.firmware, "state_dict", None)
        if firmware_state is not None:
            state["firmware"] = firmware_state()
        if self.telemetry is not None:
            state["telemetry"] = self.telemetry.state_dict()
        return state

    def restore(self, state: dict) -> None:
        """Restore a :meth:`checkpoint` into this (identically-built) board.

        Raises:
            ConfigurationError: when the checkpoint carries firmware state
                but the loaded firmware cannot accept it.
        """
        self.now_cycle = float(state["now_cycle"])
        self.retries_posted = int(state["retries_posted"])
        self.snoop_losses = int(state.get("snoop_losses", 0))
        self.segments_quarantined = int(state.get("segments_quarantined", 0))
        self.records_skipped = int(state.get("records_skipped", 0))
        self.address_filter.load_state_dict(state["address_filter"])
        self.global_counter.load_state_dict(state["global_counter"])
        if "firmware" in state:
            load = getattr(self.firmware, "load_state_dict", None)
            if load is None:
                raise ConfigurationError(
                    "checkpoint contains firmware state but the loaded "
                    "firmware image has no load_state_dict()"
                )
            load(state["firmware"])
        # A checkpointed sampling cursor restores into an attached sampler
        # so the continued run extends its time series seamlessly; with no
        # sampler attached the cursor is simply dropped (telemetry is an
        # observer, never required state).
        if "telemetry" in state and self.telemetry is not None:
            self.telemetry.load_state_dict(state["telemetry"])


_COMMANDS = [BusCommand(i) for i in range(len(BusCommand))]
_RESPONSES = [SnoopResponse(i) for i in range(len(SnoopResponse))]


def board_for_machine(
    machine: TargetMachine,
    seed: int = 0,
    assumed_utilization: float = DEFAULT_ASSUMED_UTILIZATION,
    ecc: bool = False,
    scrub_interval: Optional[float] = None,
) -> MemoriesBoard:
    """Convenience: a board running cache-emulation firmware for ``machine``."""
    return MemoriesBoard(
        CacheEmulationFirmware(
            machine, seed=seed, ecc=ecc, scrub_interval=scrub_interval
        ),
        assumed_utilization=assumed_utilization,
        name=machine.name,
    )
