"""The MemorIES board: chassis, firmware dispatch, and trace replay.

:class:`MemoriesBoard` is the self-contained board of Figure 5.  It bundles
the address-filter FPGA, the global events counter FPGA and a *firmware*
object — the programmable part.  The shipped cache-emulation firmware
(:class:`CacheEmulationFirmware`) instantiates up to four node controllers
from a :class:`~repro.target.mapping.TargetMachine` programming; the
alternate firmware images of Section 2.3 live in
:mod:`repro.memories.firmware`.

The board can be used two ways, mirroring the paper:

* **Live**, plugged into a running :class:`~repro.host.smp.HostSMP` via
  ``host.plug_in(board)`` — it then observes every bus tenure in real time.
* **Offline**, replaying a collected :class:`~repro.bus.trace.BusTrace`
  with :meth:`MemoriesBoard.replay` ("a mechanism to collect traces for
  finer and repeatable off-line analysis", Section 1).

Time: the board keeps its own bus-cycle clock, advancing a configurable
number of cycles per observed tenure (2 busy cycles / assumed utilization).
``emulated_seconds`` is therefore the wall-clock time the real board would
have spent — the quantity Tables 3 and 4 compare against software
simulators.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.bus.bus import ADDRESS_TENURE_CYCLES
from repro.bus.trace import BusTrace, decode_arrays
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.memories.address_filter import AddressFilter
from repro.memories.global_counter import GlobalEventsCounter
from repro.memories.node_controller import NodeController
from repro.memories.protocol_table import CacheOp
from repro.target.mapping import TargetMachine

#: The observed bus utilization regime from Section 3.3 ("always varied
#: between 2% to 20%"); the board's clock model defaults to the top of it.
DEFAULT_ASSUMED_UTILIZATION = 0.20

#: Bus IDs above this belong to I/O bridges, not processors (see
#: :mod:`repro.host.smp`); the distinction matters for unmapped-master
#: castout handling below.
_MAX_PROCESSOR_ID = 15


class Firmware(Protocol):
    """What a loadable FPGA firmware image must implement."""

    def process(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        """Handle one filtered tenure; False requests a bus retry."""
        ...

    def snapshot(self) -> dict:
        """Counter snapshot for console statistics extraction."""
        ...

    def reset(self) -> None:
        """Re-initialise firmware state."""
        ...


class CacheEmulationFirmware:
    """The primary firmware: up to four emulated shared-cache nodes.

    Args:
        machine: the target-machine programming (node configs, CPU
            partitioning, coherence groups).
        seed: seed for any random replacement policies.
    """

    def __init__(self, machine: TargetMachine, seed: int = 0) -> None:
        self.machine = machine
        self.nodes: List[NodeController] = []
        rng = np.random.default_rng(seed)
        for index, spec in enumerate(machine.nodes):
            self.nodes.append(
                NodeController(
                    index=index,
                    config=spec.config,
                    cpus=spec.cpus,
                    group=spec.group,
                    rng=rng,
                )
            )
        # Pre-computed routing: per group, cpu -> local controller, and each
        # controller's peer list within the group.
        self._groups: List[Tuple[Dict[int, NodeController], Dict[int, Tuple[NodeController, ...]], Tuple[NodeController, ...]]] = []
        for group, indices in machine.groups().items():
            controllers = [self.nodes[i] for i in indices]
            local_by_cpu: Dict[int, NodeController] = {}
            peers_of: Dict[int, Tuple[NodeController, ...]] = {}
            for controller in controllers:
                for cpu in controller.cpus:
                    local_by_cpu[cpu] = controller
                peers_of[controller.index] = tuple(
                    c for c in controllers if c is not controller
                )
            self._groups.append((local_by_cpu, peers_of, tuple(controllers)))

    def process(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
        now_cycle: float,
    ) -> bool:
        accepted = True
        for local_by_cpu, peers_of, controllers in self._groups:
            local = local_by_cpu.get(cpu_id)
            if local is None:
                # Unmapped master.  An unmapped *processor* (its emulated
                # node exists in the target but is not instantiated on this
                # board, e.g. nodes 5..8 of an 8-node target) contributes
                # coherence traffic: reads snoop, ownership claims
                # invalidate, but its castouts go to memory and touch
                # nothing.  An I/O bridge doing DMA is different: DMA writes
                # arrive as castout-style tenures and must invalidate stale
                # cached copies.
                if command is BusCommand.READ:
                    op = CacheOp.REMOTE_READ
                elif command is BusCommand.CASTOUT and cpu_id <= _MAX_PROCESSOR_ID:
                    continue
                else:
                    op = CacheOp.REMOTE_WRITE
                for controller in controllers:
                    controller.process_remote(op, address, now_cycle)
            else:
                ok = local.process_local(
                    command, address, snoop_response, now_cycle,
                    peers_of[local.index],
                )
                if not ok:
                    accepted = False
        return accepted

    def snapshot(self) -> dict:
        merged: dict = {}
        for node in self.nodes:
            merged.update(node.counters.snapshot())
        return merged

    def reset(self) -> None:
        for node in self.nodes:
            node.reset()


class MemoriesBoard:
    """The assembled board (Figure 7's physical block diagram, in software).

    Args:
        firmware: the loaded firmware image; pass a
            :class:`CacheEmulationFirmware` for cache studies or one of the
            images in :mod:`repro.memories.firmware`.
        bus_hz: host bus clock (100 MHz on the S7A).
        assumed_utilization: bus utilization used to advance the board clock
            per tenure — sets how many wall-clock seconds a replayed trace
            represents.
        name: console label.
    """

    def __init__(
        self,
        firmware: Firmware,
        bus_hz: int = 100_000_000,
        assumed_utilization: float = DEFAULT_ASSUMED_UTILIZATION,
        name: str = "memories",
    ) -> None:
        if not 0.0 < assumed_utilization <= 1.0:
            raise ConfigurationError(
                f"utilization {assumed_utilization} outside (0, 1]"
            )
        self.firmware = firmware
        self.bus_hz = bus_hz
        self.name = name
        self.address_filter = AddressFilter()
        self.global_counter = GlobalEventsCounter()
        self.cycles_per_tenure = ADDRESS_TENURE_CYCLES / assumed_utilization
        self.now_cycle = 0.0
        self.retries_posted = 0

    # ------------------------------------------------------------------ #
    # Live operation (bus monitor protocol)
    # ------------------------------------------------------------------ #

    def observe(self, txn: BusTransaction) -> SnoopResponse:
        """Observe one live bus tenure (the Monitor protocol)."""
        return self._dispatch(
            txn.cpu_id, txn.command, txn.address, txn.snoop_response
        )

    def _dispatch(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
    ) -> SnoopResponse:
        self.now_cycle += self.cycles_per_tenure
        now = self.now_cycle
        if not self.address_filter.admit(command, snoop_response, now):
            return SnoopResponse.NULL
        self.global_counter.record(cpu_id, command, self.cycles_per_tenure)
        if not self.firmware.process(cpu_id, command, address, snoop_response, now):
            self.retries_posted += 1
            return SnoopResponse.RETRY
        return SnoopResponse.NULL

    # ------------------------------------------------------------------ #
    # Offline replay
    # ------------------------------------------------------------------ #

    def replay(self, trace: BusTrace) -> int:
        """Replay a collected trace through the board; returns records run."""
        return self.replay_words(trace.words)

    def replay_words(self, words: np.ndarray) -> int:
        """Replay packed 64-bit records (the fast path)."""
        cpu_ids, commands, addresses, responses = decode_arrays(words)
        dispatch = self._dispatch
        command_of = _COMMANDS
        response_of = _RESPONSES
        for cpu_id, command, address, response in zip(
            cpu_ids.tolist(), commands.tolist(), addresses.tolist(), responses.tolist()
        ):
            dispatch(cpu_id, command_of[command], address, response_of[response])
        return int(words.shape[0])

    # ------------------------------------------------------------------ #
    # Console-facing state
    # ------------------------------------------------------------------ #

    @property
    def emulated_seconds(self) -> float:
        """Wall-clock seconds the real board would have spent so far."""
        return self.now_cycle / self.bus_hz

    def statistics(self) -> dict:
        """Merged counter snapshot across filter, global FPGA and firmware."""
        merged = dict(self.address_filter.stats.snapshot())
        merged.update(self.global_counter.snapshot())
        merged.update(self.firmware.snapshot())
        merged["board.retries_posted"] = self.retries_posted
        return merged

    def reset(self) -> None:
        """Power-up initialisation: clear everything, rewind the clock."""
        self.address_filter.reset()
        self.global_counter.reset()
        self.firmware.reset()
        self.now_cycle = 0.0
        self.retries_posted = 0


_COMMANDS = [BusCommand(i) for i in range(len(BusCommand))]
_RESPONSES = [SnoopResponse(i) for i in range(len(SnoopResponse))]


def board_for_machine(
    machine: TargetMachine,
    seed: int = 0,
    assumed_utilization: float = DEFAULT_ASSUMED_UTILIZATION,
) -> MemoriesBoard:
    """Convenience: a board running cache-emulation firmware for ``machine``."""
    return MemoriesBoard(
        CacheEmulationFirmware(machine, seed=seed),
        assumed_utilization=assumed_utilization,
        name=machine.name,
    )
