"""Cache-node configuration and validation against the hardware envelope.

Table 2 of the paper defines what one emulated shared-cache node can be:

====================================  ==========================
Cache size                            2 MB – 8 GB
Cache associativity                   direct mapped – 8-way
Processors per shared cache node      1 – 8
Cache line size                       128 B – 16 KB
====================================  ==========================

A :class:`CacheNodeConfig` captures one point in that space plus the
replacement policy and coherence-protocol table name.  Validation lives here
so every consumer (console software, node controllers, the trace-driven
simulator) enforces the same envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.common.addr import is_power_of_two
from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB, format_size, parse_size

#: Hardware envelope from Table 2.
MIN_CACHE_SIZE = 2 * MB
MAX_CACHE_SIZE = 8 * GB
MIN_ASSOC = 1
MAX_ASSOC = 8
MIN_LINE_SIZE = 128
MAX_LINE_SIZE = 16 * 1024
MIN_PROCS_PER_NODE = 1
MAX_PROCS_PER_NODE = 8

#: Per-node on-board SDRAM (four 64 MB DIMMs per node controller).
NODE_SDRAM_BYTES = 256 * MB

#: Directory entry width in bytes: tag (up to ~33 bits) + state (4 bits) +
#: replacement metadata, rounded to the 8-byte SDRAM word the board uses.
DIRECTORY_ENTRY_BYTES = 8

REPLACEMENT_POLICIES = ("lru", "fifo", "random", "plru")

#: Protocol tables shipped with the board firmware (user tables may add more).
BUILTIN_PROTOCOLS = ("msi", "mesi", "moesi")


@dataclass(frozen=True)
class CacheNodeConfig:
    """Configuration of one emulated shared-cache node.

    Attributes:
        size: cache capacity in bytes (accepts strings via :meth:`create`).
        assoc: set associativity; 1 means direct mapped.
        line_size: line size in bytes.
        procs_per_node: host CPUs whose traffic this node absorbs.
        replacement: one of :data:`REPLACEMENT_POLICIES`.
        protocol: name of the coherence-protocol state table to load.
        name: optional label shown in console output.
    """

    size: int
    assoc: int = 4
    line_size: int = 128
    procs_per_node: int = 8
    replacement: str = "lru"
    protocol: str = "mesi"
    name: str = ""

    @classmethod
    def create(
        cls,
        size: int | str,
        assoc: int = 4,
        line_size: int | str = 128,
        procs_per_node: int = 8,
        replacement: str = "lru",
        protocol: str = "mesi",
        name: str = "",
    ) -> "CacheNodeConfig":
        """Build and validate a config, accepting "64MB"-style size strings."""
        config = cls(
            size=parse_size(size),
            assoc=assoc,
            line_size=parse_size(line_size),
            procs_per_node=procs_per_node,
            replacement=replacement,
            protocol=protocol,
            name=name,
        )
        config.validate()
        return config

    def validate(self) -> None:
        """Check this config against the Table 2 hardware envelope.

        Raises:
            ConfigurationError: on any violated constraint, with a message
                naming the offending parameter.
        """
        if not MIN_CACHE_SIZE <= self.size <= MAX_CACHE_SIZE:
            raise ConfigurationError(
                f"cache size {format_size(self.size)} outside "
                f"{format_size(MIN_CACHE_SIZE)}..{format_size(MAX_CACHE_SIZE)}"
            )
        if not MIN_LINE_SIZE <= self.line_size <= MAX_LINE_SIZE:
            raise ConfigurationError(
                f"line size {self.line_size} outside "
                f"{MIN_LINE_SIZE}..{MAX_LINE_SIZE}"
            )
        self.validate_geometry()

    def validate_geometry(self) -> None:
        """Structural checks only (no Table 2 min/max size limits).

        Scaled-down experiment configs (see :meth:`scaled`) use caches below
        the board's 2 MB minimum on purpose; they still need power-of-two
        geometry, a sane associativity and a directory that fits in SDRAM.
        """
        if not MIN_ASSOC <= self.assoc <= MAX_ASSOC:
            raise ConfigurationError(
                f"associativity {self.assoc} outside {MIN_ASSOC}..{MAX_ASSOC}"
            )
        if not is_power_of_two(self.line_size):
            raise ConfigurationError(
                f"line size {self.line_size} is not a power of two"
            )
        if not MIN_PROCS_PER_NODE <= self.procs_per_node <= MAX_PROCS_PER_NODE:
            raise ConfigurationError(
                f"processors per node {self.procs_per_node} outside "
                f"{MIN_PROCS_PER_NODE}..{MAX_PROCS_PER_NODE}"
            )
        if self.size % (self.assoc * self.line_size) != 0:
            raise ConfigurationError(
                f"size {format_size(self.size)} not divisible by "
                f"assoc*line_size ({self.assoc}*{self.line_size})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"derived set count {self.num_sets} is not a power of two"
            )
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ConfigurationError(
                f"unknown replacement policy {self.replacement!r}; "
                f"expected one of {REPLACEMENT_POLICIES}"
            )
        if self.directory_bytes > NODE_SDRAM_BYTES:
            raise ConfigurationError(
                f"directory needs {format_size(self.directory_bytes)} but a node "
                f"controller has {format_size(NODE_SDRAM_BYTES)} of SDRAM; "
                f"use a larger line size"
            )

    @property
    def num_lines(self) -> int:
        """Total line frames in the cache."""
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.assoc

    @property
    def directory_bytes(self) -> int:
        """SDRAM the tag/state directory occupies for this geometry.

        This is the constraint that forces the 1 KB L3 line size in the
        paper's Figure 12 experiments: an 8 GB cache with 128 B lines would
        need a 512 MB directory, which does not fit in a node's 256 MB.
        """
        return self.num_lines * DIRECTORY_ENTRY_BYTES

    def scaled(self, factor: int) -> "CacheNodeConfig":
        """This config with capacity divided by ``factor`` (same geometry).

        Used by the experiment harness to shrink paper-scale caches and
        problem footprints by a common factor; skips Table 2's *minimum*
        size check because scaled-down caches legitimately fall below 2 MB.
        """
        if factor < 1 or self.size % factor != 0:
            raise ConfigurationError(f"cannot scale {format_size(self.size)} by {factor}")
        return replace(self, size=self.size // factor)

    def describe(self) -> str:
        """One-line human description, e.g. ``64MB 4-way 128B lru/mesi``."""
        assoc = "direct-mapped" if self.assoc == 1 else f"{self.assoc}-way"
        label = f"{self.name}: " if self.name else ""
        return (
            f"{label}{format_size(self.size)} {assoc} "
            f"{format_size(self.line_size)} lines, {self.replacement}/{self.protocol}"
        )
