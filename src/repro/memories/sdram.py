"""Bank-level SDRAM timing for the tag/state directory.

Section 3.3 summarises the directory's throughput as "roughly 42% of the
maximum 6xx bus bandwidth" — a single number hiding ordinary SDRAM
behaviour: a directory access that hits a bank's open row costs a CAS
access, one that needs a different row pays precharge + activate first, and
the periodic refresh steals cycles.  :class:`SdramModel` models exactly
that, and its defaults are calibrated so the *average* service time over a
cache-directory access pattern lands at the paper's 42% figure; the
ablation bench compares the constant-rate abstraction against this banked
model.

A node controller built with ``sdram=SdramModel()`` charges each directory
operation its address-dependent cost instead of the constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addr import is_power_of_two
from repro.common.errors import ConfigurationError
from repro.memories.tx_buffer import service_cycles_per_op

#: Bus cycles for an access that hits the open row (CAS + data).
DEFAULT_ROW_HIT_CYCLES = 2.0
#: Bus cycles for an access that must precharge + activate first.  Directory
#: traffic has little row locality (set indices scatter), so the mean
#: service time sits close to this value — the defaults are chosen so that
#: mean lands at the paper's 42%-of-bus-bandwidth constant (~4.76 cycles).
DEFAULT_ROW_MISS_CYCLES = 4.7
#: One row refreshed every this many bus cycles (64 ms / 4096 rows at
#: 100 MHz ~= 1562 cycles).
DEFAULT_REFRESH_INTERVAL = 1562.0
#: Cycles a refresh occupies the banks.
DEFAULT_REFRESH_CYCLES = 10.0


@dataclass
class SdramStats:
    """Row-buffer and refresh statistics."""

    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0

    @property
    def row_hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses


class SdramModel:
    """Open-row, multi-bank SDRAM service-time model.

    Args:
        n_banks: independent banks across the node's four DIMMs.
        row_bytes: bytes covered by one row (per bank).
        row_hit_cycles / row_miss_cycles: service times in bus cycles.
        refresh_interval / refresh_cycles: refresh cadence and cost.
    """

    def __init__(
        self,
        n_banks: int = 16,
        row_bytes: int = 2048,
        row_hit_cycles: float = DEFAULT_ROW_HIT_CYCLES,
        row_miss_cycles: float = DEFAULT_ROW_MISS_CYCLES,
        refresh_interval: float = DEFAULT_REFRESH_INTERVAL,
        refresh_cycles: float = DEFAULT_REFRESH_CYCLES,
    ) -> None:
        if not is_power_of_two(n_banks):
            raise ConfigurationError(f"bank count {n_banks} not a power of two")
        if not is_power_of_two(row_bytes):
            raise ConfigurationError(f"row size {row_bytes} not a power of two")
        if row_miss_cycles < row_hit_cycles:
            raise ConfigurationError("a row miss cannot be cheaper than a hit")
        self.n_banks = n_banks
        self.row_bytes = row_bytes
        self.row_hit_cycles = row_hit_cycles
        self.row_miss_cycles = row_miss_cycles
        self.refresh_interval = refresh_interval
        self.refresh_cycles = refresh_cycles
        self.stats = SdramStats()
        self._open_rows: list[int] = [-1] * n_banks
        self._next_refresh = refresh_interval

    def access_cycles(self, byte_address: int, now_cycle: float) -> float:
        """Service time of one directory access starting at ``now_cycle``."""
        stats = self.stats
        stats.accesses += 1
        bank = (byte_address // self.row_bytes) % self.n_banks
        row = byte_address // (self.row_bytes * self.n_banks)
        if self._open_rows[bank] == row:
            stats.row_hits += 1
            cycles = self.row_hit_cycles
        else:
            stats.row_misses += 1
            self._open_rows[bank] = row
            cycles = self.row_miss_cycles
        # Refresh: charge the stall to the access that crosses the deadline.
        if now_cycle >= self._next_refresh:
            missed = 1 + int((now_cycle - self._next_refresh) // self.refresh_interval)
            stats.refreshes += missed
            cycles += self.refresh_cycles * missed
            self._next_refresh += missed * self.refresh_interval
        return cycles

    def average_service_cycles(self) -> float:
        """Observed mean service time (compare against the 42% constant)."""
        stats = self.stats
        if stats.accesses == 0:
            return 0.0
        busy = (
            stats.row_hits * self.row_hit_cycles
            + stats.row_misses * self.row_miss_cycles
            + stats.refreshes * self.refresh_cycles
        )
        return busy / stats.accesses

    def reset(self) -> None:
        """Close all rows and restart the refresh clock."""
        self.stats = SdramStats()
        self._open_rows = [-1] * self.n_banks
        self._next_refresh = self.refresh_interval

    def state_dict(self) -> dict:
        """Mutable state (open rows, refresh clock, stats) for checkpoints."""
        return {
            "open_rows": list(self._open_rows),
            "next_refresh": self._next_refresh,
            "stats": {
                "accesses": self.stats.accesses,
                "row_hits": self.stats.row_hits,
                "row_misses": self.stats.row_misses,
                "refreshes": self.stats.refreshes,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed SDRAM timing state."""
        self._open_rows = [int(r) for r in state["open_rows"]]
        self._next_refresh = float(state["next_refresh"])
        stats = state["stats"]
        self.stats = SdramStats(
            accesses=int(stats["accesses"]),
            row_hits=int(stats["row_hits"]),
            row_misses=int(stats["row_misses"]),
            refreshes=int(stats["refreshes"]),
        )


def calibration_error(model: SdramModel) -> float:
    """How far the model's observed mean sits from the paper's constant.

    Returns (mean - constant) / constant; the shipped defaults land within
    a few percent on typical directory access patterns (see the tests).
    """
    constant = service_cycles_per_op()
    mean = model.average_service_cycles()
    if mean == 0.0:
        return 0.0
    return (mean - constant) / constant
