"""Bit-identity of the batched and compiled replay engines against scalar.

The fast engines (:mod:`repro.memories.batch`,
:mod:`repro.memories.compiled`) are only allowed to be fast — never
different.  These tests replay identical traces through each path and
require the full board checkpoint (directories, buffers, counters,
clock, sampler cursor) to come out equal, across firmware shapes,
replacement policies, telemetry cadences and degraded starting states;
a property-based sweep drives randomized mixes through the same
comparison, and a saturated-buffer sweep pins the rejected-tenure
accounting parity of the fused admission pre-check.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.trace import BusTrace, encode_arrays
from repro.engines import ENGINES
from repro.memories.batch import replay_words_batched
from repro.memories.board import MemoriesBoard, board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.counters import COUNTER_MASK
from repro.memories.tx_buffer import TransactionBuffer
from repro.target.configs import (
    multi_config_machine,
    single_node_machine,
    split_smp_machine,
)
from repro.telemetry import CounterSampler, MemorySink

N_CPUS = 8


@pytest.fixture
def force_flat_kernel():
    """Run the compiled engine's flat kernel interpreted (no numba)."""
    import repro.memories.compiled as compiled

    compiled._FORCE_FLAT_KERNEL = True
    try:
        yield
    finally:
        compiled._FORCE_FLAT_KERNEL = False


def full_mix_words(
    n: int,
    seed: int = 0,
    n_cpus: int = N_CPUS,
    max_cpu: int = N_CPUS,
    address_space: int = 1 << 24,
) -> np.ndarray:
    """Records covering every command and response, ~1/3 filtered.

    ``max_cpu`` above the machine's CPU count exercises the unmapped-master
    paths (remote probes from uninstantiated nodes, I/O bridge DMA).
    """
    rng = np.random.default_rng(seed)
    cpu_ids = rng.integers(0, max_cpu, n).astype(np.uint64)
    commands = rng.choice(
        np.arange(8, dtype=np.uint64),
        size=n,
        p=[0.40, 0.12, 0.06, 0.10, 0.08, 0.08, 0.08, 0.08],
    )
    responses = rng.choice(
        np.arange(4, dtype=np.uint64), size=n, p=[0.55, 0.20, 0.10, 0.15]
    )
    addresses = (
        rng.integers(0, address_space // 64, n).astype(np.uint64)
    ) * np.uint64(64)
    return encode_arrays(cpu_ids, commands, addresses, responses)


def machine_for(kind: str, replacement: str = "lru"):
    config = CacheNodeConfig(
        size=128 * 1024, assoc=4, line_size=128, replacement=replacement
    )
    if kind == "single":
        return single_node_machine(config, N_CPUS)
    if kind == "split":
        return split_smp_machine(config, N_CPUS, 2)
    other = CacheNodeConfig(
        size=64 * 1024, assoc=2, line_size=64, replacement=replacement
    )
    return multi_config_machine([config, other], N_CPUS)


def assert_paths_identical(make_board, words, chunks=None, engine=None):
    """Replay scalar and a fast engine; require identical checkpoints.

    ``engine`` names a registered engine to drive explicitly; None uses
    the board's own routing (``select_board_engine``), which picks the
    highest-rank eligible engine.
    """
    scalar = make_board()
    scalar.batched_replay = False
    other = make_board()
    assert other.batched_replay
    replay = (
        other.replay_words
        if engine is None
        else (lambda part: ENGINES[engine].replay(other, part))
    )
    parts = np.array_split(words, chunks) if chunks else [words]
    for part in parts:
        scalar.replay_words(part)
        replay(part)
    assert scalar.statistics() == other.statistics()
    assert scalar.now_cycle == other.now_cycle
    assert scalar.retries_posted == other.retries_posted
    assert scalar.checkpoint() == other.checkpoint()
    return scalar, other


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("kind", ["single", "split", "multi"])
    @pytest.mark.parametrize("replacement", ["lru", "fifo", "random", "plru"])
    def test_every_machine_and_policy(self, kind, replacement):
        words = full_mix_words(4000, seed=7)
        machine = machine_for(kind, replacement)
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=3), words,
            engine="batched",
        )

    def test_chunked_replay_matches(self):
        words = full_mix_words(3000, seed=11)
        machine = machine_for("split")
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=1), words, chunks=7,
            engine="batched",
        )

    def test_empty_and_all_filtered_traces(self):
        machine = machine_for("single")
        empty = np.zeros(0, dtype=np.uint64)
        assert_paths_identical(lambda: board_for_machine(machine), empty)
        rng = np.random.default_rng(5)
        n = 500
        filtered = encode_arrays(
            rng.integers(0, N_CPUS, n).astype(np.uint64),
            rng.integers(4, 8, n).astype(np.uint64),  # IO/interrupt/sync only
            rng.integers(0, 1 << 20, n).astype(np.uint64),
        )
        assert_paths_identical(lambda: board_for_machine(machine), filtered)

    def test_resumes_from_degraded_state(self):
        """The engine must be exact from any starting state, not just reset."""
        words = full_mix_words(2500, seed=13)
        machine = machine_for("split")

        def make_board():
            board = board_for_machine(machine, seed=9)
            board.batched_replay = False
            board.replay_words(full_mix_words(800, seed=21))
            board.firmware.offline_node(1)
            board.note_snoop_loss(0x1000)
            board.batched_replay = True
            return board

        assert_paths_identical(make_board, words)


class TestCompiledBitIdentity:
    """The compiled engine (python fallback and flat kernel) vs scalar."""

    @pytest.mark.parametrize("kind", ["single", "split", "multi"])
    @pytest.mark.parametrize("replacement", ["lru", "fifo", "plru"])
    def test_every_machine_and_policy(self, kind, replacement):
        words = full_mix_words(4000, seed=7)
        machine = machine_for(kind, replacement)
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=3), words,
            engine="compiled",
        )

    @pytest.mark.parametrize("kind", ["single", "split", "multi"])
    @pytest.mark.parametrize("replacement", ["lru", "fifo", "plru"])
    def test_flat_kernel_every_machine_and_policy(
        self, kind, replacement, force_flat_kernel
    ):
        # Interpreted run of the numba-compatible kernel: proves the flat
        # lowering itself (arrays, ring buffers, transcribed policies),
        # not just the object-path fallback.
        words = full_mix_words(1200, seed=7)
        machine = machine_for(kind, replacement)
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=3), words,
            engine="compiled",
        )

    def test_flat_kernel_chunked_with_telemetry(self, force_flat_kernel):
        # Telemetry boundaries force mid-call counter/buffer-stat flushes
        # out of the flat arrays; sampler records must match scalar.
        words = full_mix_words(900, seed=41)
        machine = machine_for("split")
        sinks = []

        def make_board():
            sink = MemorySink()
            sinks.append(sink)
            board = board_for_machine(machine, seed=2)
            board.attach_telemetry(
                CounterSampler(sink, every_transactions=37)
            )
            return board

        assert_paths_identical(make_board, words, chunks=4, engine="compiled")
        scalar_sink, compiled_sink = sinks
        assert scalar_sink.records == compiled_sink.records
        assert len(compiled_sink.records) > 0

    def test_degraded_state_round_trips_flat_arrays(self, force_flat_kernel):
        # Partially-filled sets, an offline node and pre-seeded buffers
        # must survive the load -> kernel -> store round trip.
        words = full_mix_words(1000, seed=13)
        machine = machine_for("split")

        def make_board():
            board = board_for_machine(machine, seed=9)
            board.batched_replay = False
            board.replay_words(full_mix_words(800, seed=21))
            board.firmware.offline_node(1)
            board.batched_replay = True
            return board

        assert_paths_identical(make_board, words, engine="compiled")

    def test_random_policy_falls_back_identically(self):
        # Direct calls with an ineligible board must route to the batched
        # engine rather than corrupt state (the registry would never
        # select compiled here — DETERMINISTIC_REPLACEMENT is denied).
        words = full_mix_words(1500, seed=43)
        machine = machine_for("split", "random")
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=3), words,
            engine="compiled",
        )

    def test_default_routing_selects_compiled(self):
        from repro.engines import select_board_engine

        board = board_for_machine(machine_for("split"))
        assert select_board_engine(board).name == "compiled"
        words = full_mix_words(2000, seed=47)
        assert_paths_identical(
            lambda: board_for_machine(machine_for("split"), seed=3), words
        )


class TestTelemetryChunking:
    @pytest.mark.parametrize("engine", ["batched", "compiled"])
    @pytest.mark.parametrize("cadence", [1, 7, 64, 1024])
    def test_transaction_cadence_identical(self, cadence, engine):
        words = full_mix_words(2000, seed=17)
        machine = machine_for("split")

        def make_board(sink):
            board = board_for_machine(machine, seed=2)
            board.attach_telemetry(
                CounterSampler(sink, every_transactions=cadence)
            )
            return board

        scalar_sink, fast_sink = MemorySink(), MemorySink()
        scalar = make_board(scalar_sink)
        scalar.batched_replay = False
        fast = make_board(fast_sink)
        scalar.replay_words(words)
        ENGINES[engine].replay(fast, words)
        scalar.telemetry.finish(scalar)
        fast.telemetry.finish(fast)
        assert scalar_sink.records == fast_sink.records
        assert len(fast_sink.records) > 0
        assert scalar.statistics() == fast.statistics()
        assert scalar.checkpoint() == fast.checkpoint()

    def test_cycle_cadence_identical(self):
        words = full_mix_words(1500, seed=19)
        machine = machine_for("single")
        sinks = []

        def make_board():
            sink = MemorySink()
            sinks.append(sink)
            board = board_for_machine(machine, seed=2)
            board.attach_telemetry(CounterSampler(sink, every_cycles=730.0))
            return board

        assert_paths_identical(make_board, words, chunks=3)
        scalar_sink, batched_sink = sinks
        assert scalar_sink.records == batched_sink.records
        assert len(batched_sink.records) > 0


class TestEngineSelection:
    def test_flag_forces_scalar(self, monkeypatch):
        words = full_mix_words(200, seed=23)
        board = board_for_machine(machine_for("single"))
        board.batched_replay = False
        calls = []
        monkeypatch.setattr(
            "repro.memories.batch.replay_words_batched",
            lambda *a: calls.append(a) or None,
        )
        board.replay_words(words)
        assert not calls

    def test_ecc_scrubber_declines_batching(self):
        from repro.engines import Capability, decide, select_board_engine

        words = full_mix_words(600, seed=29)
        machine = machine_for("single")
        board = board_for_machine(machine, ecc=True, scrub_interval=500.0)
        # The capability prover denies INERT_BACKGROUND_TICK (the patrol
        # scrubber must tick between tenures), so the registry rejects the
        # batched engine and routes the board to the scalar path.
        decision = decide("batched", board=board)
        assert not decision.eligible
        assert Capability.INERT_BACKGROUND_TICK in decision.missing
        assert "scrubber" in decision.reason()
        assert select_board_engine(board).name == "scalar"
        # replay_words still works (scalar selection) and matches a forced
        # scalar run exactly.
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=4, ecc=True,
                                      scrub_interval=500.0),
            words,
        )

    def test_sdram_node_uses_generic_runner(self):
        """SDRAM-priced buffers exclude the fused loop, not batching."""
        from repro.memories.sdram import SdramModel

        words = full_mix_words(1200, seed=31)
        machine = machine_for("split")

        def make_board():
            board = board_for_machine(machine, seed=6)
            board.firmware.nodes[0].sdram = SdramModel()
            return board

        assert_paths_identical(make_board, words)

    def test_tracer_firmware_generic_runner(self):
        from repro.memories.firmware.tracer import TraceCollectorFirmware

        words = full_mix_words(800, seed=37)

        def make_board():
            return MemoriesBoard(
                TraceCollectorFirmware(capacity=2000), name="t"
            )

        scalar, batched = assert_paths_identical(make_board, words)
        assert np.array_equal(
            scalar.firmware.to_trace().words, batched.firmware.to_trace().words
        )


class TestZeroCountdownRegression:
    """A sampler countdown at (or below) zero on entry must not produce
    an empty chunk (this used to crash ``_run_chunk`` on ``steps[0]``)."""

    @pytest.mark.parametrize("engine", ["batched", "compiled"])
    @pytest.mark.parametrize("countdown", [0, -3])
    def test_zero_countdown_entry_matches_scalar(self, engine, countdown):
        words = full_mix_words(300, seed=53)
        machine = machine_for("split")

        def make_board(sink):
            board = board_for_machine(machine, seed=2)
            board.attach_telemetry(
                CounterSampler(sink, every_transactions=50)
            )
            # Force the degenerate entry state a detach/reattach landing
            # exactly on a cadence boundary produces.
            board.telemetry._countdown = countdown
            return board

        scalar_sink, fast_sink = MemorySink(), MemorySink()
        scalar = make_board(scalar_sink)
        scalar.batched_replay = False
        fast = make_board(fast_sink)
        scalar.replay_words(words)
        ENGINES[engine].replay(fast, words)
        assert scalar_sink.records == fast_sink.records
        assert scalar.statistics() == fast.statistics()
        assert scalar.checkpoint() == fast.checkpoint()

    def test_zero_countdown_no_longer_crashes(self):
        board = board_for_machine(machine_for("single"))
        board.attach_telemetry(
            CounterSampler(MemorySink(), every_transactions=10)
        )
        board.telemetry._countdown = 0
        assert replay_words_batched(board, full_mix_words(25, seed=1)) == 25


class TestRejectedParity:
    """Rejected-tenure accounting parity under saturated buffers.

    The fused admission pre-check drains every group's local queue and
    increments ``rejected`` only on the full ones; scalar
    ``CacheEmulationFirmware.process`` must account identically, proven
    here with deliberately tiny capacities and service times far above
    the tenure spacing so refusals actually occur.
    """

    def saturate(self, board, capacity, service):
        for node in board.firmware.nodes:
            stats = node.buffer.stats
            node.buffer = TransactionBuffer(
                capacity=capacity, service_cycles=service
            )
            node.buffer.stats = stats
        return board

    @pytest.mark.parametrize("engine", ["batched", "compiled"])
    @pytest.mark.parametrize("kind", ["split", "multi"])
    def test_saturated_buffers_identical(self, engine, kind):
        words = full_mix_words(2000, seed=59)
        machine = machine_for(kind)

        def make_board():
            return self.saturate(
                board_for_machine(machine, seed=2), capacity=1, service=5e4
            )

        scalar, fast = assert_paths_identical(
            make_board, words, engine=engine
        )
        stats = scalar.statistics()
        rejected = sum(
            value for key, value in stats.items()
            if key.endswith("buffer.rejected")
        )
        assert rejected > 0, "saturation did not produce refusals"
        assert scalar.retries_posted > 0

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        capacity=st.integers(1, 3),
        service=st.sampled_from([100.0, 3e3, 5e4]),
        engine=st.sampled_from(["batched", "compiled"]),
    )
    def test_rejected_accounting_property(
        self, seed, capacity, service, engine
    ):
        words = full_mix_words(700, seed=seed)
        machine = machine_for("multi")

        def make_board():
            return self.saturate(
                board_for_machine(machine, seed=seed % 13),
                capacity=capacity,
                service=service,
            )

        assert_paths_identical(make_board, words, engine=engine)

    def test_saturated_flat_kernel(self, force_flat_kernel):
        words = full_mix_words(800, seed=61)
        machine = machine_for("multi")

        def make_board():
            return self.saturate(
                board_for_machine(machine, seed=2), capacity=1, service=5e4
            )

        assert_paths_identical(make_board, words, engine="compiled")


class TestEdgeChunks:
    """Chunk-shape edges: all-filtered chunks, chunk size 1, boundaries
    landing exactly on the countdown, wrap-adjacent 40-bit counters."""

    @pytest.mark.parametrize("engine", ["batched", "compiled"])
    def test_all_filtered_chunks_with_telemetry(self, engine):
        # Every record is filtered (IO/interrupt/sync): chunks contain
        # zero admitted tenures but must still advance clock, filter
        # stats and the sampler cursor exactly.
        rng = np.random.default_rng(5)
        n = 200
        words = encode_arrays(
            rng.integers(0, N_CPUS, n).astype(np.uint64),
            rng.integers(4, 8, n).astype(np.uint64),
            rng.integers(0, 1 << 20, n).astype(np.uint64),
        )
        machine = machine_for("single")

        def make_board():
            board = board_for_machine(machine)
            board.attach_telemetry(
                CounterSampler(MemorySink(), every_transactions=3)
            )
            return board

        assert_paths_identical(make_board, words, engine=engine)

    @pytest.mark.parametrize("engine", ["batched", "compiled"])
    def test_single_record_chunks(self, engine):
        # Cadence 1 makes every chunk exactly one record long.
        words = full_mix_words(120, seed=67)
        machine = machine_for("split")

        def make_board():
            board = board_for_machine(machine, seed=2)
            board.attach_telemetry(
                CounterSampler(MemorySink(), every_transactions=1)
            )
            return board

        assert_paths_identical(make_board, words, engine=engine)

    @pytest.mark.parametrize("engine", ["batched", "compiled"])
    def test_boundary_exactly_on_countdown(self, engine):
        # Trace length an exact multiple of the cadence: the final chunk
        # ends on the countdown and on_countdown fires at the last record.
        cadence = 64
        words = full_mix_words(cadence * 5, seed=71)
        machine = machine_for("split")
        sinks = []

        def make_board():
            sink = MemorySink()
            sinks.append(sink)
            board = board_for_machine(machine, seed=2)
            board.attach_telemetry(
                CounterSampler(sink, every_transactions=cadence)
            )
            return board

        assert_paths_identical(make_board, words, engine=engine)
        scalar_sink, fast_sink = sinks
        assert scalar_sink.records == fast_sink.records
        assert len(fast_sink.records) == 5

    @pytest.mark.parametrize("engine", ["batched", "compiled"])
    def test_wrap_adjacent_global_counters(self, engine):
        # Seed the global bank just below the 40-bit mask so
        # record_batch wraps mid-replay; masked readouts and the
        # wrapped-counter report must match scalar exactly.
        words = full_mix_words(1500, seed=73)
        machine = machine_for("split")

        def make_board():
            board = board_for_machine(machine, seed=2)
            bank = board.global_counter.counters
            bank.increment("bus.cycles", COUNTER_MASK - 500)
            bank.increment("bus.tenures", COUNTER_MASK - 3)
            return board

        scalar, fast = assert_paths_identical(make_board, words, engine=engine)
        bank = fast.global_counter.counters
        assert bank.wrapped("bus.cycles") and bank.wrapped("bus.tenures")
        assert bank.read("bus.tenures") == bank.read_raw("bus.tenures") & COUNTER_MASK


class TestBatchedProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 600),
        kind=st.sampled_from(["single", "split", "multi"]),
        replacement=st.sampled_from(["lru", "fifo", "random", "plru"]),
        cadence=st.sampled_from([None, 1, 13, 256]),
        engine=st.sampled_from([None, "batched", "compiled"]),
    )
    def test_randomized_mix_identical(
        self, seed, n, kind, replacement, cadence, engine
    ):
        words = full_mix_words(n, seed=seed)
        machine = machine_for(kind, replacement)

        def make_board():
            board = board_for_machine(machine, seed=seed % 17)
            if cadence is not None:
                board.attach_telemetry(
                    CounterSampler(MemorySink(), every_transactions=cadence)
                )
            return board

        assert_paths_identical(
            make_board, words, chunks=min(3, n), engine=engine
        )
