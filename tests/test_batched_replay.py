"""Bit-identity of the batched replay engine against the scalar path.

The batched engine (:mod:`repro.memories.batch`) is only allowed to be
fast — never different.  These tests replay identical traces through both
paths and require the full board checkpoint (directories, buffers,
counters, clock, sampler cursor) to come out equal, across firmware
shapes, replacement policies, telemetry cadences and degraded starting
states; a property-based sweep drives randomized mixes through the same
comparison.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.trace import BusTrace, encode_arrays
from repro.memories.batch import replay_words_batched
from repro.memories.board import MemoriesBoard, board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.target.configs import (
    multi_config_machine,
    single_node_machine,
    split_smp_machine,
)
from repro.telemetry import CounterSampler, MemorySink

N_CPUS = 8


def full_mix_words(
    n: int,
    seed: int = 0,
    n_cpus: int = N_CPUS,
    max_cpu: int = N_CPUS,
    address_space: int = 1 << 24,
) -> np.ndarray:
    """Records covering every command and response, ~1/3 filtered.

    ``max_cpu`` above the machine's CPU count exercises the unmapped-master
    paths (remote probes from uninstantiated nodes, I/O bridge DMA).
    """
    rng = np.random.default_rng(seed)
    cpu_ids = rng.integers(0, max_cpu, n).astype(np.uint64)
    commands = rng.choice(
        np.arange(8, dtype=np.uint64),
        size=n,
        p=[0.40, 0.12, 0.06, 0.10, 0.08, 0.08, 0.08, 0.08],
    )
    responses = rng.choice(
        np.arange(4, dtype=np.uint64), size=n, p=[0.55, 0.20, 0.10, 0.15]
    )
    addresses = (
        rng.integers(0, address_space // 64, n).astype(np.uint64)
    ) * np.uint64(64)
    return encode_arrays(cpu_ids, commands, addresses, responses)


def machine_for(kind: str, replacement: str = "lru"):
    config = CacheNodeConfig(
        size=128 * 1024, assoc=4, line_size=128, replacement=replacement
    )
    if kind == "single":
        return single_node_machine(config, N_CPUS)
    if kind == "split":
        return split_smp_machine(config, N_CPUS, 2)
    other = CacheNodeConfig(
        size=64 * 1024, assoc=2, line_size=64, replacement=replacement
    )
    return multi_config_machine([config, other], N_CPUS)


def assert_paths_identical(make_board, words, chunks=None):
    """Replay scalar and batched; require identical full board checkpoints."""
    scalar = make_board()
    scalar.batched_replay = False
    batched = make_board()
    assert batched.batched_replay
    parts = np.array_split(words, chunks) if chunks else [words]
    for part in parts:
        scalar.replay_words(part)
        batched.replay_words(part)
    assert scalar.statistics() == batched.statistics()
    assert scalar.now_cycle == batched.now_cycle
    assert scalar.retries_posted == batched.retries_posted
    assert scalar.checkpoint() == batched.checkpoint()
    return scalar, batched


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("kind", ["single", "split", "multi"])
    @pytest.mark.parametrize("replacement", ["lru", "fifo", "random", "plru"])
    def test_every_machine_and_policy(self, kind, replacement):
        words = full_mix_words(4000, seed=7)
        machine = machine_for(kind, replacement)
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=3), words
        )

    def test_chunked_replay_matches(self):
        words = full_mix_words(3000, seed=11)
        machine = machine_for("split")
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=1), words, chunks=7
        )

    def test_empty_and_all_filtered_traces(self):
        machine = machine_for("single")
        empty = np.zeros(0, dtype=np.uint64)
        assert_paths_identical(lambda: board_for_machine(machine), empty)
        rng = np.random.default_rng(5)
        n = 500
        filtered = encode_arrays(
            rng.integers(0, N_CPUS, n).astype(np.uint64),
            rng.integers(4, 8, n).astype(np.uint64),  # IO/interrupt/sync only
            rng.integers(0, 1 << 20, n).astype(np.uint64),
        )
        assert_paths_identical(lambda: board_for_machine(machine), filtered)

    def test_resumes_from_degraded_state(self):
        """The engine must be exact from any starting state, not just reset."""
        words = full_mix_words(2500, seed=13)
        machine = machine_for("split")

        def make_board():
            board = board_for_machine(machine, seed=9)
            board.batched_replay = False
            board.replay_words(full_mix_words(800, seed=21))
            board.firmware.offline_node(1)
            board.note_snoop_loss(0x1000)
            board.batched_replay = True
            return board

        assert_paths_identical(make_board, words)


class TestTelemetryChunking:
    @pytest.mark.parametrize("cadence", [1, 7, 64, 1024])
    def test_transaction_cadence_identical(self, cadence):
        words = full_mix_words(2000, seed=17)
        machine = machine_for("split")

        def make_board(sink):
            board = board_for_machine(machine, seed=2)
            board.attach_telemetry(
                CounterSampler(sink, every_transactions=cadence)
            )
            return board

        scalar_sink, batched_sink = MemorySink(), MemorySink()
        scalar = make_board(scalar_sink)
        scalar.batched_replay = False
        batched = make_board(batched_sink)
        scalar.replay_words(words)
        batched.replay_words(words)
        scalar.telemetry.finish(scalar)
        batched.telemetry.finish(batched)
        assert scalar_sink.records == batched_sink.records
        assert len(batched_sink.records) > 0
        assert scalar.statistics() == batched.statistics()
        assert scalar.checkpoint() == batched.checkpoint()

    def test_cycle_cadence_identical(self):
        words = full_mix_words(1500, seed=19)
        machine = machine_for("single")
        sinks = []

        def make_board():
            sink = MemorySink()
            sinks.append(sink)
            board = board_for_machine(machine, seed=2)
            board.attach_telemetry(CounterSampler(sink, every_cycles=730.0))
            return board

        assert_paths_identical(make_board, words, chunks=3)
        scalar_sink, batched_sink = sinks
        assert scalar_sink.records == batched_sink.records
        assert len(batched_sink.records) > 0


class TestEngineSelection:
    def test_flag_forces_scalar(self, monkeypatch):
        words = full_mix_words(200, seed=23)
        board = board_for_machine(machine_for("single"))
        board.batched_replay = False
        calls = []
        monkeypatch.setattr(
            "repro.memories.batch.replay_words_batched",
            lambda *a: calls.append(a) or None,
        )
        board.replay_words(words)
        assert not calls

    def test_ecc_scrubber_declines_batching(self):
        from repro.engines import Capability, decide, select_board_engine

        words = full_mix_words(600, seed=29)
        machine = machine_for("single")
        board = board_for_machine(machine, ecc=True, scrub_interval=500.0)
        # The capability prover denies INERT_BACKGROUND_TICK (the patrol
        # scrubber must tick between tenures), so the registry rejects the
        # batched engine and routes the board to the scalar path.
        decision = decide("batched", board=board)
        assert not decision.eligible
        assert Capability.INERT_BACKGROUND_TICK in decision.missing
        assert "scrubber" in decision.reason()
        assert select_board_engine(board).name == "scalar"
        # replay_words still works (scalar selection) and matches a forced
        # scalar run exactly.
        assert_paths_identical(
            lambda: board_for_machine(machine, seed=4, ecc=True,
                                      scrub_interval=500.0),
            words,
        )

    def test_sdram_node_uses_generic_runner(self):
        """SDRAM-priced buffers exclude the fused loop, not batching."""
        from repro.memories.sdram import SdramModel

        words = full_mix_words(1200, seed=31)
        machine = machine_for("split")

        def make_board():
            board = board_for_machine(machine, seed=6)
            board.firmware.nodes[0].sdram = SdramModel()
            return board

        assert_paths_identical(make_board, words)

    def test_tracer_firmware_generic_runner(self):
        from repro.memories.firmware.tracer import TraceCollectorFirmware

        words = full_mix_words(800, seed=37)

        def make_board():
            return MemoriesBoard(
                TraceCollectorFirmware(capacity=2000), name="t"
            )

        scalar, batched = assert_paths_identical(make_board, words)
        assert np.array_equal(
            scalar.firmware.to_trace().words, batched.firmware.to_trace().words
        )


class TestBatchedProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 600),
        kind=st.sampled_from(["single", "split", "multi"]),
        replacement=st.sampled_from(["lru", "fifo", "random", "plru"]),
        cadence=st.sampled_from([None, 1, 13, 256]),
    )
    def test_randomized_mix_identical(self, seed, n, kind, replacement, cadence):
        words = full_mix_words(n, seed=seed)
        machine = machine_for(kind, replacement)

        def make_board():
            board = board_for_machine(machine, seed=seed % 17)
            if cadence is not None:
                board.attach_telemetry(
                    CounterSampler(MemorySink(), every_transactions=cadence)
                )
            return board

        assert_paths_identical(make_board, words, chunks=min(3, n))
