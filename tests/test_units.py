"""Tests for repro.common.units: size parsing and formatting."""

import pytest

from repro.common.units import GB, KB, MB, TB, format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("128B", 128),
            ("128", 128),
            ("2KB", 2 * KB),
            ("2K", 2 * KB),
            ("64MB", 64 * MB),
            ("64 MB", 64 * MB),
            ("8GB", 8 * GB),
            ("1TB", TB),
            ("1.5MB", int(1.5 * MB)),
            ("0", 0),
        ],
    )
    def test_accepts_paper_style_sizes(self, text, expected):
        assert parse_size(text) == expected

    def test_lowercase_accepted(self):
        assert parse_size("64mb") == 64 * MB

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    @pytest.mark.parametrize("bad", ["", "MB", "12QB", "1.2.3MB", "-5MB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_rejects_fractional_bytes(self):
        with pytest.raises(ValueError):
            parse_size("1.0000001KB")


class TestFormatSize:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (128, "128B"),
            (2 * KB, "2KB"),
            (64 * MB, "64MB"),
            (8 * GB, "8GB"),
            (TB, "1TB"),
            (0, "0B"),
        ],
    )
    def test_exact_units(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_inexact_gets_decimal(self):
        assert format_size(int(1.5 * MB)) == "1.5MB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)

    @pytest.mark.parametrize("nbytes", [128, 4 * KB, 3 * MB, 7 * GB])
    def test_roundtrip(self, nbytes):
        assert parse_size(format_size(nbytes)) == nbytes
