"""Tests for the bank-level SDRAM timing model."""

import numpy as np
import pytest

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.memories.node_controller import NodeController
from repro.memories.sdram import SdramModel, calibration_error
from repro.memories.tx_buffer import service_cycles_per_op


class TestRowBuffer:
    def test_first_access_misses_row(self):
        model = SdramModel()
        cycles = model.access_cycles(0, now_cycle=0.0)
        assert cycles == model.row_miss_cycles
        assert model.stats.row_misses == 1

    def test_same_row_hits(self):
        model = SdramModel(row_bytes=2048)
        model.access_cycles(0, 0.0)
        cycles = model.access_cycles(128, 10.0)
        assert cycles == model.row_hit_cycles
        assert model.stats.row_hits == 1

    def test_different_rows_same_bank_conflict(self):
        model = SdramModel(n_banks=16, row_bytes=2048)
        stride = 2048 * 16  # same bank, next row
        model.access_cycles(0, 0.0)
        cycles = model.access_cycles(stride, 10.0)
        assert cycles == model.row_miss_cycles

    def test_banks_are_independent(self):
        model = SdramModel(n_banks=16, row_bytes=2048)
        model.access_cycles(0, 0.0)          # bank 0
        model.access_cycles(2048, 1.0)       # bank 1
        cycles = model.access_cycles(128, 2.0)  # bank 0, row still open
        assert cycles == model.row_hit_cycles

    def test_refresh_charged_on_deadline(self):
        model = SdramModel(refresh_interval=100.0, refresh_cycles=10.0)
        model.access_cycles(0, 0.0)
        cycles = model.access_cycles(128, 150.0)  # crossed one refresh
        assert cycles == model.row_hit_cycles + 10.0
        assert model.stats.refreshes == 1

    def test_multiple_missed_refreshes_accumulate(self):
        model = SdramModel(refresh_interval=100.0, refresh_cycles=10.0)
        model.access_cycles(0, 0.0)
        cycles = model.access_cycles(128, 350.0)  # crossed three refreshes
        assert cycles == model.row_hit_cycles + 30.0
        assert model.stats.refreshes == 3

    def test_reset(self):
        model = SdramModel()
        model.access_cycles(0, 0.0)
        model.reset()
        assert model.stats.accesses == 0
        assert model.access_cycles(0, 0.0) == model.row_miss_cycles


class TestValidation:
    def test_non_power_banks_rejected(self):
        with pytest.raises(ConfigurationError):
            SdramModel(n_banks=12)

    def test_non_power_row_rejected(self):
        with pytest.raises(ConfigurationError):
            SdramModel(row_bytes=3000)

    def test_miss_cheaper_than_hit_rejected(self):
        with pytest.raises(ConfigurationError):
            SdramModel(row_hit_cycles=5.0, row_miss_cycles=2.0)


class TestCalibration:
    def test_defaults_land_near_42_percent_constant(self):
        """A directory access pattern should average near the paper's
        constant service time (2 / 0.42 cycles per op)."""
        model = SdramModel()
        rng = np.random.default_rng(0)
        now = 0.0
        for _ in range(20_000):
            now += 10.0
            # Directory entries of a 64K-set cache, zipf-ish set reuse.
            address = int(rng.integers(0, 1 << 16)) * 32
            model.access_cycles(address, now)
        assert abs(calibration_error(model)) < 0.15
        assert model.average_service_cycles() == pytest.approx(
            service_cycles_per_op(), rel=0.15
        )

    def test_sequential_pattern_mostly_hits(self):
        model = SdramModel()
        now = 0.0
        for i in range(1000):
            now += 10.0
            model.access_cycles(i * 8, now)
        assert model.stats.row_hit_ratio > 0.9


class TestNodeControllerIntegration:
    def test_node_uses_sdram_costs(self):
        config = CacheNodeConfig(size=16 * 1024, assoc=4, line_size=128)
        sdram = SdramModel()
        node = NodeController(index=0, config=config, cpus=(0,), sdram=sdram)
        node.process_local(BusCommand.READ, 0x1000, SnoopResponse.NULL, 0.0, ())
        node.process_local(BusCommand.READ, 0x2000, SnoopResponse.NULL, 10.0, ())
        assert sdram.stats.accesses == 2

    def test_without_sdram_model_untouched(self):
        config = CacheNodeConfig(size=16 * 1024, assoc=4, line_size=128)
        node = NodeController(index=0, config=config, cpus=(0,))
        node.process_local(BusCommand.READ, 0x1000, SnoopResponse.NULL, 0.0, ())
        assert node.sdram is None
