"""Tests for the repro.verify static analysers.

The checker's acceptance bar is two-sided: every shipped protocol table
must certify clean, and every table in the seeded-broken corpus must be
rejected with a finding that names the violated invariant — for the
model-checked invariants, with a concrete counterexample trace.
"""

import copy
import json

import pytest

from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    ValidationError,
)
from repro.memories.config import BUILTIN_PROTOCOLS, CacheNodeConfig
from repro.memories.console import MemoriesConsole
from repro.memories.protocol_table import (
    LineState,
    ProtocolTable,
    load_protocol,
)
from repro.target import single_node_machine, split_smp_machine
from repro.target.mapping import TargetMachine, TargetNodeSpec
from repro.verify import (
    ProtocolModel,
    check_machine,
    check_protocol,
    check_repo,
    require_verified,
)
from repro.verify.model import IncompleteTableError


def mesi_map():
    return load_protocol("mesi").to_map()


def entry(table, op, state):
    return next(
        e for e in table["transitions"] if e["op"] == op and e["state"] == state
    )


# ---------------------------------------------------------------------- #
# Protocol checker: shipped tables certify
# ---------------------------------------------------------------------- #

class TestShippedProtocolsCertify:
    @pytest.mark.parametrize("name", BUILTIN_PROTOCOLS)
    def test_shipped_table_passes(self, name):
        report = check_protocol(name)
        assert report.ok, report.render()
        assert not report.warnings, report.render()

    @pytest.mark.parametrize("name", BUILTIN_PROTOCOLS)
    def test_all_invariants_evaluated(self, name):
        report = check_protocol(name)
        assert set(report.checks_run) >= {
            "structure",
            "completeness",
            "fill-consistency",
            "dirty-writeback",
            "reachability",
            "swmr",
        }

    def test_accepts_table_object_and_name_equally(self):
        by_name = check_protocol("moesi")
        by_object = check_protocol(load_protocol("moesi"))
        assert by_name.ok and by_object.ok

    def test_four_node_model_also_clean(self):
        report = check_protocol("moesi", node_counts=(2, 3, 4))
        assert report.ok, report.render()


# ---------------------------------------------------------------------- #
# Protocol checker: broken corpus is rejected with the right invariant
# ---------------------------------------------------------------------- #

class TestBrokenTablesRejected:
    def check_flags(self, table, invariant):
        report = check_protocol(table)
        assert not report.ok, f"expected {invariant} failure, got PASS"
        flagged = {f.check for f in report.errors}
        assert invariant in flagged, (
            f"expected {invariant}, got {sorted(flagged)}:\n{report.render()}"
        )
        return report

    def test_dropped_entry_breaks_completeness(self):
        table = mesi_map()
        table["transitions"].remove(entry(table, "LOCAL_READ", "SHARED"))
        report = self.check_flags(table, "completeness")
        finding = report.by_check("completeness")[0]
        assert "LOCAL_READ" in finding.message and "SHARED" in finding.message

    def test_stale_dirty_peer_breaks_swmr_with_trace(self):
        table = mesi_map()
        entry(table, "REMOTE_WRITE", "MODIFIED")["next"] = "MODIFIED"
        report = self.check_flags(table, "swmr")
        finding = report.by_check("swmr")[0]
        assert finding.trace, "swmr violations must carry a counterexample"
        assert finding.trace[0].startswith("power-up")
        # The shortest double-dirty trace is two writes from different nodes.
        assert len(finding.trace) == 3
        assert "MODIFIED" in finding.message

    def test_exclusive_shared_fill_breaks_fill_consistency(self):
        table = mesi_map()
        table["fill"]["read_shared"] = "EXCLUSIVE"
        self.check_flags(table, "fill-consistency")

    def test_clean_write_fill_breaks_fill_consistency(self):
        table = mesi_map()
        table["fill"]["write"] = "SHARED"
        self.check_flags(table, "fill-consistency")

    def test_dropped_writeback_breaks_dirty_writeback(self):
        table = load_protocol("moesi").to_map()
        remote_read = entry(table, "REMOTE_READ", "MODIFIED")
        remote_read["next"] = "SHARED"
        remote_read["hit"] = False
        report = self.check_flags(table, "dirty-writeback")
        finding = report.by_check("dirty-writeback")[0]
        assert "REMOTE_READ" in finding.location

    def test_dead_declared_state_breaks_reachability(self):
        table = mesi_map()
        table["states"].append("OWNED")
        for op in ("LOCAL_READ", "LOCAL_WRITE", "LOCAL_CASTOUT",
                   "REMOTE_READ", "REMOTE_WRITE"):
            table["transitions"].append(
                {"op": op, "state": "OWNED", "next": "OWNED", "hit": True}
            )
        report = self.check_flags(table, "reachability")
        assert "OWNED" in report.by_check("reachability")[0].message

    def test_transition_into_undeclared_state_breaks_reachability(self):
        table = load_protocol("msi").to_map()
        entry(table, "LOCAL_WRITE", "SHARED")["next"] = "OWNED"
        self.check_flags(table, "reachability")

    def test_unknown_op_name_breaks_structure(self):
        table = mesi_map()
        table["transitions"][0]["op"] = "LOCAL_FROB"
        self.check_flags(table, "structure")

    def test_declared_invalid_breaks_structure(self):
        table = mesi_map()
        table["states"].append("INVALID")
        self.check_flags(table, "structure")

    def test_missing_section_breaks_structure(self):
        self.check_flags({"name": "hollow", "states": ["SHARED"]}, "structure")

    def test_model_checking_skipped_on_incomplete_table(self):
        table = mesi_map()
        table["transitions"].remove(entry(table, "LOCAL_READ", "SHARED"))
        report = check_protocol(table)
        assert "swmr" not in report.checks_run
        assert any(f.check == "model" for f in report.findings)


# ---------------------------------------------------------------------- #
# Model internals
# ---------------------------------------------------------------------- #

class TestProtocolModel:
    def build(self, name="mesi"):
        from repro.memories.protocol_table import CacheOp

        table = load_protocol(name)
        transitions = {
            (CacheOp(op), LineState(state)): transition
            for (op, state), transition in table.raw_table().items()
        }
        return ProtocolModel(transitions, table.fill)

    def test_node_count_bounds(self):
        model = self.build()
        with pytest.raises(ValidationError):
            model.explore(1)
        with pytest.raises(ValidationError):
            model.explore(5)

    def test_exploration_reaches_all_mesi_states(self):
        exploration = self.build().explore(2)
        assert exploration.line_states_seen == {
            LineState.INVALID,
            LineState.SHARED,
            LineState.EXCLUSIVE,
            LineState.MODIFIED,
        }

    def test_state_space_is_small_and_exhausted(self):
        exploration = self.build("moesi").explore(3)
        # 5 line states per node, owner in {None, 0, 1, 2}.
        assert len(exploration.reachable) <= 5 ** 3 * 4

    def test_trace_reconstruction_is_connected(self):
        exploration = self.build().explore(2)
        some_state = next(iter(exploration.reachable - {((
            LineState.INVALID, LineState.INVALID), None)}))
        trace = exploration.trace_to(some_state)
        assert trace[0] == "power-up: all nodes INVALID"
        assert len(trace) >= 2

    def test_incomplete_table_raises_named_error(self):
        model = self.build("msi")
        del model._table[next(iter(model._table))]
        with pytest.raises(IncompleteTableError):
            model.explore(2)


# ---------------------------------------------------------------------- #
# Machine validator
# ---------------------------------------------------------------------- #

class TestMachineValidator:
    def machine(self, **kwargs):
        config = CacheNodeConfig.create("64MB", **kwargs)
        return split_smp_machine(config, n_cpus=8, procs_per_node=4)

    def test_good_machine_passes(self):
        report = check_machine(self.machine())
        assert report.ok, report.render()
        assert set(report.checks_run) == {
            "structure", "envelope", "counters", "protocol", "ecc", "mapping",
        }

    def test_directory_near_sdram_ceiling_warns(self):
        config = CacheNodeConfig.create("8GB", line_size=256)
        report = check_machine(single_node_machine(config, n_cpus=8))
        assert report.ok
        assert any(
            "SDRAM" in f.message for f in report.warnings
        ), report.render()

    def test_counter_wrap_horizon_warns_on_long_runs(self):
        safe = check_machine(self.machine(), run_hours=24.0)
        assert not safe.by_check("counters") or safe.ok
        long = check_machine(self.machine(), run_hours=48.0)
        wraps = [f for f in long.warnings if f.check == "counters"]
        assert wraps and "wraps after" in wraps[0].message
        # The paper's ">30 hours at 20% utilization" claim, made concrete.
        assert "30.5 h" in wraps[0].message

    def test_overlapping_cpus_in_dict_flagged_as_structure(self):
        machine = self.machine()
        data = machine.to_dict()
        data["nodes"][1]["cpus"] = data["nodes"][0]["cpus"]
        report = check_machine(data)
        assert not report.ok
        assert report.errors[0].check == "structure"
        assert "mapped to nodes" in report.errors[0].message

    def test_unmapped_cpu0_warns(self):
        config = CacheNodeConfig.create("64MB", procs_per_node=2)
        machine = TargetMachine(
            nodes=(TargetNodeSpec(config=config, cpus=(4, 5)),),
            name="offset",
        )
        report = check_machine(machine)
        assert any(
            "CPU 0" in f.message for f in report.warnings
        ), report.render()

    def test_unknown_protocol_name_is_an_error(self):
        config = CacheNodeConfig(64 * 1024 * 1024, protocol="zesi")
        machine = single_node_machine(config, n_cpus=8)
        report = check_machine(machine)
        assert not report.ok
        assert any(
            f.check == "protocol" and "zesi" in f.message
            for f in report.errors
        )

    def test_bad_analysis_parameters_rejected(self):
        report = check_machine(self.machine(), run_hours=-1.0)
        assert not report.ok


# ---------------------------------------------------------------------- #
# Console and require_verified gates
# ---------------------------------------------------------------------- #

class TestVerificationGates:
    def broken_table(self):
        table = mesi_map()
        entry(table, "REMOTE_WRITE", "MODIFIED")["next"] = "MODIFIED"
        table["name"] = "broken-mesi"
        return ProtocolTable.from_map(table)

    def test_require_verified_passes_shipped(self):
        report = require_verified(load_protocol("moesi"))
        assert report.ok

    def test_require_verified_raises_with_findings(self):
        with pytest.raises(ProtocolError, match="swmr"):
            require_verified(self.broken_table())

    def test_console_refuses_broken_upload_unless_forced(self):
        console = MemoriesConsole()
        machine = single_node_machine(
            CacheNodeConfig.create("64MB"), n_cpus=8
        )
        console.power_up(machine)
        with pytest.raises(ProtocolError, match="force=True"):
            console.load_protocol_map(0, self.broken_table())
        console.load_protocol_map(0, self.broken_table(), force=True)
        assert console.board is not None

    def test_power_up_refuses_unverifiable_machine(self):
        config = CacheNodeConfig(64 * 1024 * 1024, protocol="zesi")
        machine = single_node_machine(config, n_cpus=8)
        with pytest.raises(ConfigurationError, match="failed verification"):
            MemoriesConsole().power_up(machine)

    def test_console_verify_command(self):
        console = MemoriesConsole()
        console.power_up(
            single_node_machine(CacheNodeConfig.create("64MB"), n_cpus=8)
        )
        output = console.execute("verify")
        assert "PASS" in output
        assert "checks run" in output


# ---------------------------------------------------------------------- #
# Repo lint
# ---------------------------------------------------------------------- #

class TestRepoLint:
    def test_the_repo_itself_is_clean(self):
        report = check_repo()
        assert report.ok, report.render()

    def lint_source(self, tmp_path, relative, source):
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        return check_repo(tmp_path)

    def test_random_import_flagged(self, tmp_path):
        report = self.lint_source(
            tmp_path, "workload.py", "import random\n"
        )
        assert any(f.check == "rng-discipline" for f in report.errors)

    def test_random_allowed_in_rng_module(self, tmp_path):
        report = self.lint_source(
            tmp_path, "common/rng.py", "import random\n"
        )
        assert report.ok, report.render()

    def test_time_time_flagged_outside_shim(self, tmp_path):
        report = self.lint_source(
            tmp_path, "model.py",
            "import time\n\nNOW = time.time()\n",
        )
        assert any(f.check == "time-discipline" for f in report.errors)

    def test_perf_counter_is_allowed(self, tmp_path):
        report = self.lint_source(
            tmp_path, "bench.py",
            "import time\n\nSTART = time.perf_counter()\n",
        )
        assert report.ok, report.render()

    def test_builtin_raise_flagged(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "def f(x):\n    raise ValueError(x)\n",
        )
        flagged = [f for f in report.errors if f.check == "exception-hierarchy"]
        assert flagged and "ValueError" in flagged[0].message

    def test_not_implemented_error_exempt(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "def f():\n    raise NotImplementedError\n",
        )
        assert report.ok, report.render()

    def test_orphan_error_class_flagged(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "class LonelyError(Exception):\n    pass\n",
        )
        assert any(
            f.check == "exception-hierarchy" and "LonelyError" in f.message
            for f in report.errors
        )

    def test_repro_error_descendants_accepted(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "class ReproError(Exception):\n    pass\n\n\n"
            "class ChildError(ReproError):\n    pass\n\n\n"
            "class GrandchildError(ChildError):\n    pass\n\n\n"
            "def f():\n    raise GrandchildError('x')\n",
        )
        assert report.ok, report.render()

    def test_mutable_default_flagged(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "def f(items=[]):\n    return items\n",
        )
        assert any(f.check == "mutable-default" for f in report.errors)

    def test_call_replication_flagged(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "def f(make, n):\n    return [make()] * n\n",
        )
        assert any(f.check == "call-replication" for f in report.errors)

    def test_call_replication_reversed_operands_flagged(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "def f(make, n):\n    return n * (make(),)\n",
        )
        assert any(f.check == "call-replication" for f in report.errors)

    def test_scalar_replication_clean(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "def f(n):\n    return [0] * n\n",
        )
        assert report.ok, report.render()

    def test_call_replication_comprehension_clean(self, tmp_path):
        report = self.lint_source(
            tmp_path, "mod.py",
            "def f(make, n):\n    return [make() for _ in range(n)]\n",
        )
        assert report.ok, report.render()

    def test_syntax_error_reported_not_raised(self, tmp_path):
        report = self.lint_source(tmp_path, "mod.py", "def broken(:\n")
        assert any(f.check == "structure" for f in report.errors)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #

class TestVerifyCli:
    def test_verify_protocol_builtins(self, capsys):
        from repro.cli import main

        assert main(["verify", "protocol"]) == 0
        output = capsys.readouterr().out
        for name in BUILTIN_PROTOCOLS:
            assert f"protocol {name!r}: PASS" in output

    def test_verify_protocol_map_file(self, tmp_path, capsys):
        from repro.cli import main

        broken = mesi_map()
        broken["transitions"].remove(entry(broken, "LOCAL_READ", "SHARED"))
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(broken))
        assert main(["verify", "protocol", str(path)]) == 1
        assert "completeness" in capsys.readouterr().out

    def test_verify_machine_file(self, tmp_path, capsys):
        from repro.cli import main

        machine = split_smp_machine(
            CacheNodeConfig.create("64MB"), n_cpus=8, procs_per_node=4
        )
        path = tmp_path / "machine.json"
        machine.save(path)
        assert main(["verify", "machine", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_repo(self, capsys):
        from repro.cli import main

        assert main(["verify", "repo"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_usage_errors(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 2
        assert main(["verify", "nonsense"]) == 2


# ---------------------------------------------------------------------- #
# Exception hierarchy contract
# ---------------------------------------------------------------------- #

class TestValidationError:
    def test_is_both_repro_and_value_error(self):
        from repro.common.units import parse_size

        with pytest.raises(ValueError):
            parse_size("not-a-size")
        with pytest.raises(ReproError):
            parse_size("not-a-size")

    def test_self_check_corpus_is_in_sync(self):
        """The CI corpus script agrees with the checker."""
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "tools" / "verify_selfcheck.py"
        )
        spec = importlib.util.spec_from_file_location("verify_selfcheck", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        for _description, base, mutate, expected in module.CORPUS:
            table = copy.deepcopy(load_protocol(base).to_map())
            mutate(table)
            report = check_protocol(table)
            assert not report.ok
            assert expected in {f.check for f in report.errors}
