"""Tests for the ablation studies (design choices the paper calls out)."""

import pytest

from repro.experiments.ablations import (
    AblationSettings,
    buffer_depth_ablation,
    inclusion_ablation,
    protocol_ablation,
    replacement_ablation,
    sdram_ablation,
)
from repro.experiments.params import ExperimentScale

TINY = AblationSettings(scale=ExperimentScale(scale=4096), records=30_000)


class TestBufferDepth:
    @pytest.fixture(scope="class")
    def result(self):
        return buffer_depth_ablation(TINY)

    def test_design_point_never_retries(self, result):
        """Section 3.3: 512 entries, <= 42% utilization -> zero retries."""
        assert result.data["depth512_util0.2"] == 0.0
        assert result.data["depth512_util0.42"] == 0.0

    def test_shallow_buffers_retry_under_bursts(self, result):
        assert result.data["depth8_util0.2"] > 0.1

    def test_overload_defeats_any_depth(self, result):
        assert result.data["depth512_util0.6"] > 0.0


class TestProtocol:
    @pytest.fixture(scope="class")
    def result(self):
        return protocol_ablation(TINY)

    def test_all_protocols_ran(self, result):
        assert set(result.data) == {"msi", "mesi", "moesi"}

    def test_moesi_supplies_at_least_as_much(self, result):
        """Owned state keeps supplying; M-only protocols forfeit after one."""
        assert (
            result.data["moesi"]["dirty_supplied"]
            >= result.data["mesi"]["dirty_supplied"]
        )

    def test_miss_ratios_comparable(self, result):
        ratios = [entry["miss_ratio"] for entry in result.data.values()]
        assert max(ratios) - min(ratios) < 0.1


class TestReplacement:
    @pytest.fixture(scope="class")
    def result(self):
        return replacement_ablation(TINY)

    def test_all_policies_ran(self, result):
        assert set(result.data) == {"lru", "plru", "fifo", "random"}

    def test_lru_not_worst(self, result):
        assert result.data["lru"] <= max(result.data.values())

    def test_plru_close_to_lru(self, result):
        assert result.data["plru"] == pytest.approx(result.data["lru"], abs=0.05)


class TestSdram:
    @pytest.fixture(scope="class")
    def result(self):
        return sdram_ablation(TINY)

    def test_banked_mean_validates_the_42pct_constant(self, result):
        assert result.data["banked_mean_cycles"] == pytest.approx(
            result.data["constant_cycles"], rel=0.2
        )

    def test_neither_model_retries_at_nominal_load(self, result):
        assert result.data["constant_high_water"] < 512
        assert result.data["banked_high_water"] < 512


class TestInclusion:
    @pytest.fixture(scope="class")
    def result(self):
        return inclusion_ablation(TINY)

    def test_error_shrinks_with_cache_size(self, result):
        assert result.data["16MB"] > result.data["256MB"]

    def test_shares_are_fractions(self, result):
        for share in result.data.values():
            assert 0.0 <= share <= 1.0
