"""Tests for repro.service: admission, back-pressure, deadlines, drain.

The acceptance bar mirrors the service's contract: every admitted
session either completes bit-identically to an undisturbed supervised
run, or is refused/expired with a structured reason naming the exhausted
budget.  The drain test is the headline — a SIGTERM'd server's in-flight
run must resume on the next server *bit-identically*, never from zero.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.faults import ServiceChaosPlan
from repro.memories.config import CacheNodeConfig
from repro.service import (
    AdmissionController,
    AdmissionError,
    DeadlineError,
    EmulationService,
    IngestBuffer,
    IngestClosedError,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ServiceConfig,
    ServiceState,
    SessionRequest,
    SessionState,
    chunk_from_bytes,
    render_service_manifest,
    synthetic_words,
)
from repro.supervisor import RunJournal, RunSupervisor, SupervisedRunSpec
from repro.target.configs import single_node_machine

CFG = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)


def run_spec(seed=0, **kw):
    kw.setdefault("segment_records", 500)
    kw.setdefault("heartbeat_every", 200)
    return SupervisedRunSpec(
        machine=single_node_machine(CFG, n_cpus=4), seed=seed, **kw
    )


def request(seed=0, records=1500, **kw):
    spec = kw.pop("run_spec", None) or run_spec(seed=seed)
    trace = kw.pop("trace", None) or {
        "kind": "synthetic", "records": records, "seed": seed,
    }
    return SessionRequest(run_spec=spec, trace=trace, **kw)


def reference_digest(spec, words, run_dir):
    """What an undisturbed supervised run of the same work produces."""
    return RunSupervisor.create(spec, words, run_dir).run().digest


async def wait_done(session, timeout=120.0):
    deadline = time.perf_counter() + timeout
    while not (
        session.state.terminal or session.state == SessionState.SUSPENDED
    ):
        assert time.perf_counter() < deadline, (
            f"session {session.id} stuck in {session.state}"
        )
        await asyncio.sleep(0.02)


# ---------------------------------------------------------------------- #
# Admission control and the shedding ladder
# ---------------------------------------------------------------------- #


class TestAdmission:
    def test_ladder_rungs(self):
        assert ServiceState.ACCEPT.admits and ServiceState.ACCEPT.launches
        assert ServiceState.QUEUE_ONLY.admits
        assert not ServiceState.DRAIN.admits
        assert not ServiceState.REJECT.admits
        assert not ServiceState.REJECT.launches

    def test_queue_depth_budget_is_structured(self):
        control = AdmissionController(ServiceConfig(max_queue_depth=2))
        for seed in range(2):
            control.admit(request(seed=seed), ServiceState.ACCEPT)
        with pytest.raises(AdmissionError) as info:
            control.admit(request(seed=9), ServiceState.ACCEPT)
        error = info.value
        assert error.reason == "queue-full"
        assert error.budget == "max_queue_depth"
        assert error.limit == 2
        assert error.value >= 2
        detail = error.to_dict()
        assert detail["type"] == "admission"
        assert detail["reason"] == "queue-full"
        assert detail["budget"] == "max_queue_depth"

    def test_tenant_queue_quota(self):
        control = AdmissionController(
            ServiceConfig(max_queue_depth=16, max_queued_per_tenant=1)
        )
        control.admit(request(tenant="acme"), ServiceState.ACCEPT)
        with pytest.raises(AdmissionError) as info:
            control.admit(request(tenant="acme"), ServiceState.ACCEPT)
        assert info.value.reason == "tenant-queue-quota"
        assert info.value.budget == "max_queued_per_tenant"
        # Another tenant's budget is untouched.
        control.admit(request(tenant="globex"), ServiceState.ACCEPT)

    def test_drain_and_reject_refuse_everything(self):
        control = AdmissionController(ServiceConfig())
        with pytest.raises(AdmissionError, match="drain"):
            control.admit(request(), ServiceState.DRAIN)
        with pytest.raises(AdmissionError) as info:
            control.admit(request(), ServiceState.REJECT)
        assert info.value.reason == "shedding"

    def test_queue_only_hysteresis(self):
        config = ServiceConfig(max_queue_depth=8, queue_only_watermark=0.5)
        control = AdmissionController(config)
        assert control.suggested_state(ServiceState.ACCEPT) \
            == ServiceState.ACCEPT
        for seed in range(4):
            control.admit(request(seed=seed, tenant=f"t{seed}"),
                          ServiceState.ACCEPT)
        assert control.suggested_state(ServiceState.ACCEPT) \
            == ServiceState.QUEUE_ONLY
        # Receding below half the watermark steps back down to ACCEPT.
        for _ in range(3):
            control.forget_queued("t0")
        assert control.suggested_state(ServiceState.QUEUE_ONLY) \
            == ServiceState.ACCEPT
        # The ladder never *auto*-walks into DRAIN or REJECT.
        assert control.suggested_state(ServiceState.DRAIN) \
            == ServiceState.DRAIN

    def test_per_tenant_workers_wait_not_reject(self):
        control = AdmissionController(
            ServiceConfig(max_workers=4, max_workers_per_tenant=1)
        )
        control.admit(request(tenant="acme"), ServiceState.ACCEPT)
        control.admit(request(tenant="acme", seed=1), ServiceState.ACCEPT)
        assert control.may_launch("acme")
        control.launch("acme")
        # Over-quota tenants wait for a slot; they are never rejected.
        assert not control.may_launch("acme")
        control.release("acme")
        assert control.may_launch("acme")


# ---------------------------------------------------------------------- #
# The bounded ingest buffer (back-pressure primitive)
# ---------------------------------------------------------------------- #


class TestIngestBuffer:
    def test_bound_holds_under_slow_consumer(self):
        async def scenario():
            buffer = IngestBuffer(max_records=128)
            words = np.arange(1280, dtype=np.uint64)
            received = []

            async def consume():
                while True:
                    chunk = await buffer.get()
                    if chunk is None:
                        return
                    received.append(chunk)
                    await asyncio.sleep(0.002)  # deliberately slow

            consumer = asyncio.ensure_future(consume())
            for start in range(0, 1280, 32):
                await buffer.put(words[start:start + 32])
            await buffer.end()
            await consumer
            return buffer, np.concatenate(received)

        buffer, received = asyncio.run(scenario())
        assert buffer.high_water <= 128
        assert buffer.producer_waits > 0
        assert buffer.records_in == 1280
        assert np.array_equal(received, np.arange(1280, dtype=np.uint64))

    def test_oversized_chunk_admitted_alone(self):
        async def scenario():
            buffer = IngestBuffer(max_records=16)
            await buffer.put(np.arange(64, dtype=np.uint64))
            await buffer.end()
            chunk = await buffer.get()
            assert await buffer.get() is None
            return buffer, chunk

        buffer, chunk = asyncio.run(scenario())
        assert chunk.shape[0] == 64
        assert buffer.high_water == 64  # one oversized chunk, alone

    def test_closed_buffer_raises_structured(self):
        async def scenario():
            buffer = IngestBuffer(max_records=16)
            await buffer.put(np.arange(4, dtype=np.uint64))
            await buffer.close()
            with pytest.raises(IngestClosedError):
                await buffer.put(np.arange(4, dtype=np.uint64))
            await buffer.get()  # the buffered chunk drains first
            with pytest.raises(IngestClosedError):
                await buffer.get()

        asyncio.run(scenario())

    def test_chunk_from_bytes_validates_word_alignment(self):
        words = np.arange(8, dtype=np.uint64)
        decoded = chunk_from_bytes(words.astype("<u8").tobytes())
        assert np.array_equal(decoded, words)
        from repro.common.errors import TraceFormatError

        with pytest.raises(TraceFormatError, match="8-byte"):
            chunk_from_bytes(b"\x00" * 13)


# ---------------------------------------------------------------------- #
# The service: scheduling, stress, quotas, deadlines
# ---------------------------------------------------------------------- #


class TestServiceSessions:
    def test_concurrent_mixed_priority_stress(self, tmp_path):
        """>= 8 concurrent sessions, mixed priorities and tenants, all
        complete; equal submissions produce equal digests."""

        async def scenario():
            service = EmulationService(
                tmp_path / "svc", ServiceConfig(max_workers=4)
            )
            await service.start()
            priorities = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW,
                          PRIORITY_NORMAL)
            sessions = [
                service.submit(request(
                    seed=index // 2,  # pairs share a seed → equal digests
                    priority=priorities[index % 4],
                    tenant=("acme", "globex")[index % 2],
                    label=f"stress-{index}",
                ))
                for index in range(8)
            ]
            await asyncio.gather(*(wait_done(s) for s in sessions))
            status = service.status()
            await service.stop()
            return sessions, status

        sessions, status = asyncio.run(scenario())
        assert all(s.state == SessionState.COMPLETED for s in sessions)
        assert status["metrics"]["admitted"] == 8
        assert status["metrics"]["completed"] == 8
        digests = [s.result.digest for s in sessions]
        assert all(d for d in digests)
        for index in range(0, 8, 2):
            assert digests[index] == digests[index + 1]
        # Different seeds genuinely differ.
        assert digests[0] != digests[2]
        # The manifest closed every session out.
        journal = RunJournal(tmp_path / "svc" / "service.jsonl")
        assert len(journal.entries("session_complete")) == 8
        journal.close()

    def test_priority_orders_queued_launches(self, tmp_path):
        async def scenario():
            service = EmulationService(
                tmp_path / "svc", ServiceConfig(max_workers=1)
            )
            await service.start()
            blocker = service.submit(request(seed=0, label="blocker"))
            # Wait until the single worker slot is taken, so the next two
            # submissions genuinely queue.
            while blocker.state == SessionState.QUEUED:
                await asyncio.sleep(0.01)
            low = service.submit(
                request(seed=1, priority=PRIORITY_LOW, label="low")
            )
            high = service.submit(
                request(seed=2, priority=PRIORITY_HIGH, label="high")
            )
            for session in (blocker, low, high):
                await wait_done(session)
            await service.stop()
            return blocker, low, high

        blocker, low, high = asyncio.run(scenario())
        assert all(s.state == SessionState.COMPLETED
                   for s in (blocker, low, high))
        journal = RunJournal(tmp_path / "svc" / "service.jsonl")
        started = [r["session"] for r in journal.entries("session_started")]
        journal.close()
        assert started == [blocker.id, high.id, low.id]

    def test_queue_full_rejection_counts_metric(self, tmp_path):
        async def scenario():
            service = EmulationService(
                tmp_path / "svc", ServiceConfig(max_queue_depth=2)
            )
            await service.start()
            # Stream sessions with no trace yet stay QUEUED indefinitely.
            for _ in range(2):
                service.submit(request(trace={"kind": "stream"}))
            with pytest.raises(AdmissionError) as info:
                service.submit(request(trace={"kind": "stream"}))
            metrics = dict(service.metrics)
            await service.stop()
            return info.value, metrics

        error, metrics = asyncio.run(scenario())
        assert error.reason == "queue-full"
        assert error.budget == "max_queue_depth"
        assert metrics["rejected.queue-full"] == 1
        assert metrics["admitted"] == 2

    def test_stream_ingest_backpressure_and_bit_identity(self, tmp_path):
        """A stream 8x the buffer bound stages under back-pressure and
        replays bit-identically to a direct supervised run."""
        spec = run_spec(seed=7)
        trace = {"kind": "synthetic", "records": 2000, "seed": 7}
        words = synthetic_words(request(trace=dict(trace)).trace)

        async def scenario():
            service = EmulationService(
                tmp_path / "svc", ServiceConfig(ingest_buffer_records=256)
            )
            await service.start()
            session = service.submit(SessionRequest(
                run_spec=spec, trace={"kind": "stream"}, label="stream",
            ))
            for start in range(0, 2000, 64):
                await service.ingest_chunk(session.id, words[start:start + 64])
            staged = await service.ingest_end(session.id)
            await wait_done(session)
            snapshot = service.ingest_snapshot()
            await service.stop()
            return session, staged, snapshot

        session, staged, snapshot = asyncio.run(scenario())
        assert staged == 2000
        assert session.state == SessionState.COMPLETED
        assert snapshot["high_water"] <= 256  # the bound held
        assert snapshot["producer_waits"] >= 1  # and was exercised
        assert session.result.digest == reference_digest(
            spec, words, tmp_path / "ref"
        )

    def test_wall_deadline_expires_queued_session(self, tmp_path):
        async def scenario():
            service = EmulationService(tmp_path / "svc", ServiceConfig())
            await service.start()
            # A stream session that never receives its trace can only
            # expire; the watchdog owes it a structured reason.
            session = service.submit(request(
                trace={"kind": "stream"}, wall_deadline=0.2,
            ))
            await wait_done(session, timeout=10.0)
            metrics = dict(service.metrics)
            await service.stop()
            return session, metrics

        session, metrics = asyncio.run(scenario())
        assert session.state == SessionState.EXPIRED
        assert session.reason == "wall-deadline"
        assert metrics["expired"] == 1
        with pytest.raises(DeadlineError, match="wall-deadline"):
            session.raise_for_state()

    def test_cycle_deadline_kills_running_session(self, tmp_path):
        async def scenario():
            service = EmulationService(tmp_path / "svc", ServiceConfig())
            await service.start()
            session = service.submit(request(
                seed=3, records=20_000, cycle_deadline=1.0,
            ))
            await wait_done(session)
            metrics = dict(service.metrics)
            await service.stop()
            return session, metrics

        session, metrics = asyncio.run(scenario())
        assert session.state == SessionState.EXPIRED
        assert session.reason == "cycle-deadline"
        assert metrics["expired"] == 1
        assert session.cycle > 1.0  # the heartbeat saw the overrun

    def test_worker_kill_chaos_stays_bit_identical(self, tmp_path):
        spec = run_spec(seed=11)
        words = synthetic_words(request(seed=11, records=2000).trace)

        async def scenario():
            service = EmulationService(
                tmp_path / "svc", ServiceConfig(),
                chaos=ServiceChaosPlan(kill_worker={"victim": 700}),
            )
            await service.start()
            session = service.submit(request(
                seed=11, records=2000, label="victim", run_spec=spec,
            ))
            await wait_done(session)
            metrics = dict(service.metrics)
            await service.stop()
            return session, metrics

        session, metrics = asyncio.run(scenario())
        assert session.state == SessionState.COMPLETED
        assert session.result.restarts == 1
        assert metrics["worker_restarts"] == 1
        assert session.result.digest == reference_digest(
            spec, words, tmp_path / "ref"
        )

    def test_stall_ingest_chaos_holds_bound_and_expires(self, tmp_path):
        """A stalled stager (chaos) fills the bounded buffer; the bound
        holds, back-pressure parks the producer, and the wall deadline
        resolves the stalemate with a structured expiry."""
        words = np.arange(640, dtype=np.uint64)

        async def scenario():
            service = EmulationService(
                tmp_path / "svc",
                ServiceConfig(ingest_buffer_records=64),
                chaos=ServiceChaosPlan(stall_ingest={"stalled": 2}),
            )
            await service.start()
            session = service.submit(request(
                trace={"kind": "stream"}, wall_deadline=0.5,
                label="stalled",
            ))

            async def produce():
                try:
                    for start in range(0, 640, 32):
                        await service.ingest_chunk(
                            session.id, words[start:start + 32]
                        )
                except IngestClosedError:
                    return "torn"
                return "fed-all"

            outcome = await produce()
            await wait_done(session, timeout=10.0)
            snapshot = service.ingest_snapshot()
            await service.stop()
            return session, outcome, snapshot

        session, outcome, snapshot = asyncio.run(scenario())
        assert outcome == "torn"  # deadline close released the producer
        assert session.state == SessionState.EXPIRED
        assert session.reason == "wall-deadline"
        assert snapshot["high_water"] <= 64  # the bound held under stall
        assert snapshot["producer_waits"] >= 1
        run_dir = tmp_path / "svc" / "runs" / session.id
        assert not (run_dir / "ingest.words").exists()
        assert not (run_dir / "ingest.words.part").exists()

    def test_stop_closes_telemetry_handle(self, tmp_path):
        async def scenario():
            service = EmulationService(tmp_path / "svc", ServiceConfig())
            await service.start()
            handle = service._telemetry_handle
            assert handle is not None and not handle.closed
            await service.stop()
            return service, handle

        service, handle = asyncio.run(scenario())
        assert handle.closed
        assert service._telemetry_handle is None

    def test_service_retry_resumes_after_budget_exhaustion(self, tmp_path):
        """When the *supervisor* gives up, the service-level retry
        re-opens the journal and finishes the same run bit-identically."""
        spec = run_spec(seed=5, max_restarts=0, backoff_base=0.01)
        words = synthetic_words(request(seed=5, records=2000).trace)

        async def scenario():
            service = EmulationService(
                tmp_path / "svc",
                ServiceConfig(retry_backoff_base=0.01),
                chaos=ServiceChaosPlan(kill_worker={"fragile": 700}),
            )
            await service.start()
            session = service.submit(request(
                seed=5, records=2000, label="fragile", run_spec=spec,
                max_attempts=2,
            ))
            await wait_done(session)
            metrics = dict(service.metrics)
            await service.stop()
            return session, metrics

        session, metrics = asyncio.run(scenario())
        assert session.state == SessionState.COMPLETED
        assert session.attempts == 2
        assert metrics["retries"] == 1
        assert session.result.digest == reference_digest(
            spec, words, tmp_path / "ref"
        )


# ---------------------------------------------------------------------- #
# The HTTP/WebSocket front end, end to end over real sockets
# ---------------------------------------------------------------------- #


class TestHttpApi:
    def test_submit_tail_result_metrics_roundtrip(self, tmp_path):
        from repro.service import ServiceClient, ServiceServer
        from repro.telemetry.prom import parse_exposition

        async def scenario():
            server = ServiceServer(
                EmulationService(tmp_path / "svc", ServiceConfig())
            )
            await server.start()
            client = ServiceClient(server.host, server.port)

            health = await client.healthz()
            ready, _ = await client.readyz()
            session_id = await client.submit({
                "run_spec": run_spec(seed=4).to_dict(),
                "trace": {"kind": "synthetic", "records": 1500, "seed": 4},
                "label": "wire",
            })
            view = await client.wait(session_id, timeout=60)
            result = await client.result(session_id)
            events = [e async for e in client.tail(session_id, limit=3)]
            metrics = parse_exposition(await client.metrics())
            await server.stop(drain=True)
            return health, ready, view, result, events, metrics

        health, ready, view, result, events, metrics = asyncio.run(scenario())
        assert health["state"] == "accept"
        assert ready
        assert view["state"] == "completed"
        assert result["result"]["digest"]
        assert events and all("event" in e for e in events)
        assert metrics[("memories_service_sessions",
                        (("state", "completed"),))] == 1.0

    def test_structured_refusal_crosses_the_wire(self, tmp_path):
        from repro.service import ServiceClient, ServiceServer

        async def scenario():
            server = ServiceServer(EmulationService(
                tmp_path / "svc", ServiceConfig(max_queue_depth=1)
            ))
            await server.start()
            client = ServiceClient(server.host, server.port)
            stream = {
                "run_spec": run_spec().to_dict(),
                "trace": {"kind": "stream"},
            }
            await client.submit(stream)
            with pytest.raises(AdmissionError) as info:
                await client.submit(stream)
            # Malformed requests map to validation, not a refusal.
            with pytest.raises(ValidationError):
                await client.submit({
                    "run_spec": run_spec().to_dict(),
                    "trace": {"kind": "synthetic", "records": 0},
                })
            await server.stop(drain=True)
            return info.value

        error = asyncio.run(scenario())
        assert error.reason == "queue-full"
        assert error.budget == "max_queue_depth"
        assert error.limit == 1

    def test_ws_ingest_streams_and_completes(self, tmp_path):
        from repro.service import ServiceClient, ServiceServer

        spec = run_spec(seed=6)
        words = synthetic_words(request(seed=6, records=2000).trace)

        async def scenario():
            server = ServiceServer(EmulationService(
                tmp_path / "svc", ServiceConfig(ingest_buffer_records=512)
            ))
            await server.start()
            client = ServiceClient(server.host, server.port)
            session_id = await client.submit({
                "run_spec": spec.to_dict(),
                "trace": {"kind": "stream"},
                "label": "ws-stream",
            })
            chunks = [words[i:i + 250] for i in range(0, 2000, 250)]
            staged = await client.ingest_ws(session_id, chunks)
            view = await client.wait(session_id, timeout=60)
            result = await client.result(session_id)
            await server.stop(drain=True)
            return staged, view, result

        staged, view, result = asyncio.run(scenario())
        assert staged == 2000
        assert view["state"] == "completed"
        assert result["result"]["digest"] == reference_digest(
            spec, words, tmp_path / "ref"
        )


    def test_torn_ws_ingest_expires_session_live(self, tmp_path):
        """A WS ingest stream severed without a close frame (TCP tear)
        must expire the session in place — structured reason, quota slot
        released — not leave it QUEUED forever."""
        from repro.service import ServiceClient, ServiceServer

        async def scenario():
            plan = ServiceChaosPlan(drop_ingest={"torn": 2})
            server = ServiceServer(EmulationService(
                tmp_path / "svc", ServiceConfig(), chaos=plan,
            ))
            await server.start()
            client = ServiceClient(server.host, server.port)
            session_id = await client.submit({
                "run_spec": run_spec().to_dict(),
                "trace": {"kind": "stream"},
                "label": "torn",
            })
            words = np.arange(96, dtype=np.uint64)
            chunks = [words[i:i + 32] for i in range(0, 96, 32)]
            staged = await client.ingest_ws(
                session_id, chunks,
                drop_after=plan.ingest_drop_after("torn"),
            )
            view = await client.wait(session_id, timeout=10)
            queued = server.service.admission.queued_total
            await server.stop(drain=True)
            return staged, view, queued

        staged, view, queued = asyncio.run(scenario())
        assert staged is None
        assert view["state"] == "expired"
        assert view["reason"] == "orphaned-ingest"
        assert queued == 0  # the tenant's queue-quota slot was released

    def test_torn_http_ingest_expires_session_live(self, tmp_path):
        """A client that dies mid-POST (fewer body bytes than promised)
        must not strand the session: the torn body aborts ingest and the
        session expires with a structured reason."""
        from repro.service import ServiceClient, ServiceServer

        async def scenario():
            server = ServiceServer(
                EmulationService(tmp_path / "svc", ServiceConfig())
            )
            await server.start()
            client = ServiceClient(server.host, server.port)
            session_id = await client.submit({
                "run_spec": run_spec().to_dict(),
                "trace": {"kind": "stream"},
                "label": "torn-http",
            })
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            head = (
                f"POST /sessions/{session_id}/ingest HTTP/1.1\r\n"
                f"Host: {server.host}:{server.port}\r\n"
                "Content-Type: application/octet-stream\r\n"
                "Content-Length: 1600\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1")
            writer.write(head + b"\x00" * 800)  # half the promised body
            await writer.drain()
            writer.close()
            view = await client.wait(session_id, timeout=10)
            queued = server.service.admission.queued_total
            await server.stop(drain=True)
            return view, queued

        view, queued = asyncio.run(scenario())
        assert view["state"] == "expired"
        assert view["reason"] == "orphaned-ingest"
        assert queued == 0


# ---------------------------------------------------------------------- #
# Drain and re-adoption (the SIGTERM contract)
# ---------------------------------------------------------------------- #


class TestDrainReAdopt:
    def test_drain_suspends_and_readopt_finishes_bit_identical(
        self, tmp_path
    ):
        spec = run_spec(seed=21, segment_records=2000, heartbeat_every=500)
        trace = {"kind": "synthetic", "records": 200_000, "seed": 21}
        words = synthetic_words(request(trace=dict(trace)).trace)

        async def first_server():
            service = EmulationService(tmp_path / "svc", ServiceConfig())
            await service.start()
            session = service.submit(SessionRequest(
                run_spec=spec, trace=dict(trace), label="longhaul",
            ))
            while session.state == SessionState.QUEUED:
                await asyncio.sleep(0.01)
            # Wait for the first heartbeat, not a fixed wall-clock sleep:
            # the replay engines keep getting faster, and a fixed sleep
            # would let a quick run complete before the drain lands.
            while (
                session.state == SessionState.RUNNING and session.cycle == 0
            ):
                await asyncio.sleep(0.005)
            await service.stop(drain=True)
            return session

        async def second_server():
            service = EmulationService(tmp_path / "svc", ServiceConfig())
            await service.start()
            session = service.get_session("s000000")
            assert session.adopted
            await wait_done(session)
            metrics = dict(service.metrics)
            await service.stop()
            return session, metrics

        drained = asyncio.run(first_server())
        assert drained.state == SessionState.SUSPENDED
        assert drained.cycle > 0  # it really was mid-run

        resumed, metrics = asyncio.run(second_server())
        assert metrics["adopted"] == 1
        assert resumed.state == SessionState.COMPLETED
        assert resumed.result.digest == reference_digest(
            spec, words, tmp_path / "ref"
        )

        rendered = render_service_manifest(tmp_path / "svc")
        assert "s000000" in rendered
        assert "completed" in rendered

    def test_orphaned_stream_session_expires_on_adopt(self, tmp_path):
        async def first_server():
            service = EmulationService(tmp_path / "svc", ServiceConfig())
            await service.start()
            session = service.submit(request(trace={"kind": "stream"}))
            # Feed a partial stream, then die without the end marker.
            await service.ingest_chunk(
                session.id, np.arange(64, dtype=np.uint64)
            )
            await service.stop(drain=True)
            return session.id

        async def second_server():
            service = EmulationService(tmp_path / "svc", ServiceConfig())
            await service.start()
            session = service.get_session(session_id)
            state, reason = session.state, session.reason
            await service.stop()
            return state, reason

        session_id = asyncio.run(first_server())
        # The torn partial stage must not survive as a complete trace.
        run_dir = tmp_path / "svc" / "runs" / session_id
        assert not (run_dir / "ingest.words").exists()

        state, reason = asyncio.run(second_server())
        assert state == SessionState.EXPIRED
        assert reason == "orphaned-ingest"
