"""Tests for the TPC-C and TPC-H workload generators."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.base import LINE
from repro.workloads.tpcc import TpccWorkload, paper_tpcc
from repro.workloads.tpch import TpchWorkload, paper_tpch


def collect(workload, n=20_000):
    cpu_list, addr_list, write_list = [], [], []
    for cpus, addrs, writes in workload.chunks(n):
        cpu_list.append(cpus)
        addr_list.append(addrs)
        write_list.append(writes)
    return (
        np.concatenate(cpu_list),
        np.concatenate(addr_list),
        np.concatenate(write_list),
    )


class TestTpcc:
    def test_write_fraction_near_target(self):
        workload = TpccWorkload(db_bytes=1 << 22, write_fraction=0.25, seed=1)
        _c, _a, writes = collect(workload)
        assert writes.mean() == pytest.approx(0.25, abs=0.02)

    def test_addresses_within_footprint(self):
        workload = TpccWorkload(db_bytes=1 << 22, n_cpus=4, private_bytes=1 << 14)
        _c, addrs, _w = collect(workload)
        limit = 4 * (1 << 14) + (1 << 22)
        assert addrs.max() < limit
        assert addrs.min() >= 0

    def test_private_region_per_cpu(self):
        workload = TpccWorkload(
            db_bytes=1 << 22, n_cpus=2, private_bytes=1 << 14, p_private=1.0
        )
        cpus, addrs, _w = collect(workload, 5000)
        for cpu in (0, 1):
            cpu_addrs = addrs[cpus == cpu]
            assert (cpu_addrs >= cpu * (1 << 14)).all()
            assert (cpu_addrs < (cpu + 1) * (1 << 14)).all()

    def test_common_region_bounds_common_traffic(self):
        region = 1 << 16
        workload = TpccWorkload(
            db_bytes=1 << 22,
            n_cpus=2,
            p_private=0.0,
            p_common=1.0,
            common_region_bytes=region,
            private_bytes=LINE * 8,
        )
        _c, addrs, _w = collect(workload, 5000)
        db_base = 2 * LINE * 8
        assert (addrs < db_base + region).all()

    def test_affine_regions_are_disjoint_per_cpu(self):
        workload = TpccWorkload(
            db_bytes=1 << 24,
            n_cpus=2,
            p_private=0.0,
            p_common=0.0,
            affine_region_bytes=1 << 16,
            private_bytes=LINE * 8,
        )
        cpus, addrs, _w = collect(workload, 5000)
        addrs0 = set(addrs[cpus == 0].tolist())
        addrs1 = set(addrs[cpus == 1].tolist())
        assert not (addrs0 & addrs1)

    def test_common_write_fraction_override(self):
        workload = TpccWorkload(
            db_bytes=1 << 22,
            p_private=0.0,
            p_common=1.0,
            common_region_bytes=1 << 16,
            write_fraction=0.5,
            common_write_fraction=0.0,
        )
        _c, _a, writes = collect(workload, 5000)
        assert writes.mean() == 0.0

    def test_tiny_database_rejected(self):
        with pytest.raises(ConfigurationError):
            TpccWorkload(db_bytes=100)

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            TpccWorkload(db_bytes=1 << 22, p_private=1.5)

    def test_paper_preset_scales(self):
        workload = paper_tpcc(scale=1024)
        assert workload.db_bytes == (150 * 1024 * 1024 * 1024) // 1024


class TestTpch:
    def test_scan_traffic_sequential_within_segment(self):
        workload = TpchWorkload(
            fact_bytes=1 << 22, dim_bytes=1 << 18, n_cpus=1, p_scan=1.0, seed=2
        )
        _c, addrs, _w = collect(workload, 2000)
        deltas = np.diff(addrs)
        # Mostly +LINE steps (sequential), with occasional segment jumps.
        assert (deltas == LINE).mean() > 0.9

    def test_rescans_revisit_lines(self):
        workload = TpchWorkload(
            fact_bytes=1 << 22,
            dim_bytes=1 << 18,
            n_cpus=1,
            p_scan=1.0,
            segment_bytes=64 * LINE,
            rescans=4,
            seed=3,
        )
        _c, addrs, _w = collect(workload, 4000)
        unique_fraction = np.unique(addrs).size / addrs.size
        assert unique_fraction < 0.6  # re-scanning reuses lines

    def test_write_fraction_low(self):
        workload = TpchWorkload(fact_bytes=1 << 22, dim_bytes=1 << 18, seed=1)
        _c, _a, writes = collect(workload)
        assert writes.mean() < 0.1

    def test_dim_probes_in_dim_region(self):
        workload = TpchWorkload(
            fact_bytes=1 << 20, dim_bytes=1 << 18, n_cpus=1, p_scan=0.0
        )
        _c, addrs, _w = collect(workload, 2000)
        assert (addrs >= 1 << 20).all()
        assert (addrs < (1 << 20) + (1 << 18)).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TpchWorkload(fact_bytes=64, dim_bytes=1 << 18)
        with pytest.raises(ConfigurationError):
            TpchWorkload(fact_bytes=1 << 20, dim_bytes=1 << 18, p_scan=2.0)
        with pytest.raises(ConfigurationError):
            TpchWorkload(fact_bytes=1 << 20, dim_bytes=1 << 18, rescans=0)

    def test_paper_preset(self):
        workload = paper_tpch(scale=1024)
        total = workload.fact_bytes + workload.dim_bytes
        assert total == pytest.approx((100 * 1024**3) // 1024, rel=0.05)
