"""Tests for repro.memories.replacement: the four replacement policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.memories.replacement import (
    FifoPolicy,
    LruPolicy,
    PlruPolicy,
    RandomPolicy,
    make_policy,
)


def run_trace(policy, assoc, tags_seen):
    """Drive a tag stream through one set; returns final tags list."""
    tags, states = [], []
    meta = policy.make_meta()
    for tag in tags_seen:
        if tag in tags:
            way = tags.index(tag)
            _, meta = policy.touch(tags, states, way, meta)
        else:
            _, meta = policy.insert(tags, states, tag, 1, assoc, meta)
    return tags


class TestLru:
    def test_evicts_least_recent(self):
        # Touch A again so B is LRU when D arrives.
        final = run_trace(LruPolicy(), 2, ["A", "B", "A", "D"])
        assert "A" in final and "D" in final and "B" not in final

    def test_touch_moves_to_front(self):
        tags, states = ["A", "B", "C"], [1, 1, 1]
        policy = LruPolicy()
        policy.touch(tags, states, 2, 0)
        assert tags == ["C", "A", "B"]

    def test_insert_returns_victim(self):
        policy = LruPolicy()
        tags, states = ["A", "B"], [1, 2]
        victim, _ = policy.insert(tags, states, "C", 3, 2, 0)
        assert victim == ("B", 2)


class TestFifo:
    def test_hit_does_not_refresh(self):
        # A is oldest even though it was touched; FIFO evicts it.
        final = run_trace(FifoPolicy(), 2, ["A", "B", "A", "D"])
        assert "A" not in final and "B" in final and "D" in final

    def test_fills_before_evicting(self):
        final = run_trace(FifoPolicy(), 3, ["A", "B", "C"])
        assert sorted(final) == ["A", "B", "C"]


class TestRandom:
    def test_reproducible_with_seed(self):
        stream = [str(i) for i in np.random.default_rng(0).integers(0, 20, 200)]
        a = run_trace(RandomPolicy(np.random.default_rng(7)), 4, stream)
        b = run_trace(RandomPolicy(np.random.default_rng(7)), 4, stream)
        assert a == b

    def test_capacity_respected(self):
        final = run_trace(RandomPolicy(np.random.default_rng(0)), 4, [str(i) for i in range(50)])
        assert len(final) == 4

    def test_replaces_in_place(self):
        policy = RandomPolicy(np.random.default_rng(0))
        tags, states = ["A", "B"], [1, 2]
        victim, _ = policy.insert(tags, states, "C", 3, 2, 0)
        assert victim is not None
        assert len(tags) == 2 and "C" in tags


class TestPlru:
    def test_requires_power_of_two_assoc(self):
        with pytest.raises(ConfigurationError):
            PlruPolicy(3)

    def test_victim_way_in_range(self):
        policy = PlruPolicy(8)
        for meta in range(256):
            assert 0 <= policy.victim_way(meta) < 8

    def test_most_recent_way_not_immediate_victim(self):
        policy = PlruPolicy(4)
        tags, states = ["A", "B", "C", "D"], [1] * 4
        meta = 0
        for way in range(4):
            _, meta = policy.touch(tags, states, way, meta)
        # After touching ways 0..3 in order, way 3 is MRU.
        assert policy.victim_way(meta) != 3

    def test_approximates_lru_on_sequential_fill(self):
        policy = PlruPolicy(4)
        final = run_trace(policy, 4, ["A", "B", "C", "D", "A", "E"])
        assert "A" in final  # A was just touched
        assert "E" in final

    @given(ways=st.lists(st.integers(0, 7), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_tree_never_picks_just_touched_way(self, ways):
        policy = PlruPolicy(8)
        meta = 0
        tags = [str(i) for i in range(8)]
        states = [1] * 8
        for way in ways:
            _, meta = policy.touch(tags, states, way, meta)
        assert policy.victim_way(meta) != ways[-1]


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LruPolicy), ("fifo", FifoPolicy), ("random", RandomPolicy), ("plru", PlruPolicy)],
    )
    def test_factory(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("clock", 4)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 4), LruPolicy)
