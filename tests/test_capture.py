"""Tests for the workload -> host -> trace capture pipeline."""

import pytest

from repro.bus.transaction import BusCommand
from repro.experiments.pipeline import capture_records, l3_size_sweep
from repro.host.smp import HostConfig
from repro.memories.config import CacheNodeConfig
from repro.workloads.capture import capture_bus_trace, run_live
from repro.workloads.tpcc import TpccWorkload

HOST = HostConfig(n_cpus=4, l2_size=8 * 1024, l2_assoc=2)


def workload(seed=0):
    return TpccWorkload(db_bytes=1 << 22, n_cpus=4, private_bytes=4096, seed=seed)


class TestCaptureBusTrace:
    def test_trace_contains_memory_commands_only(self):
        trace = capture_bus_trace(workload(), 5_000, HOST)
        assert len(trace) > 0
        for txn in trace:
            assert txn.command.is_memory

    def test_trace_shorter_than_references(self):
        trace = capture_bus_trace(workload(), 5_000, HOST)
        # Hits never reach the bus, castouts add some records back.
        assert len(trace) < 5_000 * 1.5

    def test_deterministic(self):
        a = capture_bus_trace(workload(seed=3), 3_000, HOST)
        b = capture_bus_trace(workload(seed=3), 3_000, HOST)
        assert (a.words == b.words).all()


class TestRunLive:
    def test_boards_observe_while_host_runs(self):
        from repro.memories.board import board_for_machine
        from repro.target.configs import single_node_machine

        board = board_for_machine(
            single_node_machine(
                CacheNodeConfig(size=16 * 1024, assoc=4, line_size=128), n_cpus=4
            )
        )
        host = run_live(workload(), 4_000, [board], HOST)
        assert host.total_references() == 4_000
        assert board.firmware.nodes[0].references() > 0


class TestCaptureRecords:
    def test_reaches_requested_record_count(self):
        trace = capture_records(workload(), 3_000, HOST)
        assert len(trace) == 3_000

    def test_stats_out_reports_conversion(self):
        stats = {}
        trace = capture_records(workload(), 3_000, HOST, stats_out=stats)
        assert stats["references"] >= len(trace) * 0.5
        assert stats["records_per_reference"] == pytest.approx(
            len(trace) / stats["references"]
        )

    def test_max_references_bound(self):
        trace = capture_records(
            workload(), 10_000_000, HOST, max_references=2_000
        )
        assert len(trace) <= 2_000 * 2


class TestL3SizeSweep:
    def test_larger_caches_never_much_worse(self):
        trace = capture_records(workload(), 10_000, HOST)
        configs = [
            CacheNodeConfig(size=size, assoc=4, line_size=128)
            for size in (8 * 1024, 64 * 1024, 512 * 1024)
        ]
        ratios = l3_size_sweep(trace, configs, n_cpus=4)
        assert len(ratios) == 3
        assert ratios[2] <= ratios[0] + 0.01

    def test_batches_beyond_four_configs(self):
        trace = capture_records(workload(), 3_000, HOST)
        configs = [
            CacheNodeConfig(size=1024 * (2 ** i), assoc=4, line_size=128)
            for i in range(5)
        ]
        ratios = l3_size_sweep(trace, configs, n_cpus=4)
        assert len(ratios) == 5
        assert all(0.0 <= r <= 1.0 for r in ratios)
