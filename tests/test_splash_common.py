"""Tests for the SPLASH2 shared building blocks (reuse patterns)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.splash.common import (
    KernelGeometry,
    sequential_lines,
    stencil_lines,
    strided_lines,
    windowed_sequential_lines,
)


class TestKernelGeometry:
    def test_layout(self):
        geometry = KernelGeometry(n_cpus=4, partition_bytes=1024, shared_bytes=2048)
        assert geometry.partition_base(0) == 0
        assert geometry.partition_base(3) == 3 * 1024
        assert geometry.shared_base == 4 * 1024
        assert geometry.total_bytes == 4 * 1024 + 2048
        assert geometry.partition_lines == 8
        assert geometry.shared_lines == 16

    def test_tiny_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelGeometry(n_cpus=1, partition_bytes=64)

    def test_no_shared_region(self):
        geometry = KernelGeometry(n_cpus=2, partition_bytes=1024)
        assert geometry.shared_bytes == 0
        assert geometry.shared_lines == 1  # floor for samplers


class TestSequentialLines:
    def test_wraps_cyclically(self):
        state = {}
        lines = sequential_lines(state, "k", 10, region_lines=4)
        assert lines.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
        assert state["k"] == 2

    def test_state_persists_across_calls(self):
        state = {}
        sequential_lines(state, "k", 3, 10)
        again = sequential_lines(state, "k", 3, 10)
        assert again.tolist() == [3, 4, 5]

    def test_independent_keys(self):
        state = {}
        sequential_lines(state, "a", 5, 10)
        b = sequential_lines(state, "b", 2, 10)
        assert b.tolist() == [0, 1]


class TestWindowedSequential:
    def test_advance_rate(self):
        state = {}
        rng = np.random.default_rng(0)
        lines = windowed_sequential_lines(state, "k", 40, 1000, repeat=4, window=1, rng=rng)
        # With window=1 the pattern is exactly 4 touches per line.
        assert lines.tolist() == [i // 4 for i in range(40)]

    def test_window_bounds(self):
        state = {}
        rng = np.random.default_rng(0)
        lines = windowed_sequential_lines(state, "k", 500, 10_000, repeat=2, window=8, rng=rng)
        base = np.arange(500) // 2
        deltas = (base - lines) % 10_000
        assert deltas.max() < 8

    def test_reuse_reduces_unique_lines(self):
        state = {}
        rng = np.random.default_rng(1)
        lines = windowed_sequential_lines(state, "k", 1000, 100_000, repeat=8, window=16, rng=rng)
        assert np.unique(lines).size < 1000 // 4


class TestStencilLines:
    def test_three_rows_per_column(self):
        state = {}
        lines = stencil_lines(state, "k", 9, region_lines=64, row_lines=8)
        # First three refs: column 0 of rows 0, 1, 2.
        assert lines.tolist()[:3] == [0, 8, 16]
        # Next three: column 1 of the same rows.
        assert lines.tolist()[3:6] == [1, 9, 17]

    def test_lines_reused_across_row_sweeps(self):
        state = {}
        lines = stencil_lines(state, "k", 8 * 3 * 4, region_lines=64, row_lines=8)
        values, counts = np.unique(lines, return_counts=True)
        assert counts.max() >= 3  # stencil overlap revisits lines

    def test_bounds(self):
        state = {}
        lines = stencil_lines(state, "k", 1000, region_lines=64, row_lines=8)
        assert lines.min() >= 0 and lines.max() < 64

    def test_degenerate_row_size_clamped(self):
        state = {}
        lines = stencil_lines(state, "k", 10, region_lines=4, row_lines=100)
        assert lines.max() < 4


class TestStridedLines:
    def test_stride_pattern(self):
        state = {}
        lines = strided_lines(state, "k", 5, region_lines=16, stride_lines=3)
        assert lines.tolist() == [0, 3, 6, 9, 12]

    def test_wraps_modulo_region(self):
        state = {}
        lines = strided_lines(state, "k", 8, region_lines=8, stride_lines=5)
        assert lines.max() < 8
