"""Shape tests for the case-study experiments (Figures 8-12, Tables 5-6).

These run the experiment harness at reduced scale and assert the
*qualitative* findings the paper reports — the reproduction's contract
(DESIGN.md section 5.4).  They are the slowest tests in the suite.
"""

import pytest

from repro.experiments.params import ExperimentScale
from repro.experiments.figure8_tracelen import Figure8Settings, run as run_figure8
from repro.experiments.figure9_sharing import Figure9Settings, run as run_figure9
from repro.experiments.figure10_profile import Figure10Settings, run as run_figure10
from repro.experiments.figure11_l3sweep import Figure11Settings, run as run_figure11
from repro.experiments.figure12_breakdown import Figure12Settings, run as run_figure12
from repro.experiments.table5_splash_char import Table5Settings, run as run_table5
from repro.experiments.table6_missrates import Table6Settings, run as run_table6


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        settings = Figure8Settings(
            scale=ExperimentScale(scale=8192),
            l3_sizes=("16MB", "64MB", "256MB", "1GB"),
            tpcc_long_records=120_000,
            tpcc_short_records=2_400,
            tpch_long_records=120_000,
            tpch_mid_records=70_000,
            tpch_short_records=4_000,
        )
        return run_figure8(settings)

    def test_curves_decrease_with_cache_size(self, result):
        for curve in result.data["tpcc"] + result.data["tpch"]:
            assert curve.is_monotone_decreasing(tolerance=0.02), curve.name

    def test_short_tpcc_trace_overestimates_at_large_caches(self, result):
        long_curve, short_curve = result.data["tpcc"]
        assert short_curve.ys()[-1] > long_curve.ys()[-1]

    def test_short_tpcc_trace_flattens_more(self, result):
        from repro.analysis.stats import relative_flattening

        long_curve, short_curve = result.data["tpcc"]
        knee = len(long_curve.points) - 2
        assert relative_flattening(short_curve, knee) < relative_flattening(
            long_curve, knee
        )

    def test_all_sizes_swept(self, result):
        for curve in result.data["tpcc"]:
            assert len(curve.points) == 4


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure9(Figure9Settings.quick())

    def test_crossover_reproduced(self, result):
        assert result.data["crossover"]

    def test_long_trace_monotone_increasing(self, result):
        short_curve, long_curve = result.data["curves"]
        assert long_curve.is_monotone_increasing(tolerance=0.02)

    def test_short_trace_net_decrease(self, result):
        short_curve, _ = result.data["curves"]
        assert short_curve.ys()[-1] < short_curve.ys()[0]


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure10(Figure10Settings(total_records=120_000, spike_periods=6))

    def test_spikes_in_both_cache_sizes(self, result):
        for profile in result.data["profiles"]:
            assert len(profile.spike_indices(rel_delta=0.25, skip=8)) >= 3

    def test_period_matches_injection(self, result):
        expected = result.data["expected_period_intervals"]
        for profile in result.data["profiles"]:
            period = profile.spike_period(rel_delta=0.25, skip=8)
            assert period is not None
            assert period == pytest.approx(expected, rel=0.35)

    def test_both_configs_profiled(self, result):
        configs = result.data["configs"]
        assert configs[0].assoc == 1 and configs[1].assoc == 8


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        settings = Figure11Settings(
            scale=ExperimentScale(scale=4096),
            l3_sizes=("32MB", "128MB", "512MB", "1GB"),
            records_per_kernel=60_000,
        )
        return run_figure11(settings)

    def test_all_kernels_monotone_decreasing(self, result):
        assert all(result.data["monotone"].values()), result.data["monotone"]

    def test_five_kernels(self, result):
        assert len(result.data["curves"]) == 5

    def test_l3_meaningfully_reduces_misses(self, result):
        """Figure 11's message: large L3s keep absorbing misses."""
        drops = [curve.total_drop() for curve in result.data["curves"]]
        assert max(drops) > 0.15

    def test_no_l3_size_degrades_performance(self, result):
        """Section 5.3: 'for no L3 cache size do we see performance
        degradation', improvements up to ~25%."""
        all_values = [
            value
            for values in result.data["improvements"].values()
            for value in values
        ]
        assert min(all_values) >= 0.0
        assert max(all_values) < 35.0


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        settings = Figure12Settings(
            scale=ExperimentScale(scale=4096), records_per_kernel=60_000
        )
        return run_figure12(settings)

    def test_fmm_has_most_intervention_traffic(self, result):
        def share(kernel):
            values = result.data[kernel].values()
            return sum(v["mod_int"] + v["shr_int"] for v in values) / len(values)

        assert share("FMM") > share("FFT")
        assert share("FMM") > share("Ocean")
        assert share("FMM") > 0.1

    def test_fractions_sum_to_one(self, result):
        for kernel, configs in result.data.items():
            for name, fractions in configs.items():
                assert sum(fractions.values()) == pytest.approx(1.0)

    def test_both_node_configs_present(self, result):
        assert set(result.data["FFT"]) == {"2x4", "4x2"}


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table5(Table5Settings(n_refs=60_000))

    def test_footprints_match_paper(self, result):
        for name, entry in result.data.items():
            assert entry["footprint_gb"] == pytest.approx(
                entry["paper_footprint_gb"], rel=0.25
            ), name

    def test_degraded_l2_never_faster(self, result):
        for name, entry in result.data.items():
            assert entry["predicted_runtime_1mb"] >= entry["paper_runtime_8mb"], name

    def test_miss_ratio_rises_with_degraded_l2(self, result):
        for name, entry in result.data.items():
            assert entry["miss_ratio_1mb_dm"] >= entry["miss_ratio_8mb"] - 0.01, name


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table6(Table6Settings(small_scale=16, large_scale=2048, n_refs=60_000))

    def test_all_rates_positive(self, result):
        for name, entry in result.data.items():
            assert entry["measured_small"] > 0
            assert entry["measured_large"] > 0

    def test_scaled_sizes_vastly_different(self, result):
        """The paper's headline: small-size rates mispredict realistic ones."""
        differing = sum(
            1
            for entry in result.data.values()
            if not (
                2 / 3 < entry["measured_large"] / max(entry["measured_small"], 1e-9) < 1.5
            )
        )
        assert differing >= 2

    def test_rising_kernels_rise(self, result):
        """FMM, Water and Barnes rise at realistic sizes, as in the paper."""
        for name in ("FMM", "Water", "Barnes"):
            entry = result.data[name]
            assert entry["measured_large"] > entry["measured_small"], name
