"""Tests for the Section 5.3 latency-weighted performance projection."""

import pytest

from repro.analysis.performance_model import (
    DEFAULT_LATENCIES,
    average_miss_latency,
    project_performance,
)
from repro.common.errors import ConfigurationError


class TestAverageLatency:
    def test_pure_memory(self):
        latency = average_miss_latency({"memory": 1.0})
        assert latency == DEFAULT_LATENCIES["memory"]

    def test_weighted_mixture(self):
        latency = average_miss_latency({"memory": 0.5, "l3": 0.5})
        expected = (DEFAULT_LATENCIES["memory"] + DEFAULT_LATENCIES["l3"]) / 2
        assert latency == pytest.approx(expected)

    def test_unnormalised_breakdown_normalised(self):
        a = average_miss_latency({"memory": 1.0, "l3": 1.0})
        b = average_miss_latency({"memory": 0.5, "l3": 0.5})
        assert a == pytest.approx(b)

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            average_miss_latency({"warp_drive": 1.0})

    def test_empty_breakdown_rejected(self):
        with pytest.raises(ConfigurationError):
            average_miss_latency({"memory": 0.0})


class TestProjection:
    def test_l3_hits_always_help(self):
        """The paper: 'for no L3 cache size do we see performance
        degradation' — any positive L3-hit fraction must improve CPI."""
        for l3_fraction in (0.05, 0.2, 0.5, 0.9):
            breakdown = {
                "l3": l3_fraction,
                "memory": 1.0 - l3_fraction,
                "mod_int": 0.0,
                "shr_int": 0.0,
            }
            projection = project_performance(breakdown, l2_miss_ratio=0.3)
            assert projection.speedup > 1.0
            assert projection.improvement_percent > 0.0

    def test_no_l3_hits_no_change(self):
        breakdown = {"l3": 0.0, "memory": 0.8, "mod_int": 0.1, "shr_int": 0.1}
        projection = project_performance(breakdown, l2_miss_ratio=0.3)
        assert projection.speedup == pytest.approx(1.0)

    def test_improvement_grows_with_l3_fraction(self):
        def improvement(l3_fraction):
            breakdown = {"l3": l3_fraction, "memory": 1 - l3_fraction}
            return project_performance(breakdown, 0.3).improvement_percent

        assert improvement(0.5) > improvement(0.2) > improvement(0.05)

    def test_improvement_grows_with_miss_ratio(self):
        breakdown = {"l3": 0.4, "memory": 0.6}
        low = project_performance(breakdown, 0.05).improvement_percent
        high = project_performance(breakdown, 0.5).improvement_percent
        assert high > low

    def test_paper_band(self):
        """Typical Figure 11 operating points land in the paper's 2-25%."""
        breakdown = {"l3": 0.4, "memory": 0.55, "mod_int": 0.02, "shr_int": 0.03}
        projection = project_performance(breakdown, l2_miss_ratio=0.5)
        assert 2.0 < projection.improvement_percent < 25.0

    def test_interventions_unaffected_by_baseline(self):
        breakdown = {"l3": 0.3, "memory": 0.3, "mod_int": 0.2, "shr_int": 0.2}
        projection = project_performance(breakdown, 0.3)
        # Baseline redirects only the L3 fraction to memory.
        expected_baseline = average_miss_latency(
            {"memory": 0.6, "mod_int": 0.2, "shr_int": 0.2}
        )
        assert projection.baseline_bus_cycles == pytest.approx(expected_baseline)

    def test_invalid_miss_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            project_performance({"memory": 1.0}, l2_miss_ratio=1.5)
