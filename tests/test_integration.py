"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.bus.trace import TraceReader
from repro.experiments.pipeline import capture_records, replay_machine
from repro.host.smp import HostConfig, HostSMP
from repro.memories.board import MemoriesBoard, board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.firmware.tracer import TraceCollectorFirmware
from repro.target.configs import multi_config_machine, single_node_machine
from repro.workloads.tpcc import TpccWorkload

HOST = HostConfig(n_cpus=4, l2_size=8 * 1024, l2_assoc=2)
CFG = CacheNodeConfig(size=32 * 1024, assoc=4, line_size=128)


def workload(seed=21):
    return TpccWorkload(db_bytes=1 << 21, n_cpus=4, private_bytes=4096, seed=seed)


class TestLiveVsOffline:
    def test_live_emulation_equals_trace_replay(self):
        """The paper's two usage modes must agree: watching the bus live
        and replaying a trace collected from the same run."""
        # Live: emulation board plugged in during the run.
        host = HostSMP(HOST)
        live_board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        tracer_board = MemoriesBoard(TraceCollectorFirmware(), name="tracer")
        host.plug_in(live_board)
        host.plug_in(tracer_board)
        host.run(workload().chunks(15_000), max_references=15_000)

        # Offline: replay the captured trace into an identical board.
        offline_board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        offline_board.replay(tracer_board.firmware.to_trace())

        live_stats = {
            k: v for k, v in live_board.statistics().items() if k.startswith("node0")
        }
        offline_stats = {
            k: v
            for k, v in offline_board.statistics().items()
            if k.startswith("node0")
        }
        assert live_stats == offline_stats

    def test_chunked_replay_equals_single_replay(self, tmp_path):
        trace = capture_records(workload(), 8_000, HOST)
        path = tmp_path / "trace.mies"
        from repro.bus.trace import TraceWriter

        writer = TraceWriter()
        writer.extend_words(trace.words)
        writer.save(path)

        whole = board_for_machine(single_node_machine(CFG, n_cpus=4))
        whole.replay(trace)
        chunked = board_for_machine(single_node_machine(CFG, n_cpus=4))
        for chunk in TraceReader(path).iter_chunks(chunk_records=1000):
            chunked.replay_words(chunk)
        assert whole.statistics() == chunked.statistics()


class TestMultiBoard:
    def test_two_boards_one_bus(self):
        """Multiple boards observing the same bus stay independent."""
        host = HostSMP(HOST)
        board_a = board_for_machine(single_node_machine(CFG, n_cpus=4))
        small = CacheNodeConfig(size=4 * 1024, assoc=4, line_size=128)
        board_b = board_for_machine(single_node_machine(small, n_cpus=4))
        host.plug_in(board_a)
        host.plug_in(board_b)
        host.run(workload().chunks(10_000), max_references=10_000)
        node_a = board_a.firmware.nodes[0]
        node_b = board_b.firmware.nodes[0]
        assert node_a.references() == node_b.references()
        assert node_a.miss_ratio() < node_b.miss_ratio()  # 8x bigger cache

    def test_multi_config_matches_separate_boards(self):
        """Figure 4's parallel mode equals running configs one at a time."""
        trace = capture_records(workload(), 10_000, HOST)
        configs = [
            CacheNodeConfig(size=4 * 1024 * (4 ** i), assoc=4, line_size=128)
            for i in range(3)
        ]
        parallel = board_for_machine(multi_config_machine(configs, n_cpus=4))
        parallel.replay(trace)
        parallel_ratios = [n.miss_ratio() for n in parallel.firmware.nodes]
        separate_ratios = []
        for config in configs:
            board = board_for_machine(single_node_machine(config, n_cpus=4))
            board.replay(trace)
            separate_ratios.append(board.firmware.nodes[0].miss_ratio())
        assert parallel_ratios == pytest.approx(separate_ratios)


class TestRunAll:
    def test_run_all_quick_single_artifact(self, capsys):
        from repro.experiments.run_all import main

        assert main(["--quick", "--only", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "total:" in output


class TestMonotonicitySanity:
    def test_bigger_cache_never_worse_on_same_trace(self):
        trace = capture_records(workload(seed=33), 12_000, HOST)
        ratios = []
        for size_kb in (4, 16, 64, 256):
            config = CacheNodeConfig(size=size_kb * 1024, assoc=4, line_size=128)
            board = replay_machine(trace, single_node_machine(config, n_cpus=4))
            ratios.append(board.firmware.nodes[0].miss_ratio())
        for smaller, bigger in zip(ratios, ratios[1:]):
            assert bigger <= smaller + 0.01
