"""Tests for repro.target: CPU-ID partitioning into emulated nodes."""

import pytest

from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.target.configs import (
    multi_config_machine,
    single_node_machine,
    split_smp_machine,
)
from repro.target.mapping import TargetMachine, TargetNodeSpec

CFG = CacheNodeConfig.create("2MB", procs_per_node=4)


class TestNodeSpec:
    def test_cpu_count_must_match_config(self):
        with pytest.raises(ConfigurationError, match="declares"):
            TargetNodeSpec(config=CFG, cpus=(0, 1))

    def test_duplicate_cpus_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            TargetNodeSpec(config=CFG, cpus=(0, 1, 2, 2))

    def test_empty_cpus_rejected(self):
        with pytest.raises(ConfigurationError):
            TargetNodeSpec(config=CFG, cpus=())

    def test_negative_cpu_rejected(self):
        with pytest.raises(ConfigurationError):
            TargetNodeSpec(config=CFG, cpus=(-1, 1, 2, 3))


class TestTargetMachine:
    def test_overlap_within_group_rejected(self):
        spec = TargetNodeSpec(config=CFG, cpus=(0, 1, 2, 3), group=0)
        with pytest.raises(ConfigurationError, match="same coherence group"):
            TargetMachine(nodes=[spec, spec])

    def test_overlap_across_groups_allowed(self):
        a = TargetNodeSpec(config=CFG, cpus=(0, 1, 2, 3), group=0)
        b = TargetNodeSpec(config=CFG, cpus=(0, 1, 2, 3), group=1)
        machine = TargetMachine(nodes=[a, b])
        assert machine.groups() == {0: [0], 1: [1]}

    def test_more_than_four_nodes_rejected(self):
        one = CacheNodeConfig.create("2MB", procs_per_node=1)
        nodes = [
            TargetNodeSpec(config=one, cpus=(i,), group=0) for i in range(5)
        ]
        with pytest.raises(ConfigurationError, match="node controllers"):
            TargetMachine(nodes=nodes)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TargetMachine(nodes=[])

    def test_node_for_cpu(self):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=4)
        assert machine.node_for_cpu(0, group=0) == 0
        assert machine.node_for_cpu(5, group=0) == 1
        assert machine.node_for_cpu(9, group=0) == -1

    def test_all_cpus(self):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=4)
        assert machine.all_cpus() == tuple(range(8))

    def test_describe(self):
        text = split_smp_machine(CFG, n_cpus=8, procs_per_node=4).describe()
        assert "node A" in text and "node B" in text


class TestProgrammingFiles:
    def test_roundtrip(self, tmp_path):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=4)
        path = tmp_path / "machine.json"
        machine.save(path)
        restored = TargetMachine.load(path)
        assert restored.name == machine.name
        assert len(restored.nodes) == 2
        for original, loaded in zip(machine.nodes, restored.nodes):
            assert loaded.cpus == original.cpus
            assert loaded.group == original.group
            assert loaded.config == original.config

    def test_load_revalidates(self, tmp_path):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=4)
        data = machine.to_dict()
        data["nodes"][1]["cpus"] = data["nodes"][0]["cpus"]  # overlap
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            TargetMachine.load(path)

    def test_malformed_file_rejected(self, tmp_path):
        import json

        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"nodes": [{"cpus": [0]}]}))
        with pytest.raises(ConfigurationError, match="malformed"):
            TargetMachine.load(path)


class TestPresets:
    def test_single_node(self):
        machine = single_node_machine(CacheNodeConfig.create("64MB"), n_cpus=8)
        assert len(machine.nodes) == 1
        assert machine.nodes[0].cpus == tuple(range(8))

    def test_split_geometry(self):
        machine = split_smp_machine(CacheNodeConfig.create("64MB"), 8, 2)
        assert len(machine.nodes) == 4
        assert machine.nodes[3].cpus == (6, 7)
        assert all(node.group == 0 for node in machine.nodes)

    def test_split_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            split_smp_machine(CacheNodeConfig.create("64MB"), 8, 3)

    def test_split_too_many_nodes_needs_truncate(self):
        config = CacheNodeConfig.create("64MB")
        with pytest.raises(ConfigurationError, match="truncate"):
            split_smp_machine(config, 8, 1)
        machine = split_smp_machine(config, 8, 1, truncate=True)
        assert len(machine.nodes) == 4
        assert machine.all_cpus() == (0, 1, 2, 3)

    def test_multi_config_groups(self):
        configs = [CacheNodeConfig.create("2MB"), CacheNodeConfig.create("4MB")]
        machine = multi_config_machine(configs, n_cpus=8)
        assert [node.group for node in machine.nodes] == [0, 1]
        assert all(node.cpus == tuple(range(8)) for node in machine.nodes)

    def test_multi_config_limits(self):
        config = CacheNodeConfig.create("2MB")
        with pytest.raises(ConfigurationError):
            multi_config_machine([config] * 5, n_cpus=8)
        with pytest.raises(ConfigurationError):
            multi_config_machine([], n_cpus=8)
