"""Tests for repro.host.cache: the per-CPU snooping MESI L2."""

import pytest

from repro.bus.bus import SystemBus
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.host.cache import MESIState, SnoopingCache


def make_cache(cpu_id=0, bus=None, size=4096, assoc=2, line_size=128):
    bus = bus if bus is not None else SystemBus()
    cache = SnoopingCache(cpu_id=cpu_id, bus=bus, size=size, assoc=assoc, line_size=line_size)
    bus.attach_snooper(cache)
    return cache


class TestConstruction:
    def test_rejects_zero_assoc(self):
        with pytest.raises(ConfigurationError):
            make_cache(assoc=0)

    def test_rejects_non_power_line(self):
        with pytest.raises(ConfigurationError):
            make_cache(line_size=100)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigurationError):
            make_cache(size=1000, assoc=2, line_size=128)

    def test_rejects_non_power_sets(self):
        with pytest.raises(ConfigurationError):
            make_cache(size=3 * 128 * 2, assoc=2, line_size=128)


class TestSingleCache:
    def test_cold_read_misses_then_hits(self):
        cache = make_cache()
        assert cache.access(0x1000, is_write=False) is False
        assert cache.access(0x1000, is_write=False) is True
        assert cache.stats.read_misses == 1

    def test_read_alone_installs_exclusive(self):
        cache = make_cache()
        cache.access(0x1000, is_write=False)
        assert cache.lookup_state(0x1000) is MESIState.EXCLUSIVE

    def test_write_installs_modified(self):
        cache = make_cache()
        cache.access(0x1000, is_write=True)
        assert cache.lookup_state(0x1000) is MESIState.MODIFIED

    def test_write_hit_on_exclusive_is_silent_upgrade(self):
        cache = make_cache()
        cache.access(0x1000, is_write=False)
        tenures_before = cache.bus.stats.tenures
        cache.access(0x1000, is_write=True)
        assert cache.lookup_state(0x1000) is MESIState.MODIFIED
        assert cache.bus.stats.tenures == tenures_before  # no DCLAIM needed

    def test_same_line_different_offsets_hit(self):
        cache = make_cache()
        cache.access(0x1000, is_write=False)
        assert cache.access(0x1000 + 64, is_write=False) is True

    def test_lru_eviction_order(self):
        cache = make_cache(size=2 * 128, assoc=2, line_size=128)  # one set, 2 ways
        cache.access(0x0000, False)
        cache.access(0x1000, False)
        cache.access(0x0000, False)  # refresh line 0
        cache.access(0x2000, False)  # evicts 0x1000 (LRU)
        assert cache.lookup_state(0x0000) is not MESIState.INVALID
        assert cache.lookup_state(0x1000) is MESIState.INVALID

    def test_dirty_eviction_casts_out(self):
        bus = SystemBus()
        cache = make_cache(bus=bus, size=2 * 128, assoc=2)
        cache.access(0x0000, True)
        cache.access(0x1000, False)
        cache.access(0x2000, False)  # evicts dirty 0x0000
        assert cache.stats.castouts == 1
        assert bus.stats.castouts == 1

    def test_clean_eviction_is_silent(self):
        bus = SystemBus()
        cache = make_cache(bus=bus, size=2 * 128, assoc=2)
        cache.access(0x0000, False)
        cache.access(0x1000, False)
        cache.access(0x2000, False)
        assert bus.stats.castouts == 0

    def test_resident_lines_bounded(self):
        cache = make_cache(size=4096, assoc=2, line_size=128)
        for i in range(100):
            cache.access(i * 128, False)
        assert cache.resident_lines() <= 4096 // 128

    def test_stats_accumulate(self):
        cache = make_cache()
        cache.access(0x0000, False)
        cache.access(0x0000, True)
        cache.access(0x2000, True)
        stats = cache.stats
        assert stats.accesses == 3
        assert stats.read_accesses == 1
        assert stats.write_accesses == 2
        assert stats.hits == 1
        assert stats.miss_ratio == pytest.approx(2 / 3)


class TestTwoCacheCoherence:
    def setup_method(self):
        self.bus = SystemBus()
        self.a = make_cache(cpu_id=0, bus=self.bus)
        self.b = make_cache(cpu_id=1, bus=self.bus)

    def test_read_after_read_both_shared(self):
        self.a.access(0x1000, False)
        self.b.access(0x1000, False)
        assert self.a.lookup_state(0x1000) is MESIState.SHARED
        assert self.b.lookup_state(0x1000) is MESIState.SHARED

    def test_read_of_modified_triggers_intervention(self):
        self.a.access(0x1000, True)
        self.b.access(0x1000, False)
        assert self.a.stats.interventions_supplied == 1
        assert self.a.lookup_state(0x1000) is MESIState.SHARED
        assert self.b.lookup_state(0x1000) is MESIState.SHARED

    def test_write_invalidates_other_copy(self):
        self.a.access(0x1000, False)
        self.b.access(0x1000, True)
        assert self.a.lookup_state(0x1000) is MESIState.INVALID
        assert self.b.lookup_state(0x1000) is MESIState.MODIFIED
        assert self.a.stats.snoop_invalidations == 1

    def test_write_hit_on_shared_issues_dclaim(self):
        self.a.access(0x1000, False)
        self.b.access(0x1000, False)  # both shared
        dclaims_before = self.bus.stats.dclaims
        self.a.access(0x1000, True)
        assert self.bus.stats.dclaims == dclaims_before + 1
        assert self.a.stats.upgrades == 1
        assert self.b.lookup_state(0x1000) is MESIState.INVALID

    def test_castout_does_not_disturb_peers(self):
        self.a.access(0x1000, False)
        # b casts out an unrelated dirty line; a keeps its copy
        b = make_cache(cpu_id=2, bus=self.bus, size=2 * 128, assoc=2)
        b.access(0x0000, True)
        b.access(0x1000 + 0x4000, False)
        b.access(0x8000, False)  # evicts dirty 0x0000 -> castout
        assert self.a.lookup_state(0x1000) is not MESIState.INVALID

    def test_single_writer_invariant(self):
        self.a.access(0x1000, True)
        self.b.access(0x1000, True)
        modified_holders = [
            cache
            for cache in (self.a, self.b)
            if cache.lookup_state(0x1000) is MESIState.MODIFIED
        ]
        assert len(modified_holders) == 1
