"""Tests for repro.host.smp: machine assembly, memory controller, I/O."""

import numpy as np
import pytest

from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.host.memory import MemoryController
from repro.host.processor import Processor
from repro.host.smp import HostConfig, HostSMP, S7A_HOST


class TestHostConfig:
    def test_s7a_defaults(self):
        assert S7A_HOST.n_cpus == 8
        assert S7A_HOST.l2_size == 8 * 1024 * 1024
        assert S7A_HOST.l2_assoc == 4
        assert S7A_HOST.bus_hz == 100_000_000

    def test_rejects_too_many_cpus(self):
        with pytest.raises(ConfigurationError):
            HostConfig(n_cpus=17)

    def test_rejects_zero_cpus(self):
        with pytest.raises(ConfigurationError):
            HostConfig(n_cpus=0)


class TestHostSMP:
    def test_processor_wiring(self, small_host):
        assert len(small_host.processors) == 4
        assert [p.cpu_id for p in small_host.processors] == [0, 1, 2, 3]

    def test_run_chunk_drives_caches(self, small_host):
        cpu_ids = np.array([0, 1, 2, 3])
        addresses = np.array([0x1000, 0x2000, 0x3000, 0x4000])
        writes = np.array([False, True, False, True])
        small_host.run_chunk(cpu_ids, addresses, writes)
        assert small_host.total_references() == 4
        assert small_host.total_l2_misses() == 4  # all cold

    def test_run_chunk_rejects_unknown_cpu(self, small_host):
        with pytest.raises(ConfigurationError):
            small_host.run_chunk(
                np.array([9]), np.array([0x1000]), np.array([False])
            )

    def test_run_respects_max_references(self, small_host):
        def chunks():
            for _ in range(10):
                yield (
                    np.zeros(100, dtype=np.int64),
                    np.arange(100, dtype=np.int64) * 128,
                    np.zeros(100, dtype=bool),
                )

        executed = small_host.run(chunks(), max_references=250)
        assert executed == 250
        assert small_host.total_references() == 250

    def test_aggregate_miss_ratio(self, small_host):
        small_host.run_chunk(
            np.array([0, 0]), np.array([0x1000, 0x1000]), np.array([False, False])
        )
        assert small_host.aggregate_miss_ratio() == pytest.approx(0.5)

    def test_plug_and_unplug_monitor(self, small_host):
        seen = []

        class Probe:
            def observe(self, txn):
                seen.append(txn)
                return SnoopResponse.NULL

        probe = Probe()
        small_host.plug_in(probe)
        small_host.run_chunk(np.array([0]), np.array([0x1000]), np.array([False]))
        assert len(seen) == 1
        small_host.unplug(probe)
        small_host.run_chunk(np.array([0]), np.array([0x8000]), np.array([False]))
        assert len(seen) == 1


class TestMemoryController:
    def test_counts_memory_sourced_reads(self):
        memory = MemoryController()
        memory.observe(
            BusTransaction(0, BusCommand.READ, 0, snoop_response=SnoopResponse.NULL)
        )
        memory.observe(
            BusTransaction(0, BusCommand.READ, 0, snoop_response=SnoopResponse.SHARED)
        )
        assert memory.reads_from_memory == 2

    def test_intervention_read_not_counted(self):
        memory = MemoryController()
        memory.observe(
            BusTransaction(0, BusCommand.READ, 0, snoop_response=SnoopResponse.MODIFIED)
        )
        assert memory.reads_from_memory == 0

    def test_castouts_counted(self):
        memory = MemoryController()
        memory.observe(BusTransaction(0, BusCommand.CASTOUT, 0))
        assert memory.writes_to_memory == 1

    def test_host_memory_balance(self, small_host):
        rng = np.random.default_rng(1)
        n = 2000
        small_host.run_chunk(
            rng.integers(0, 4, n),
            (rng.integers(0, 1 << 14, n)) * 128,
            rng.random(n) < 0.3,
        )
        stats = small_host.bus.stats
        # Memory sources every read/rwitm that was not an intervention.
        interventions = sum(
            p.l2.stats.interventions_supplied for p in small_host.processors
        )
        assert small_host.memory.reads_from_memory == (
            stats.reads + stats.rwitms - interventions
        )


class TestIoBridge:
    def test_register_ops_reach_bus_as_io(self, small_host):
        small_host.io_bridge.register_access(0xF000, is_write=False)
        small_host.io_bridge.register_access(0xF000, is_write=True)
        assert small_host.bus.stats.io_ops == 2

    def test_dma_write_invalidates_cached_line(self, small_host):
        cpu = small_host.processors[0]
        cpu.reference(0x1000, is_write=False)
        small_host.io_bridge.dma_write(0x1000)
        from repro.host.cache import MESIState

        assert cpu.l2.lookup_state(0x1000) is MESIState.INVALID

    def test_dma_read_demotes_modified(self, small_host):
        cpu = small_host.processors[0]
        cpu.reference(0x1000, is_write=True)
        small_host.io_bridge.dma_read(0x1000)
        from repro.host.cache import MESIState

        assert cpu.l2.lookup_state(0x1000) is MESIState.SHARED


class TestProcessor:
    def test_instruction_model(self):
        from repro.bus.bus import SystemBus
        from repro.host.cache import SnoopingCache

        bus = SystemBus()
        l2 = SnoopingCache(0, bus, size=4096, assoc=2)
        bus.attach_snooper(l2)
        processor = Processor(cpu_id=0, l2=l2, refs_per_kilo_instruction=100.0)
        for i in range(10):
            processor.reference(i * 128, False)
        assert processor.instructions_executed == pytest.approx(100.0)
        assert processor.misses_per_kilo_instruction() == pytest.approx(
            l2.stats.misses * 10.0
        )

    def test_zero_refs_per_kilo_instruction(self):
        from repro.bus.bus import SystemBus
        from repro.host.cache import SnoopingCache

        bus = SystemBus()
        l2 = SnoopingCache(0, bus, size=4096, assoc=2)
        processor = Processor(cpu_id=0, l2=l2, refs_per_kilo_instruction=0.0)
        assert processor.instructions_executed == 0.0
        assert processor.misses_per_kilo_instruction() == 0.0
