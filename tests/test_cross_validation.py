"""Cross-validation: the board's emulation path vs. the C simulator.

The paper validated the MemorIES design against its trace-driven C
simulator; this suite holds our two independent implementations to the same
standard: for any (trace, configuration) pair, every hit/miss/castout/
eviction counter must be *identical*.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bus.trace import BusTrace, encode_arrays
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.sim.trace_sim import TraceSimulator
from repro.target.configs import single_node_machine

from tests.conftest import make_trace


def compare(trace, config, n_cpus=4):
    board = board_for_machine(single_node_machine(config, n_cpus=n_cpus))
    board.replay(trace)
    node = board.firmware.nodes[0]
    simulator = TraceSimulator(config, local_cpus=frozenset(range(n_cpus)))
    result = simulator.simulate(trace)
    expected = result.counter_view()
    actual = {name: node.counters.read(name) for name in expected}
    assert actual == expected, f"divergence for {config.describe()}"
    assert node.miss_ratio() == pytest.approx(result.miss_ratio)


class TestAgreement:
    @pytest.mark.parametrize(
        "size,assoc,line",
        [
            (4 * 1024, 1, 128),
            (16 * 1024, 4, 128),
            (16 * 1024, 8, 256),
            (64 * 1024, 2, 512),
        ],
    )
    def test_configs_agree_on_random_trace(self, size, assoc, line):
        trace = make_trace(n=5000, seed=42)
        compare(trace, CacheNodeConfig(size=size, assoc=assoc, line_size=line))

    def test_agreement_with_castouts_and_dclaims(self):
        rng = np.random.default_rng(9)
        n = 4000
        commands = rng.choice([0, 1, 2, 3], size=n, p=[0.5, 0.2, 0.1, 0.2])
        words = encode_arrays(
            rng.integers(0, 4, n).astype(np.uint64),
            commands.astype(np.uint64),
            (rng.integers(0, 512, n).astype(np.uint64)) * np.uint64(128),
        )
        compare(BusTrace(words), CacheNodeConfig(size=8 * 1024, assoc=4, line_size=128))

    def test_agreement_with_io_and_dma_masters(self):
        rng = np.random.default_rng(11)
        n = 3000
        cpus = rng.choice([0, 1, 2, 3, 16], size=n, p=[0.23, 0.23, 0.23, 0.23, 0.08])
        commands = rng.choice([0, 1, 3, 4], size=n, p=[0.6, 0.2, 0.1, 0.1])
        words = encode_arrays(
            cpus.astype(np.uint64),
            commands.astype(np.uint64),
            (rng.integers(0, 256, n).astype(np.uint64)) * np.uint64(128),
        )
        compare(BusTrace(words), CacheNodeConfig(size=8 * 1024, assoc=4, line_size=128))

    def test_agreement_on_real_workload_trace(self):
        from repro.experiments.pipeline import capture_records
        from repro.host.smp import HostConfig
        from repro.workloads.tpcc import TpccWorkload

        workload = TpccWorkload(db_bytes=1 << 22, n_cpus=4, seed=13)
        trace = capture_records(
            workload, 8000, HostConfig(n_cpus=4, l2_size=8 * 1024, l2_assoc=2)
        )
        compare(trace, CacheNodeConfig(size=32 * 1024, assoc=4, line_size=128))

    @given(
        seed=st.integers(0, 10_000),
        assoc=st.sampled_from([1, 2, 4, 8]),
        size_kb=st.sampled_from([4, 8, 32]),
    )
    @settings(max_examples=25, deadline=None)
    def test_agreement_property(self, seed, assoc, size_kb):
        trace = make_trace(n=1500, seed=seed, address_space=1 << 19)
        compare(trace, CacheNodeConfig(size=size_kb * 1024, assoc=assoc, line_size=128))
