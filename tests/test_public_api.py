"""Tests for the top-level public API surface."""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_flow(self):
        """The README quickstart, miniaturised."""
        host = repro.HostSMP(
            repro.HostConfig(n_cpus=4, l2_size=8 * 1024, l2_assoc=4)
        )
        console = repro.MemoriesConsole()
        l3 = repro.CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)
        board = console.power_up(
            repro.single_node_machine(l3, n_cpus=4), enforce_envelope=False
        )
        host.plug_in(board)
        workload = repro.TpccWorkload(db_bytes=1 << 22, n_cpus=4)
        host.run(workload.chunks(20_000), max_references=20_000)
        report = console.report()
        assert "node0.local.read" in report
        assert 0.0 < console.miss_ratios()[0] <= 1.0

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.bus
        import repro.common
        import repro.experiments
        import repro.host
        import repro.memories
        import repro.memories.firmware
        import repro.sim
        import repro.target
        import repro.workloads
        import repro.workloads.splash

    def test_experiment_registry_complete(self):
        import importlib

        from repro.experiments import ARTEFACTS

        assert len(ARTEFACTS) == 12
        for artefact, module_name in ARTEFACTS.items():
            module = importlib.import_module(module_name)
            assert hasattr(module, "run"), artefact
