"""Tests for repro.faults: injection, recovery, campaigns, checkpoints."""

import json

import numpy as np
import pytest

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.errors import TraceFormatError, ValidationError
from repro.faults import (
    FaultCampaign,
    FaultInjector,
    FaultPlan,
    corrupt_trace_bytes,
    load_checkpoint,
    restore_checkpoint,
    run_campaign,
    save_checkpoint,
)
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.counters import COUNTER_MASK
from repro.memories.ecc import EccOutcome, EccTagStateDirectory
from repro.target.configs import single_node_machine, split_smp_machine

CFG = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)


def machine(n_cpus=4):
    return single_node_machine(CFG, n_cpus=n_cpus)


def synthetic_words(n=2000, n_cpus=4, seed=0):
    """A packed record stream with reads, writes and reuse."""
    from repro.bus.trace import encode_arrays

    rng = np.random.default_rng(seed)
    cpus = rng.integers(0, n_cpus, n).astype(np.uint64)
    commands = rng.choice(
        [int(BusCommand.READ), int(BusCommand.RWITM)], size=n, p=[0.8, 0.2]
    ).astype(np.uint64)
    addresses = (rng.integers(0, 512, n) * np.uint64(128)).astype(np.uint64)
    return encode_arrays(cpus, commands, addresses)


class TestFaultPlan:
    def test_zero_by_default(self):
        plan = FaultPlan()
        assert plan.is_zero
        plan.validate()

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValidationError, match="drop_snoop_rate"):
            FaultPlan(drop_snoop_rate=1.5).validate()
        with pytest.raises(ValidationError, match="directory_flip_rate"):
            FaultPlan(directory_flip_rate=-0.1).validate()

    def test_burst_ops_must_be_positive(self):
        with pytest.raises(ValidationError, match="burst_ops"):
            FaultPlan(buffer_burst_ops=0).validate()

    def test_dict_roundtrip(self):
        plan = FaultPlan(seed=9, drop_snoop_rate=0.01, buffer_burst_ops=32)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValidationError, match="unknown"):
            FaultPlan.from_dict({"seed": 1, "meteor_rate": 0.5})

    def test_uniform_sets_every_per_tenure_site(self):
        plan = FaultPlan.uniform(0.01, seed=3)
        assert plan.seed == 3
        assert not plan.is_zero
        assert plan.drop_snoop_rate == plan.directory_flip_rate == 0.01
        assert plan.buffer_burst_rate == plan.counter_saturate_rate == 0.01


class TestZeroFaultIdentity:
    """The bit-identity contract: a zero-rate plan changes nothing."""

    @pytest.mark.parametrize("ecc", [False, True])
    def test_statistics_byte_identical(self, ecc):
        words = synthetic_words()
        result = run_campaign(words, machine(), FaultPlan(), ecc=ecc)
        assert result.identical, "zero-fault replay diverged from baseline"
        assert result.miss_ratio_error == 0.0
        assert result.fault_counts == {}

    def test_injector_makes_no_rng_draws_on_zero_plan(self):
        board = board_for_machine(machine())
        injector = FaultInjector(board, FaultPlan())
        state_before = injector._drop_rng.bit_generator.state
        injector.replay_words(synthetic_words(200))
        assert injector._drop_rng.bit_generator.state == state_before
        assert injector.events == []


class TestReproducibility:
    def test_same_plan_reproduces_sites_and_statistics(self):
        words = synthetic_words()
        plan = FaultPlan.uniform(0.01, seed=11)
        first = run_campaign(words, machine(), plan)
        second = run_campaign(words, machine(), plan)
        assert first.events == second.events
        assert first.faulted == second.faulted
        assert first.fault_counts == second.fault_counts

    def test_different_seed_moves_fault_sites(self):
        words = synthetic_words()
        a = run_campaign(words, machine(), FaultPlan.uniform(0.01, seed=1))
        b = run_campaign(words, machine(), FaultPlan.uniform(0.01, seed=2))
        assert a.events != b.events

    def test_all_sites_fire_at_high_rate(self):
        words = synthetic_words()
        result = run_campaign(words, machine(), FaultPlan.uniform(0.05, seed=5))
        assert set(result.fault_counts) == {
            "drop_snoop",
            "directory_flip",
            "buffer_burst",
            "counter_saturate",
        }


class TestEccRecovery:
    def populated_board(self):
        board = board_for_machine(machine(), ecc=True)
        board.replay_words(synthetic_words(1500))
        return board

    def test_scrubber_corrects_every_single_bit_flip(self):
        board = self.populated_board()
        node = board.firmware.nodes[0]
        directory = node.directory
        assert isinstance(directory, EccTagStateDirectory)
        rng = np.random.default_rng(0)
        flips = 0
        for set_index in range(directory.config.num_sets):
            ways = directory.ways_in_set(set_index)
            if ways == 0:
                continue
            bit = int(rng.integers(directory.stored_bits))
            directory.inject_bit_flip(set_index, 0, bit)
            flips += 1
        assert flips > 0
        node.scrubber.scrub_all()
        snapshot = node.resilience.snapshot()
        assert snapshot.get("node0.resilience.ecc.corrected", 0) == flips
        assert "node0.resilience.ecc.uncorrectable" not in snapshot
        assert "node0.resilience.ecc.dropped" not in snapshot
        # A second full pass finds a clean directory.
        before = dict(snapshot)
        node.scrubber.scrub_all()
        assert node.resilience.snapshot() == before

    def test_scrubber_runs_off_the_board_clock(self):
        board = self.populated_board()
        node = board.firmware.nodes[0]
        directory = node.directory
        set_index = next(
            s
            for s in range(directory.config.num_sets)
            if directory.ways_in_set(s) > 0
        )
        directory.inject_bit_flip(set_index, 0, 2)
        # Drive idle tenures until the patrol has covered the directory.
        passes = node.scrubber.full_pass_cycles() / board.cycles_per_tenure
        for _ in range(int(passes) + 2):
            board._dispatch(0, BusCommand.READ, 0, SnoopResponse.RETRY)
        assert (
            node.resilience.snapshot().get("node0.resilience.ecc.corrected", 0)
            >= 1
        )

    def test_double_flip_is_detected_not_miscorrected(self):
        board = self.populated_board()
        directory = board.firmware.nodes[0].directory
        node = board.firmware.nodes[0]
        set_index = next(
            s
            for s in range(directory.config.num_sets)
            if directory.ways_in_set(s) > 0
        )
        directory.inject_bit_flip(set_index, 0, 1)
        directory.inject_bit_flip(set_index, 0, 7)
        outcome = directory.verify_line(set_index, 0, node.resilience)
        assert outcome is EccOutcome.UNCORRECTABLE
        snapshot = node.resilience.snapshot()
        assert snapshot["node0.resilience.ecc.uncorrectable"] == 1

    def test_bit_flip_out_of_range_rejected(self):
        board = self.populated_board()
        directory = board.firmware.nodes[0].directory
        with pytest.raises(ValidationError):
            directory.inject_bit_flip(0, 0, directory.stored_bits)


class TestSnoopLossRecovery:
    def test_note_snoop_loss_invalidates_resident_line(self):
        board = board_for_machine(machine())
        node = board.firmware.nodes[0]
        line = node.config.line_size
        board._dispatch(0, BusCommand.READ, 0x40 * line, SnoopResponse.NULL)
        assert node.directory.lookup_state(0x40 * line) != 0
        dropped = board.note_snoop_loss(0x40 * line)
        assert dropped == 1
        assert board.snoop_losses == 1
        assert node.directory.lookup_state(0x40 * line) == 0
        snapshot = node.resilience.snapshot()
        assert snapshot["node0.resilience.resync.checked"] == 1
        assert snapshot["node0.resilience.resync.invalidated"] == 1

    def test_loss_of_absent_line_is_counted_but_harmless(self):
        board = board_for_machine(machine())
        assert board.note_snoop_loss(0x123000) == 0
        assert board.snoop_losses == 1
        assert board.statistics()["board.snoop_losses"] == 1

    def test_drop_overstates_never_understates_misses(self):
        words = synthetic_words(3000)
        plan = FaultPlan(seed=2, drop_snoop_rate=0.02)
        result = run_campaign(words, machine(), plan)
        assert result.faulted_miss_ratio >= result.baseline_miss_ratio


class TestCounterSaturation:
    def test_wrap_is_silent_in_read_but_flagged(self):
        board = board_for_machine(machine())
        board.replay_words(synthetic_words(500))
        node = board.firmware.nodes[0]
        name = sorted(node.counters.state_dict())[0]
        before = node.counters.read(name)
        node.counters.increment(name, COUNTER_MASK + 1)
        assert node.counters.read(name) == before
        assert node.counters.wrapped(name)


class TestCheckpoint:
    def build(self):
        mach = split_smp_machine(CFG, n_cpus=4, procs_per_node=2)
        return board_for_machine(mach, seed=3, ecc=True)

    def test_restore_continues_identically(self, tmp_path):
        words = synthetic_words(2000)
        straight = self.build()
        straight.replay_words(words)

        interrupted = self.build()
        interrupted.replay_words(words[:1000])
        path = tmp_path / "board.ckpt"
        save_checkpoint(interrupted, path)

        resumed = self.build()
        restore_checkpoint(resumed, path)
        assert resumed.now_cycle == interrupted.now_cycle
        resumed.replay_words(words[1000:])
        assert resumed.statistics() == straight.statistics()

    def test_checkpoint_is_plain_json(self, tmp_path):
        board = self.build()
        board.replay_words(synthetic_words(100))
        path = tmp_path / "board.ckpt"
        save_checkpoint(board, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "memories-checkpoint"
        assert "state" in payload

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_text("not json {")
        with pytest.raises(TraceFormatError, match="not a checkpoint"):
            load_checkpoint(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(TraceFormatError, match="not a MemorIES"):
            load_checkpoint(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_text(
            json.dumps(
                {"format": "memories-checkpoint", "version": 99, "state": {}}
            )
        )
        with pytest.raises(TraceFormatError, match="version"):
            load_checkpoint(path)


class TestCampaign:
    def test_sweep_shares_one_baseline(self):
        words = synthetic_words(800)
        campaign = FaultCampaign(machine(), ecc=True)
        plans = [FaultPlan(), FaultPlan.uniform(0.02, seed=4)]
        results = campaign.sweep(words, plans)
        assert len(results) == 2
        assert results[0].baseline == results[1].baseline
        assert results[0].identical

    def test_summary_and_to_dict(self):
        words = synthetic_words(400)
        result = run_campaign(
            words, machine(), FaultPlan.uniform(0.02, seed=4)
        )
        assert "miss ratio" in result.summary()
        payload = result.to_dict()
        assert payload["records"] == 400
        assert payload["plan"]["seed"] == 4
        json.dumps(payload)  # must be serialisable as-is


class TestConsoleAndCli:
    def console(self, ecc=True):
        from repro.memories.console import MemoriesConsole

        console = MemoriesConsole()
        console.power_up(machine(), enforce_envelope=False, ecc=ecc)
        return console

    def test_faults_command_reports_recovery_state(self):
        console = self.console()
        console.board.replay_words(synthetic_words(500))
        console.board.note_snoop_loss(0x4000)
        output = console.execute("faults")
        assert "snoop losses              1" in output
        assert "ECC on" in output
        assert "buffer high-water" in output

    def test_faults_command_without_ecc(self):
        output = self.console(ecc=False).execute("faults")
        assert "ECC off" in output

    def test_live_counter_wrap_shows_in_overflows(self):
        console = self.console()
        console.board.replay_words(synthetic_words(500))
        node = console.board.firmware.nodes[0]
        injector = FaultInjector(
            console.board, FaultPlan(seed=6, counter_saturate_rate=1.0)
        )
        injector.replay_words(synthetic_words(5, seed=1))
        wrapped = console.wrapped_counters()
        assert wrapped, "saturation faults should wrap at least one counter"
        output = console.execute("overflows")
        assert "WRAPPED" in output and wrapped[0] in output
        # read() stays modulo-2^40: the snapshot itself is unchanged.
        for name in wrapped:
            assert node.counters.read(name.split(".", 1)[1]) <= COUNTER_MASK

    def test_report_includes_buffer_stats(self):
        console = self.console()
        console.board.replay_words(synthetic_words(300))
        report = console.report()
        assert "node0.buffer.accepted" in report
        assert "node0.buffer.high_water" in report
        assert "node0.buffer.rejected" in report

    def test_cli_faults_run_zero_plan_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "campaign.json"
        status = main(
            ["faults", "run", "--records", "1500", "--out", str(out)]
        )
        text = capsys.readouterr().out
        assert status == 0
        assert "identical to baseline: True" in text
        assert out.exists()
        status = main(["faults", "report", str(out)])
        text = capsys.readouterr().out
        assert status == 0
        assert "identical to baseline: True" in text

    def test_cli_faults_run_with_faults(self, capsys):
        from repro.cli import main

        status = main(
            ["faults", "run", "--records", "1500", "--drop", "0.01",
             "--flip", "0.01", "--seed", "5"]
        )
        text = capsys.readouterr().out
        assert status == 0
        assert "faults" in text

    def test_cli_faults_report_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "junk.json"
        path.write_text("{")
        assert main(["faults", "report", str(path)]) == 2
        assert "error:" in capsys.readouterr().out


class TestSelfTestFailurePaths:
    def test_corrupted_directory_fails_a_check(self):
        from repro.memories.selftest import run_self_test

        board = board_for_machine(machine(), ecc=False)

        class VandalisedDirectory:
            """Forwards everything but forgets every installed line."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def lookup_state(self, address):
                return 0  # INVALID: warm reads look cold

        node = board.firmware.nodes[0]
        node.directory = VandalisedDirectory(node.directory)
        result = run_self_test(board)
        assert not result.passed
        assert "FAIL" in result.render()

    def test_crashing_pipeline_is_a_fail_not_a_crash(self):
        from repro.common.errors import EmulationError
        from repro.memories.selftest import run_self_test

        board = board_for_machine(machine())

        class ExplodingFilter:
            def __init__(self, inner):
                self._inner = inner
                self.stats = inner.stats

            def admit(self, command, response, now):
                raise EmulationError("address filter FPGA fault")

            def reset(self):
                self._inner.reset()

        board.address_filter = ExplodingFilter(board.address_filter)
        result = run_self_test(board)
        assert not result.passed
        assert "pipeline raised" in result.render()


class TestCorruptTraceBytes:
    def test_flip_changes_exactly_one_bit(self):
        rng = np.random.default_rng(0)
        data = bytes(range(64))
        damaged = corrupt_trace_bytes(data, rng, mode="flip")
        diff = [a ^ b for a, b in zip(data, damaged)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_truncate_shortens(self):
        rng = np.random.default_rng(0)
        data = bytes(64)
        assert len(corrupt_trace_bytes(data, rng, mode="truncate")) < 64

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError):
            corrupt_trace_bytes(b"xx", np.random.default_rng(0), mode="melt")

    def test_empty_input_passthrough(self):
        assert corrupt_trace_bytes(b"", np.random.default_rng(0)) == b""
