"""Tests for repro.memories.counters: 40-bit hardware counter banks."""

import pytest

from repro.common.errors import EmulationError
from repro.memories.counters import COUNTER_MASK, CounterBank, seconds_until_wrap


class TestCounterBank:
    def test_lazily_created_at_zero(self):
        bank = CounterBank()
        assert bank.read("never.touched") == 0
        assert "never.touched" not in bank

    def test_increment_and_read(self):
        bank = CounterBank()
        bank.increment("hits")
        bank.increment("hits", 4)
        assert bank.read("hits") == 5

    def test_negative_increment_rejected(self):
        bank = CounterBank()
        with pytest.raises(EmulationError):
            bank.increment("hits", -1)

    def test_forty_bit_wrap(self):
        bank = CounterBank()
        bank.increment("big", (1 << 40) + 7)
        assert bank.read("big") == 7
        assert bank.read_raw("big") == (1 << 40) + 7
        assert bank.wrapped("big")

    def test_not_wrapped_below_limit(self):
        bank = CounterBank()
        bank.increment("small", COUNTER_MASK)
        assert not bank.wrapped("small")
        assert bank.read("small") == COUNTER_MASK

    def test_snapshot_qualified_names(self):
        bank = CounterBank(prefix="node2")
        bank.increment("hit.read", 3)
        assert bank.snapshot() == {"node2.hit.read": 3}
        assert bank.snapshot(qualified=False) == {"hit.read": 3}

    def test_items_sorted(self):
        bank = CounterBank()
        bank.increment("zeta")
        bank.increment("alpha")
        assert [name for name, _ in bank.items()] == ["alpha", "zeta"]

    def test_reset(self):
        bank = CounterBank()
        bank.increment("x")
        bank.reset()
        assert len(bank) == 0
        assert bank.read("x") == 0

    def test_snapshot_key_sorted(self):
        bank = CounterBank(prefix="node0")
        bank.increment("zeta")
        bank.increment("alpha")
        bank.increment("mid")
        assert list(bank.snapshot()) == ["node0.alpha", "node0.mid", "node0.zeta"]
        assert list(bank.snapshot(qualified=False)) == ["alpha", "mid", "zeta"]

    def test_wrapped_counters_iterator(self):
        bank = CounterBank(prefix="node1")
        bank.increment("fine", 10)
        bank.increment("zz.over", (1 << 40) + 1)
        bank.increment("aa.over", (1 << 41) + 5)
        assert list(bank.wrapped_counters()) == ["node1.aa.over", "node1.zz.over"]
        assert list(bank.wrapped_counters(qualified=False)) == ["aa.over", "zz.over"]

    def test_wrapped_counters_empty_when_none_wrapped(self):
        bank = CounterBank()
        bank.increment("small", COUNTER_MASK)
        assert list(bank.wrapped_counters()) == []


class TestWrapTime:
    def test_paper_claim_over_30_hours(self):
        # 100 MHz bus, 20% utilization, one event per 2-cycle tenure:
        # 10M events/s -> a 40-bit counter lasts > 30 hours.
        events_per_second = 100e6 * 0.2 / 2
        assert seconds_until_wrap(events_per_second) > 30 * 3600

    def test_zero_rate_is_infinite(self):
        assert seconds_until_wrap(0) == float("inf")
