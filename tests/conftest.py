"""Shared fixtures for the MemorIES reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bus.trace import BusTrace, encode_arrays
from repro.host.smp import HostConfig, HostSMP
from repro.memories.config import CacheNodeConfig


@pytest.fixture
def small_host() -> HostSMP:
    """A 4-way host with small L2s (fast to exercise)."""
    return HostSMP(HostConfig(n_cpus=4, l2_size=64 * 1024, l2_assoc=2))


@pytest.fixture
def tiny_cache_config() -> CacheNodeConfig:
    """A small but geometry-valid emulated cache (below Table 2 minimum)."""
    return CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)


def make_trace(
    n: int = 1000,
    n_cpus: int = 4,
    address_space: int = 1 << 22,
    write_fraction: float = 0.3,
    seed: int = 0,
) -> BusTrace:
    """A synthetic bus trace of READ/RWITM records."""
    rng = np.random.default_rng(seed)
    cpu_ids = rng.integers(0, n_cpus, n).astype(np.uint64)
    commands = np.where(rng.random(n) < write_fraction, 1, 0).astype(np.uint64)
    addresses = (rng.integers(0, address_space // 128, n).astype(np.uint64)) * np.uint64(128)
    return BusTrace(encode_arrays(cpu_ids, commands, addresses))


@pytest.fixture
def random_trace() -> BusTrace:
    """A 1000-record random trace."""
    return make_trace()
