"""Tests for the console CLI (repro.cli)."""

import pytest

from repro.cli import CliError, ConsoleSession, main


def session():
    s = ConsoleSession(scale=2048, seed=1)
    s.execute("host 4 8MB 4")
    return s


class TestCommands:
    def test_host_reports_scaled_l2(self):
        s = ConsoleSession(scale=2048)
        output = s.execute("host 4 8MB 4")
        assert "4 CPUs" in output and "4KB" in output

    def test_program_single(self):
        s = session()
        output = s.execute("program single 64MB")
        assert "node A" in output

    def test_program_split(self):
        s = session()
        output = s.execute("program split 64MB 2")
        assert "node A" in output and "node B" in output

    def test_program_multi(self):
        s = session()
        output = s.execute("program multi 16MB 64MB")
        assert "group 0" in output and "group 1" in output

    def test_full_session(self):
        s = session()
        s.execute("program single 64MB")
        s.execute("workload tpcc 150GB")
        run_output = s.execute("run 20000")
        assert "20,000 references" in run_output
        ratios = s.execute("miss-ratios")
        assert ratios.startswith("node 0:")
        report = s.execute("report")
        assert "node0.local.read" in report

    def test_stats_and_reset_pass_through(self):
        s = session()
        s.execute("program single 64MB")
        s.execute("workload web 4GB")
        s.execute("run 5000")
        assert "global.bus.tenures" in s.execute("stats")
        assert s.execute("reset") == "ok"

    def test_save_trace(self, tmp_path):
        s = session()
        s.execute("workload tpch 100GB")
        path = tmp_path / "session.mies"
        output = s.execute(f"save-trace {path} 5000")
        assert "5,000 records" in output
        from repro.bus.trace import TraceReader

        assert len(TraceReader(path).load()) == 5000

    def test_save_and_reload_programming(self, tmp_path):
        s = session()
        s.execute("program split 64MB 2")
        path = tmp_path / "machine.json"
        assert "saved programming" in s.execute(f"save-machine {path}")
        fresh = session()
        output = fresh.execute(f"program file {path}")
        assert "node A" in output and "node B" in output

    def test_save_machine_requires_programming(self, tmp_path):
        with pytest.raises(CliError, match="programming"):
            session().execute(f"save-machine {tmp_path}/x.json")

    def test_sweep(self):
        s = session()
        s.execute("workload tpcc 150GB")
        output = s.execute("sweep 5000 16MB 256MB")
        assert "swept 5,000 records" in output
        assert "16MB" in output and "256MB" in output
        lines = [line for line in output.splitlines() if "miss ratio" in line]
        assert len(lines) == 2

    def test_sweep_requires_workload(self):
        with pytest.raises(CliError, match="workload"):
            session().execute("sweep 1000 16MB")

    def test_help(self):
        assert "program single" in session().execute("help")
        assert "sweep" in session().execute("help")

    def test_comments_and_blank_lines_ignored(self):
        s = session()
        assert s.execute("") == ""
        assert s.execute("# a comment") == ""


class TestErrors:
    def test_unknown_command(self):
        with pytest.raises(CliError):
            session().execute("frobnicate")

    def test_run_without_workload(self):
        with pytest.raises(CliError, match="workload"):
            session().execute("run 100")

    def test_run_without_host(self):
        s = ConsoleSession()
        s.execute("workload tpcc")
        with pytest.raises(CliError, match="host"):
            s.execute("run 100")

    def test_bad_program_mode(self):
        with pytest.raises(CliError):
            session().execute("program doughnut 64MB")

    def test_bad_workload(self):
        with pytest.raises(CliError):
            session().execute("workload minecraft")


class TestMain:
    def test_scripted_session(self, tmp_path, capsys):
        script = tmp_path / "session.txt"
        script.write_text(
            "host 4 8MB 4 2048\n"
            "program single 64MB\n"
            "workload tpcc 150GB\n"
            "run 10000\n"
            "miss-ratios\n"
            "quit\n"
        )
        assert main([str(script)]) == 0
        output = capsys.readouterr().out
        assert "10,000 references" in output
        assert "node 0:" in output

    def test_error_sets_status(self, tmp_path, capsys):
        script = tmp_path / "bad.txt"
        script.write_text("frobnicate\n")
        assert main([str(script)]) == 1
        assert "error:" in capsys.readouterr().out


class TestBenchSubcommand:
    def test_bench_reports_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_replay.json"
        status = main(
            [
                "bench", "--records", "1500", "--shards", "2",
                "--inline-shards", "--out", str(out),
            ]
        )
        assert status == 0
        printed = capsys.readouterr().out
        assert "batched speedup over scalar" in printed
        import json

        report = json.loads(out.read_text())
        assert report["identical"] is True
        assert set(report["engines"]) == {
            "scalar", "batched", "compiled", "sharded"
        }
        for entry in report["engines"].values():
            assert entry["records_per_second"] > 0
