"""Property-based coherence tests for the host L2s.

The fundamental invariant of any snooping protocol is SWMR: at any point,
a line has either a single writable (Modified) copy or any number of
read-only copies — never both.  We drive random access sequences through a
multi-cache host and check the invariant after every step.
"""

from hypothesis import given, settings, strategies as st

from repro.bus.bus import SystemBus
from repro.host.cache import MESIState, SnoopingCache

N_CPUS = 4
N_LINES = 8
LINE = 128


def build_machine():
    bus = SystemBus()
    caches = []
    for cpu in range(N_CPUS):
        cache = SnoopingCache(cpu_id=cpu, bus=bus, size=4 * LINE, assoc=2, line_size=LINE)
        bus.attach_snooper(cache)
        caches.append(cache)
    return bus, caches


def check_swmr(caches, address):
    states = [cache.lookup_state(address) for cache in caches]
    modified = sum(1 for s in states if s is MESIState.MODIFIED)
    exclusive = sum(1 for s in states if s is MESIState.EXCLUSIVE)
    valid = sum(1 for s in states if s is not MESIState.INVALID)
    assert modified <= 1, f"two modified copies of {address:#x}: {states}"
    assert exclusive <= 1, f"two exclusive copies of {address:#x}: {states}"
    if modified or exclusive:
        assert valid == 1, f"owned line {address:#x} also cached elsewhere: {states}"


access_strategy = st.lists(
    st.tuples(
        st.integers(0, N_CPUS - 1),
        st.integers(0, N_LINES - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=200,
)


@given(accesses=access_strategy)
@settings(max_examples=60, deadline=None)
def test_swmr_invariant_under_random_traffic(accesses):
    _bus, caches = build_machine()
    for cpu, line, is_write in accesses:
        caches[cpu].access(line * LINE, is_write)
        for probe_line in range(N_LINES):
            check_swmr(caches, probe_line * LINE)


@given(accesses=access_strategy)
@settings(max_examples=60, deadline=None)
def test_capacity_never_exceeded(accesses):
    _bus, caches = build_machine()
    for cpu, line, is_write in accesses:
        caches[cpu].access(line * LINE, is_write)
    for cache in caches:
        assert cache.resident_lines() <= cache.size // cache.line_size


@given(accesses=access_strategy)
@settings(max_examples=30, deadline=None)
def test_stats_balance(accesses):
    _bus, caches = build_machine()
    for cpu, line, is_write in accesses:
        caches[cpu].access(line * LINE, is_write)
    for cache in caches:
        stats = cache.stats
        assert stats.accesses == stats.hits + stats.misses
        assert stats.misses == stats.read_misses + stats.write_misses
        assert stats.accesses == stats.read_accesses + stats.write_accesses
