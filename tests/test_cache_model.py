"""Tests for repro.memories.cache_model: the SDRAM tag/state directory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memories.cache_model import TagStateDirectory
from repro.memories.config import CacheNodeConfig
from repro.memories.protocol_table import LineState


def make_directory(size=16 * 1024, assoc=4, line_size=128, replacement="lru"):
    config = CacheNodeConfig(
        size=size, assoc=assoc, line_size=line_size, replacement=replacement
    )
    return TagStateDirectory(config)


class TestProbeInstall:
    def test_probe_miss_then_hit(self):
        directory = make_directory()
        set_index, tag, way = directory.probe(0x1000)
        assert way == -1
        directory.install(set_index, tag, int(LineState.SHARED))
        _, _, way = directory.probe(0x1000)
        assert way >= 0

    def test_state_read_write(self):
        directory = make_directory()
        set_index, tag, _ = directory.probe(0x2000)
        directory.install(set_index, tag, int(LineState.EXCLUSIVE))
        _, _, way = directory.probe(0x2000)
        assert directory.state_at(set_index, way) == int(LineState.EXCLUSIVE)
        directory.set_state(set_index, way, int(LineState.MODIFIED))
        assert directory.lookup_state(0x2000) == int(LineState.MODIFIED)

    def test_lookup_state_absent_is_invalid(self):
        assert make_directory().lookup_state(0x9999) == int(LineState.INVALID)

    def test_install_evicts_when_full(self):
        directory = make_directory(size=4 * 128, assoc=4)  # one set
        for i in range(4):
            set_index, tag, _ = directory.probe(i * 128)
            assert directory.install(set_index, tag, 1) is None
        set_index, tag, _ = directory.probe(4 * 128)
        evicted = directory.install(set_index, tag, 1)
        assert evicted is not None
        victim_addr, _state = evicted
        assert victim_addr == 0  # LRU: the first line installed

    def test_eviction_returns_line_address_and_state(self):
        directory = make_directory(size=2 * 128, assoc=2)
        s0, t0, _ = directory.probe(0x0000)
        directory.install(s0, t0, int(LineState.MODIFIED))
        s1, t1, _ = directory.probe(0x8000)
        directory.install(s1, t1, int(LineState.SHARED))
        s2, t2, _ = directory.probe(0x10000)
        evicted = directory.install(s2, t2, int(LineState.SHARED))
        assert evicted == (0x0000, int(LineState.MODIFIED))

    def test_invalidate_removes_line(self):
        directory = make_directory()
        set_index, tag, _ = directory.probe(0x3000)
        directory.install(set_index, tag, 2)
        _, _, way = directory.probe(0x3000)
        former = directory.invalidate(set_index, way)
        assert former == 2
        assert directory.lookup_state(0x3000) == int(LineState.INVALID)

    def test_touch_refreshes_lru(self):
        directory = make_directory(size=2 * 128, assoc=2)
        s, t0, _ = directory.probe(0 * 128 * directory.config.num_sets)
        directory.install(s, t0, 1)
        addr_b = 1 << 20
        sb, tb, _ = directory.probe(addr_b)
        directory.install(sb, tb, 1)
        # Touch the first line so the second becomes LRU.
        _, _, way = directory.probe(0)
        directory.touch(0, way)
        s2, t2, _ = directory.probe(1 << 21)
        evicted = directory.install(s2, t2, 1)
        assert evicted[0] == addr_b


class TestWholeDirectory:
    def test_resident_and_occupancy(self):
        directory = make_directory(size=8 * 128, assoc=2)
        for i in range(4):
            s, t, _ = directory.probe(i * 128)
            directory.install(s, t, 1)
        assert directory.resident_lines() == 4
        assert directory.occupancy() == pytest.approx(0.5)

    def test_iter_lines_rebuilds_addresses(self):
        directory = make_directory()
        addresses = {0x1000, 0x2080, 0x40100}
        for address in addresses:
            s, t, _ = directory.probe(address)
            directory.install(s, t, 1)
        listed = {addr for addr, _state in directory.iter_lines()}
        assert listed == {a & ~127 for a in addresses}

    def test_clear(self):
        directory = make_directory()
        s, t, _ = directory.probe(0x1000)
        directory.install(s, t, 1)
        directory.clear()
        assert directory.resident_lines() == 0

    def test_check_invariants_passes_after_traffic(self):
        directory = make_directory(size=1024, assoc=2)
        for i in range(100):
            s, t, _ = directory.probe((i * 937) % (1 << 16) * 128)
            if directory.probe((i * 937) % (1 << 16) * 128)[2] < 0:
                directory.install(s, t, 1)
        directory.check_invariants()


@st.composite
def directory_ops(draw):
    return draw(
        st.lists(
            st.tuples(
                st.integers(0, 31),   # line index
                st.integers(1, 3),    # state
                st.sampled_from(["access", "invalidate"]),
            ),
            min_size=1,
            max_size=200,
        )
    )


class TestPropertyBased:
    @pytest.mark.parametrize("replacement", ["lru", "fifo", "random", "plru"])
    def test_invariants_under_random_ops_all_policies(self, replacement):
        import numpy as np

        rng = np.random.default_rng(5)
        directory = make_directory(size=8 * 128, assoc=4, replacement=replacement)
        for _ in range(500):
            address = int(rng.integers(0, 64)) * 128
            set_index, tag, way = directory.probe(address)
            if way < 0:
                directory.install(set_index, tag, int(rng.integers(1, 4)))
            else:
                directory.touch(set_index, way)
            directory.check_invariants()

    @given(ops=directory_ops())
    @settings(max_examples=50, deadline=None)
    def test_lru_invariants_property(self, ops):
        directory = make_directory(size=4 * 128, assoc=2)
        for line, state, kind in ops:
            address = line * 128
            set_index, tag, way = directory.probe(address)
            if kind == "access":
                if way < 0:
                    directory.install(set_index, tag, state)
                else:
                    directory.set_state(set_index, way, state)
                    directory.touch(set_index, way)
            elif way >= 0:
                directory.invalidate(set_index, way)
        directory.check_invariants()
        assert directory.resident_lines() <= directory.config.num_lines


class MutableMetaPolicy:
    """Test double: a policy whose per-set metadata is a mutable log.

    The built-in policies use integer metadata, where accidental sharing
    across sets is invisible (rebinding an int never aliases).  This
    policy makes the per-set-instance contract observable.
    """

    name = "log"
    needs_meta = True

    def make_meta(self):
        return []

    def touch(self, tags, states, way, meta):
        meta.append(way)
        return way, meta

    def insert(self, tags, states, tag, state, assoc, meta):
        victim = None
        if len(tags) >= assoc:
            victim = (tags.pop(), states.pop())
        tags.insert(0, tag)
        states.insert(0, state)
        meta.append(-1)
        return victim, meta


class TestPerSetMetadata:
    def make_logging_directory(self):
        config = CacheNodeConfig(size=8 * 128, assoc=2, line_size=128)
        return TagStateDirectory(config, policy=MutableMetaPolicy())

    def test_meta_instances_distinct_per_set(self):
        directory = self.make_logging_directory()
        metas = directory._meta
        assert len({id(meta) for meta in metas}) == len(metas)

    def test_mutating_one_set_does_not_leak(self):
        directory = self.make_logging_directory()
        set_index, tag, _ = directory.probe(0)
        directory.install(set_index, tag, 1)
        _, _, way = directory.probe(0)
        directory.touch(set_index, way)
        assert directory._meta[set_index] == [-1, way]
        for other, meta in enumerate(directory._meta):
            if other != set_index:
                assert meta == []

    def test_clear_rebuilds_distinct_meta(self):
        directory = self.make_logging_directory()
        set_index, tag, _ = directory.probe(0)
        directory.install(set_index, tag, 1)
        directory.clear()
        metas = directory._meta
        assert all(meta == [] for meta in metas)
        assert len({id(meta) for meta in metas}) == len(metas)


class TestWayMapCoherence:
    """The O(1) tag->way map must agree with the tag lists at all times."""

    def assert_map_matches_scan(self, directory):
        directory.check_invariants()
        for set_index, tags in enumerate(directory._tags):
            for tag in tags:
                assert directory._ways[set_index][tag] == tags.index(tag)

    @pytest.mark.parametrize("replacement", ["lru", "fifo", "random", "plru"])
    def test_map_tracks_mixed_traffic(self, replacement):
        import numpy as np

        rng = np.random.default_rng(11)
        directory = make_directory(size=8 * 128, assoc=4, replacement=replacement)
        for step in range(600):
            address = int(rng.integers(0, 96)) * 128
            set_index, tag, way = directory.probe(address)
            roll = rng.random()
            if way < 0:
                directory.install(set_index, tag, int(rng.integers(1, 4)))
            elif roll < 0.7:
                directory.touch(set_index, way)
            else:
                directory.invalidate(set_index, way)
            if step % 50 == 0:
                self.assert_map_matches_scan(directory)
        self.assert_map_matches_scan(directory)

    def test_map_survives_bit_flip(self):
        directory = make_directory(size=4 * 128, assoc=4)
        for i in range(3):
            set_index, tag, _ = directory.probe(i * 128 * directory.config.num_sets)
            directory.install(set_index, tag, 1)
        directory.inject_bit_flip(0, 1, 3)
        self.assert_map_matches_scan(directory)
        # The flipped tag is findable at its corrupted value.
        corrupted = directory._tags[0][1]
        assert directory._ways[0][corrupted] == 1

    def test_map_rebuilt_by_state_roundtrip(self):
        directory = make_directory(size=8 * 128, assoc=2)
        for i in range(10):
            set_index, tag, way = directory.probe(i * 128)
            if way < 0:
                directory.install(set_index, tag, 1)
        fresh = make_directory(size=8 * 128, assoc=2)
        fresh.load_state_dict(directory.state_dict())
        self.assert_map_matches_scan(fresh)
        for i in range(10):
            assert fresh.probe(i * 128) == directory.probe(i * 128)

    def test_check_invariants_detects_stale_map(self):
        from repro.common.errors import EmulationError

        directory = make_directory(size=4 * 128, assoc=2)
        set_index, tag, _ = directory.probe(0)
        directory.install(set_index, tag, 1)
        directory._ways[set_index][tag] = 1  # corrupt: points past the line
        with pytest.raises(EmulationError, match="out of sync"):
            directory.check_invariants()
