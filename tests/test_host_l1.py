"""Tests for the optional L1 front cache."""

import numpy as np
import pytest

from repro.bus.bus import SystemBus
from repro.common.errors import ConfigurationError
from repro.host.cache import MESIState, SnoopingCache
from repro.host.l1 import L1Cache
from repro.host.smp import HostConfig, HostSMP


def make_pair(l1_size=4 * 128, l1_assoc=2, l2_size=4096, bus=None):
    bus = bus if bus is not None else SystemBus()
    l2 = SnoopingCache(cpu_id=0, bus=bus, size=l2_size, assoc=2, line_size=128)
    bus.attach_snooper(l2)
    l1 = L1Cache(l2, size=l1_size, assoc=l1_assoc, line_size=128)
    return l1, l2, bus


class TestFiltering:
    def test_load_hit_skips_l2(self):
        l1, l2, _bus = make_pair()
        l1.access(0x1000, False)
        l2_accesses = l2.stats.accesses
        assert l1.access(0x1000, False) is True
        assert l2.stats.accesses == l2_accesses

    def test_load_miss_fills_l1(self):
        l1, _l2, _bus = make_pair()
        l1.access(0x1000, False)
        assert l1.holds(0x1000)

    def test_writes_always_reach_l2(self):
        l1, l2, _bus = make_pair()
        l1.access(0x1000, False)
        l1.access(0x1000, True)  # store to an L1-resident line
        assert l2.stats.write_accesses == 1
        assert l2.lookup_state(0x1000) is MESIState.MODIFIED

    def test_write_does_not_allocate_l1(self):
        l1, _l2, _bus = make_pair()
        l1.access(0x1000, True)
        assert not l1.holds(0x1000)

    def test_l1_capacity_respected(self):
        l1, _l2, _bus = make_pair(l1_size=2 * 128, l1_assoc=2)
        for i in range(8):
            l1.access(i * 0x1000, False)
        assert l1.resident_lines() <= 2

    def test_hit_ratio_statistics(self):
        l1, _l2, _bus = make_pair()
        l1.access(0x1000, False)
        l1.access(0x1000, False)
        assert l1.stats.accesses == 2
        assert l1.stats.hits == 1
        assert l1.stats.hit_ratio == pytest.approx(0.5)


class TestInclusion:
    def test_l2_eviction_back_invalidates_l1(self):
        # Single-set L2 (2 ways): the third distinct line evicts the first.
        l1, l2, _bus = make_pair(l2_size=2 * 128)
        l1.access(0x0000, False)
        l1.access(0x8000, False)
        l1.access(0x10000, False)  # L2 evicts 0x0000
        assert not l1.holds(0x0000)
        assert l1.stats.inclusion_invalidations == 1

    def test_snoop_invalidation_back_invalidates_l1(self):
        bus = SystemBus()
        l1, l2, _ = make_pair(bus=bus)
        other = SnoopingCache(cpu_id=1, bus=bus, size=4096, assoc=2, line_size=128)
        bus.attach_snooper(other)
        l1.access(0x1000, False)
        other.access(0x1000, True)  # RWITM invalidates our L2 (and L1)
        assert not l1.holds(0x1000)

    def test_l1_never_holds_what_l2_lacks(self):
        rng = np.random.default_rng(3)
        l1, l2, _bus = make_pair(l1_size=4 * 128, l2_size=8 * 128)
        for _ in range(2000):
            l1.access(int(rng.integers(0, 64)) * 128, bool(rng.random() < 0.3))
        for set_tags in l1._tags:
            for tag in set_tags:
                line_address = l1.amap.rebuild(tag, l1._tags.index(set_tags))
        # Structural check: every L1-resident line is L2-resident.
        for set_index, tags in enumerate(l1._tags):
            for tag in tags:
                address = l1.amap.rebuild(tag, set_index)
                assert l2.lookup_state(address) is not MESIState.INVALID


class TestValidation:
    def test_line_size_must_match(self):
        bus = SystemBus()
        l2 = SnoopingCache(cpu_id=0, bus=bus, size=4096, assoc=2, line_size=128)
        with pytest.raises(ConfigurationError):
            L1Cache(l2, size=1024, assoc=2, line_size=256)

    def test_geometry_validated(self):
        bus = SystemBus()
        l2 = SnoopingCache(cpu_id=0, bus=bus, size=4096, assoc=2, line_size=128)
        with pytest.raises(ConfigurationError):
            L1Cache(l2, size=1000, assoc=2, line_size=128)


class TestHostIntegration:
    def test_host_with_l1_filters_l2_traffic(self):
        with_l1 = HostSMP(
            HostConfig(n_cpus=2, l2_size=64 * 1024, l2_assoc=2, l1_size=8 * 1024)
        )
        without_l1 = HostSMP(
            HostConfig(n_cpus=2, l2_size=64 * 1024, l2_assoc=2)
        )
        rng = np.random.default_rng(7)
        n = 20_000
        cpus = rng.integers(0, 2, n)
        addrs = (rng.zipf(1.5, n) * 128) % (1 << 20)
        addrs = (addrs // 128) * 128
        writes = rng.random(n) < 0.2
        with_l1.run_chunk(cpus, addrs, writes)
        without_l1.run_chunk(cpus, addrs, writes)
        l2_refs_with = sum(p.l2.stats.accesses for p in with_l1.processors)
        l2_refs_without = sum(p.l2.stats.accesses for p in without_l1.processors)
        assert l2_refs_with < l2_refs_without

    def test_bus_traffic_identical_castouts(self):
        """Write-through L1 must not change what the bus (and the board)
        sees for the same L2 miss stream... castouts specifically."""
        config = HostConfig(n_cpus=1, l2_size=2 * 128, l2_assoc=2, l1_size=0)
        host = HostSMP(config)
        host.processors[0].reference(0x0000, True)
        host.processors[0].reference(0x8000, False)
        host.processors[0].reference(0x10000, False)
        assert host.bus.stats.castouts == 1
