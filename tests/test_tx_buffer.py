"""Tests for repro.memories.tx_buffer: SDRAM pacing and retry behaviour."""

import pytest

from repro.memories.tx_buffer import (
    NODE_BUFFER_ENTRIES,
    SDRAM_BANDWIDTH_FRACTION,
    TransactionBuffer,
    service_cycles_per_op,
)


class TestServiceModel:
    def test_service_cycles_from_bandwidth(self):
        assert service_cycles_per_op(0.42, 2) == pytest.approx(2 / 0.42)

    def test_full_bandwidth_is_tenure_rate(self):
        assert service_cycles_per_op(1.0, 2) == 2.0

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction_rejected(self, fraction):
        with pytest.raises(ValueError):
            service_cycles_per_op(fraction)


class TestTransactionBuffer:
    def test_accepts_until_capacity(self):
        buffer = TransactionBuffer(capacity=3, service_cycles=1000.0)
        results = [buffer.offer(0.0) for _ in range(4)]
        assert results == [True, True, True, False]
        assert buffer.stats.rejected == 1

    def test_drains_at_service_rate(self):
        buffer = TransactionBuffer(capacity=2, service_cycles=10.0)
        assert buffer.offer(0.0)
        assert buffer.offer(0.0)
        assert not buffer.offer(5.0)     # neither op finished yet
        assert buffer.offer(10.5)        # first op done at t=10
        assert buffer.occupancy(20.5) == 1  # second done at 20, third pending

    def test_sequential_service_not_parallel(self):
        buffer = TransactionBuffer(capacity=10, service_cycles=10.0)
        buffer.offer(0.0)
        buffer.offer(0.0)
        # Second op starts only when the first completes: finishes at 20.
        assert buffer.occupancy(19.0) == 1
        assert buffer.occupancy(20.0) == 0

    def test_high_water_tracked(self):
        buffer = TransactionBuffer(capacity=8, service_cycles=100.0)
        for _ in range(5):
            buffer.offer(0.0)
        assert buffer.stats.high_water == 5

    def test_reset(self):
        buffer = TransactionBuffer(capacity=2, service_cycles=10.0)
        buffer.offer(0.0)
        buffer.reset()
        assert buffer.occupancy(0.0) == 0
        assert buffer.stats.accepted == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TransactionBuffer(capacity=0)


class TestPaperDesignPoint:
    def test_never_rejects_at_20_percent_utilization(self):
        """Section 3.3: months of lab use, never one retry at <= 20% load."""
        buffer = TransactionBuffer(capacity=NODE_BUFFER_ENTRIES)
        cycles_per_tenure = 2.0 / 0.20
        now = 0.0
        for _ in range(50_000):
            now += cycles_per_tenure
            assert buffer.offer(now)
        assert not buffer.stats.ever_rejected

    def test_never_rejects_at_42_percent_utilization(self):
        buffer = TransactionBuffer(capacity=NODE_BUFFER_ENTRIES)
        cycles_per_tenure = 2.0 / SDRAM_BANDWIDTH_FRACTION
        now = 0.0
        for _ in range(50_000):
            now += cycles_per_tenure
            assert buffer.offer(now)

    def test_sustained_overload_eventually_rejects(self):
        buffer = TransactionBuffer(capacity=NODE_BUFFER_ENTRIES)
        cycles_per_tenure = 2.0 / 0.9  # 90% sustained: beyond SDRAM rate
        now = 0.0
        rejected = 0
        for _ in range(20_000):
            now += cycles_per_tenure
            if not buffer.offer(now):
                rejected += 1
        assert rejected > 0

    def test_burst_absorbed_by_deep_buffer(self):
        buffer = TransactionBuffer(capacity=NODE_BUFFER_ENTRIES)
        # A 512-tenure burst at full bus rate fits exactly.
        for i in range(NODE_BUFFER_ENTRIES):
            assert buffer.offer(2.0 * i)


class TestOfferBatch:
    """offer_batch must be exactly offer() per element, only faster."""

    def assert_batch_matches_loop(self, arrivals, capacity=4, service=10.0,
                                  prime=None):
        import numpy as np

        batch = TransactionBuffer(capacity=capacity, service_cycles=service)
        loop = TransactionBuffer(capacity=capacity, service_cycles=service)
        if prime:
            for t in prime:
                batch.offer(t)
                loop.offer(t)
        accepted_batch = batch.offer_batch(np.asarray(arrivals, dtype=np.float64))
        accepted_loop = sum(1 for t in arrivals if loop.offer(t))
        assert accepted_batch == accepted_loop
        assert batch.stats == loop.stats
        assert list(batch._finish_times) == list(loop._finish_times)
        assert batch._last_finish == loop._last_finish

    def test_well_spaced_fast_path(self):
        self.assert_batch_matches_loop([0.0, 15.0, 30.0, 45.0])

    def test_exact_service_spacing_is_fast_path(self):
        # arrival[i-1] + service == arrival[i]: the previous op has just
        # finished (finish <= now drains), so depth stays at one.
        self.assert_batch_matches_loop([0.0, 10.0, 20.0, 30.0])

    def test_tight_spacing_falls_back(self):
        self.assert_batch_matches_loop([0.0, 1.0, 2.0, 3.0, 50.0, 51.0])

    def test_overflow_rejections_match(self):
        arrivals = [0.0] * 7  # burst: fills capacity 4, rejects 3
        self.assert_batch_matches_loop(arrivals)

    def test_busy_queue_falls_back(self):
        self.assert_batch_matches_loop(
            [5.0, 20.0, 35.0], prime=[0.0, 0.0, 0.0]
        )

    def test_drained_queue_uses_fast_path(self):
        self.assert_batch_matches_loop([100.0, 115.0], prime=[0.0])

    def test_empty_batch(self):
        import numpy as np

        buffer = TransactionBuffer(capacity=2, service_cycles=10.0)
        assert buffer.offer_batch(np.zeros(0)) == 0
        assert buffer.stats.accepted == 0

    def test_high_water_floor_on_fast_path(self):
        import numpy as np

        buffer = TransactionBuffer(capacity=4, service_cycles=1.0)
        buffer.offer_batch(np.asarray([0.0, 5.0, 10.0]))
        assert buffer.stats.high_water == 1
        assert buffer.stats.accepted == 3
