"""Tests for the interposer card (foreign-bus protocol conversion)."""

import pytest

from repro.bus.interposer import (
    CommandMap,
    ForeignCommand,
    InterposerCard,
    x86_command_map,
)
from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.errors import ConfigurationError, TraceFormatError
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.target.configs import single_node_machine

CFG = CacheNodeConfig(size=16 * 1024, assoc=4, line_size=128)


def make_card(**kwargs):
    board = board_for_machine(single_node_machine(CFG, n_cpus=4))
    return InterposerCard(board, **kwargs), board


class TestCommandMap:
    def test_builtin_covers_all_commands(self):
        x86 = x86_command_map()
        for command in ForeignCommand:
            x86.translate(command)  # must not raise

    @pytest.mark.parametrize(
        "foreign,native",
        [
            (ForeignCommand.BRL, BusCommand.READ),
            (ForeignCommand.BRIL, BusCommand.RWITM),
            (ForeignCommand.BWL, BusCommand.CASTOUT),
            (ForeignCommand.BIL, BusCommand.DCLAIM),
            (ForeignCommand.IO_IN, BusCommand.IO_READ),
            (ForeignCommand.INT_ACK, BusCommand.INTERRUPT),
        ],
    )
    def test_x86_translations(self, foreign, native):
        assert x86_command_map().translate(foreign) is native

    def test_incomplete_map_rejected(self):
        with pytest.raises(ConfigurationError, match="does not translate"):
            CommandMap("partial", {ForeignCommand.BRL: BusCommand.READ})

    def test_map_file_roundtrip(self, tmp_path):
        path = tmp_path / "x86.map.json"
        original = x86_command_map()
        original.save(path)
        restored = CommandMap.load(path)
        for command in ForeignCommand:
            assert restored.translate(command) == original.translate(command)

    def test_none_entries_roundtrip(self, tmp_path):
        entries = {cmd: None for cmd in ForeignCommand}
        entries[ForeignCommand.BRL] = BusCommand.READ
        original = CommandMap("sparse", entries)
        path = tmp_path / "sparse.map.json"
        original.save(path)
        restored = CommandMap.load(path)
        assert restored.translate(ForeignCommand.BWL) is None
        assert restored.translate(ForeignCommand.BRL) is BusCommand.READ

    def test_malformed_file_rejected(self):
        with pytest.raises(TraceFormatError):
            CommandMap.from_map({"name": "x", "entries": {"NOT_A_CMD": "READ"}})


class TestInterposerCard:
    def test_reads_reach_the_emulated_cache(self):
        card, board = make_card()
        card.observe_foreign(0, ForeignCommand.BRL, 0x1000)
        card.observe_foreign(0, ForeignCommand.BRL, 0x1000)
        node = board.firmware.nodes[0]
        assert node.counters.read("local.read") == 2
        assert node.counters.read("hit.read") == 1

    def test_io_converted_then_filtered_by_board(self):
        card, board = make_card()
        card.observe_foreign(0, ForeignCommand.IO_IN, 0xF000)
        assert card.stats.converted == 1
        assert board.address_filter.stats.filtered_io == 1
        assert board.firmware.nodes[0].references() == 0

    def test_dropped_commands_never_reach_board(self):
        entries = {cmd: None for cmd in ForeignCommand}
        card, board = make_card(command_map=CommandMap("droppy", entries))
        card.observe_foreign(0, ForeignCommand.BRL, 0x1000)
        assert card.stats.dropped == 1
        assert board.address_filter.stats.observed == 0

    def test_agent_remapping(self):
        # Foreign agents 8..11 become host CPUs 0..3.
        card, board = make_card(agent_map={8: 0, 9: 1, 10: 2, 11: 3})
        card.observe_foreign(9, ForeignCommand.BRL, 0x1000)
        assert board.firmware.nodes[0].references() == 1
        assert card.stats.remapped_agents == 1

    def test_address_offset(self):
        card, board = make_card(address_offset=0x100000)
        card.observe_foreign(0, ForeignCommand.BRIL, 0x1000)
        from repro.memories.protocol_table import LineState

        node = board.firmware.nodes[0]
        assert node.directory.lookup_state(0x101000) == int(LineState.MODIFIED)

    def test_snoop_response_passes_through(self):
        card, board = make_card()
        card.observe_foreign(
            0, ForeignCommand.BRL, 0x1000, SnoopResponse.MODIFIED
        )
        assert board.firmware.nodes[0].counters.read("satisfied.mod_int") == 1

    def test_snapshot(self):
        card, _board = make_card()
        card.observe_foreign(0, ForeignCommand.BRL, 0x1000)
        card.observe_foreign(0, ForeignCommand.SPECIAL, 0x0)
        snapshot = card.snapshot()
        assert snapshot["interposer.map"] == "x86"
        assert snapshot["interposer.observed"] == 2
        assert snapshot["interposer.converted"] == 2
