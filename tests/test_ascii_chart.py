"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import MARKERS, render_chart, render_sparkline
from repro.analysis.stats import MissCurve


def curve(name, ys, labels=None):
    result = MissCurve(name=name)
    for i, y in enumerate(ys):
        result.add(float(i), y, label=(labels[i] if labels else str(i)))
    return result


class TestRenderChart:
    def test_contains_markers_and_legend(self):
        chart = render_chart([curve("a", [0.9, 0.5]), curve("b", [0.3, 0.2])])
        assert "o = a" in chart
        assert "* = b" in chart
        grid_lines = [line for line in chart.splitlines() if "|" in line]
        assert any("o" in line for line in grid_lines)
        assert any("*" in line for line in grid_lines)

    def test_x_labels_appear(self):
        chart = render_chart([curve("a", [0.9, 0.5], labels=["16MB", "1GB"])])
        assert "16MB" in chart and "1GB" in chart

    def test_y_axis_spans_to_max(self):
        chart = render_chart([curve("a", [0.5, 0.25])], percent=True)
        assert "50.0%" in chart

    def test_higher_values_plot_higher(self):
        chart = render_chart([curve("a", [1.0, 0.0])], width=20, height=10)
        lines = [line for line in chart.splitlines() if "|" in line]
        first_marker_row = next(i for i, row in enumerate(lines) if "o" in row)
        last_marker_row = max(i for i, row in enumerate(lines) if "o" in row)
        assert first_marker_row == 0          # the 1.0 point at the top
        assert last_marker_row == len(lines) - 1  # the 0.0 point at the bottom

    def test_mismatched_curves_rejected(self):
        with pytest.raises(ValueError):
            render_chart([curve("a", [0.1, 0.2]), curve("b", [0.1])])

    def test_too_many_curves_rejected(self):
        curves = [curve(str(i), [0.1, 0.2]) for i in range(len(MARKERS) + 1)]
        with pytest.raises(ValueError):
            render_chart(curves)

    def test_empty_inputs(self):
        assert render_chart([], title="t") == "t"
        assert render_chart([MissCurve("empty")], title="t") == "t"

    def test_single_point(self):
        chart = render_chart([curve("a", [0.4])])
        assert "o" in chart


class TestSparkline:
    def test_peaks_get_top_ramp_char(self):
        line = render_sparkline([0.0, 1.0, 0.0])
        assert line[1] == "@"

    def test_zero_series(self):
        assert render_sparkline([0.0, 0.0]) == "  "

    def test_downsampling(self):
        line = render_sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_empty(self):
        assert render_sparkline([]) == ""
