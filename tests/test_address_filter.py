"""Tests for repro.memories.address_filter: the first pipeline FPGA."""

import pytest

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.address_filter import AddressFilter


class TestFiltering:
    @pytest.mark.parametrize(
        "command",
        [BusCommand.READ, BusCommand.RWITM, BusCommand.DCLAIM, BusCommand.CASTOUT],
    )
    def test_memory_commands_admitted(self, command):
        filter_ = AddressFilter()
        assert filter_.admit(command, SnoopResponse.NULL, 0.0)
        assert filter_.stats.forwarded == 1

    @pytest.mark.parametrize(
        "command,field",
        [
            (BusCommand.IO_READ, "filtered_io"),
            (BusCommand.IO_WRITE, "filtered_io"),
            (BusCommand.INTERRUPT, "filtered_interrupts"),
            (BusCommand.SYNC, "filtered_sync"),
        ],
    )
    def test_non_memory_filtered(self, command, field):
        filter_ = AddressFilter()
        assert not filter_.admit(command, SnoopResponse.NULL, 0.0)
        assert getattr(filter_.stats, field) == 1
        assert filter_.stats.forwarded == 0

    def test_retried_tenures_filtered(self):
        filter_ = AddressFilter()
        assert not filter_.admit(BusCommand.READ, SnoopResponse.RETRY, 0.0)
        assert filter_.stats.filtered_retried == 1

    def test_filtered_ops_take_no_buffer_space(self):
        """Section 3.3: filtered operations do not occupy buffer entries."""
        filter_ = AddressFilter()
        for _ in range(1000):
            filter_.admit(BusCommand.IO_READ, SnoopResponse.NULL, 0.0)
        assert filter_.buffer.stats.accepted == 0

    def test_observed_counts_everything(self):
        filter_ = AddressFilter()
        filter_.admit(BusCommand.READ, SnoopResponse.NULL, 0.0)
        filter_.admit(BusCommand.IO_READ, SnoopResponse.NULL, 1.0)
        assert filter_.stats.observed == 2

    def test_snapshot_keys(self):
        filter_ = AddressFilter()
        filter_.admit(BusCommand.READ, SnoopResponse.NULL, 0.0)
        snapshot = filter_.stats.snapshot()
        assert snapshot["filter.observed"] == 1
        assert snapshot["filter.forwarded"] == 1

    def test_reset(self):
        filter_ = AddressFilter()
        filter_.admit(BusCommand.READ, SnoopResponse.NULL, 0.0)
        filter_.reset()
        assert filter_.stats.observed == 0
