"""Shape tests for the Section 2.3 firmware studies."""

import pytest

from repro.experiments.firmware_studies import (
    FirmwareStudySettings,
    hotspot_study,
    numa_directory_study,
    remote_cache_study,
    tracer_continuity_study,
)
from repro.experiments.params import ExperimentScale

TINY = FirmwareStudySettings(scale=ExperimentScale(scale=2048), records=40_000)


class TestHotspotStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return hotspot_study(TINY)

    def test_write_heat_lands_on_private_scratch(self, result):
        assert result.data["writes_private"] >= 6

    def test_read_heat_lands_on_common_set(self, result):
        assert result.data["reads_common"] >= 5


class TestTracerContinuity:
    @pytest.fixture(scope="class")
    def result(self):
        return tracer_continuity_study(TINY)

    def test_board_sees_every_burst(self, result):
        assert result.data["board_bursts"] >= 2

    def test_analyzer_misses_bursts(self, result):
        assert result.data["analyzer_bursts"] < result.data["board_bursts"]

    def test_analyzer_coverage_is_partial(self, result):
        assert 0.0 < result.data["coverage"] < 0.5


class TestNumaDirectoryStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return numa_directory_study(TINY, entry_counts=(256, 4096))

    def test_more_entries_fewer_evictions(self, result):
        assert result.data[4096]["evictions"] < result.data[256]["evictions"]

    def test_evictions_inflate_miss_ratio(self, result):
        assert result.data[256]["miss_ratio"] > result.data[4096]["miss_ratio"]


class TestRemoteCacheStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return remote_cache_study(TINY, sizes=("8MB", "128MB"))

    def test_bigger_remote_cache_absorbs_more(self, result):
        assert result.data["128MB"] > result.data["8MB"]

    def test_hit_ratios_are_fractions(self, result):
        for value in result.data.values():
            assert 0.0 <= value <= 1.0
