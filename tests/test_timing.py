"""Tests for the Table 3 / Table 4 analytic runtime models."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.timing import (
    augmint_runtime_seconds,
    csim_runtime_seconds,
    fft_host_runtime_seconds,
    fft_reference_count,
    fft_work_units,
    memories_runtime_seconds,
    speedup_memories_vs_augmint,
    speedup_memories_vs_csim,
)


class TestTable3Anchors:
    """The model must reproduce the paper's Table 3 entries."""

    @pytest.mark.parametrize(
        "refs,paper_seconds,tolerance",
        [
            (32_768, 0.00328, 0.01),
            (262_144, 0.02621, 0.01),
            (10_000_000, 1.0, 0.01),
            (10_000_000_000, 16.67 * 60, 0.01),
        ],
    )
    def test_memories_column(self, refs, paper_seconds, tolerance):
        assert memories_runtime_seconds(refs) == pytest.approx(
            paper_seconds, rel=tolerance
        )

    @pytest.mark.parametrize(
        "refs,paper_seconds,tolerance",
        [
            (32_768, 1.0, 0.05),
            (262_144, 8.0, 0.05),
            (10_000_000, 5 * 60, 0.05),
            (10_000_000_000, 3 * 86400, 0.25),  # "approx 3 days"
        ],
    )
    def test_csim_column(self, refs, paper_seconds, tolerance):
        assert csim_runtime_seconds(refs) == pytest.approx(
            paper_seconds, rel=tolerance
        )

    def test_speedup_grows_is_constant_ratio(self):
        assert speedup_memories_vs_csim(10_000_000) == pytest.approx(
            speedup_memories_vs_csim(32_768), rel=0.01
        )
        assert speedup_memories_vs_csim(10_000_000) > 100


class TestTable4Anchors:
    @pytest.mark.parametrize(
        "m,paper_seconds,tolerance",
        [
            (20, 47 * 60, 0.1),
            (22, 3.2 * 3600, 0.15),
            (24, 13 * 3600, 0.2),
        ],
    )
    def test_augmint_column(self, m, paper_seconds, tolerance):
        assert augmint_runtime_seconds(m) == pytest.approx(
            paper_seconds, rel=tolerance
        )

    def test_augmint_m26_exceeds_two_days(self):
        assert augmint_runtime_seconds(26) > 2 * 86400

    @pytest.mark.parametrize(
        "m,paper_seconds,tolerance",
        [(20, 3, 0.15), (22, 13, 0.15), (24, 53, 0.2), (26, 196, 0.3)],
    )
    def test_host_column(self, m, paper_seconds, tolerance):
        assert fft_host_runtime_seconds(m) == pytest.approx(
            paper_seconds, rel=tolerance
        )

    def test_slowdown_in_paper_range(self):
        """Paper cites 94-221x multiprocessor slowdowns for execution-driven
        simulators; Augmint's (including the host-speed gap) is larger."""
        for m in (20, 22, 24, 26):
            assert 300 < speedup_memories_vs_augmint(m) < 3000


class TestModels:
    def test_fft_work_superlinear(self):
        assert fft_work_units(21) > 2 * fft_work_units(20)

    def test_fft_reference_count_proportional_to_work(self):
        ratio = fft_reference_count(22) / fft_reference_count(20)
        assert ratio == pytest.approx(fft_work_units(22) / fft_work_units(20))

    def test_memories_runtime_scales_inversely_with_utilization(self):
        slow = memories_runtime_seconds(1_000_000, utilization=0.1)
        fast = memories_runtime_seconds(1_000_000, utilization=0.2)
        assert slow == pytest.approx(2 * fast)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            memories_runtime_seconds(1000, utilization=0.0)

    def test_invalid_fft_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            fft_work_units(0)
