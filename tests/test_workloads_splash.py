"""Tests for the SPLASH2 kernel generators."""

import numpy as np
import pytest

from repro.workloads.base import LINE
from repro.workloads.splash import (
    ALL_KERNELS,
    BarnesWorkload,
    FftWorkload,
    FmmWorkload,
    OceanWorkload,
    WaterWorkload,
)


def collect(workload, n=20_000):
    chunks = list(workload.chunks(n))
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]),
    )


class TestFootprints:
    """Table 5 footprints, reconstructed from generator geometry."""

    @pytest.mark.parametrize(
        "cls,paper_gb,tolerance",
        [
            (FmmWorkload, 8.34, 0.2),
            (FftWorkload, 12.58, 0.1),
            (OceanWorkload, 14.5, 0.15),
            (WaterWorkload, 1.38, 0.1),
            (BarnesWorkload, 3.1, 0.25),
        ],
    )
    def test_paper_scale_footprint(self, cls, paper_gb, tolerance):
        scale = 1024
        workload = cls.paper_scale(scale)
        footprint_gb = workload.geometry.total_bytes * scale / (1 << 30)
        assert footprint_gb == pytest.approx(paper_gb, rel=tolerance)

    @pytest.mark.parametrize("name,cls", list(ALL_KERNELS.items()))
    def test_splash2_smaller_than_paper(self, name, cls):
        small = cls.splash2_scale(8)
        large = cls.paper_scale(8)
        assert small.geometry.total_bytes < large.geometry.total_bytes


class TestAddressBounds:
    @pytest.mark.parametrize("name,cls", list(ALL_KERNELS.items()))
    def test_addresses_within_footprint(self, name, cls):
        workload = cls.paper_scale(2048, seed=4)
        _c, addrs, _w = collect(workload, 10_000)
        assert addrs.min() >= 0
        assert addrs.max() < workload.geometry.total_bytes

    @pytest.mark.parametrize("name,cls", list(ALL_KERNELS.items()))
    def test_line_alignment(self, name, cls):
        workload = cls.paper_scale(2048, seed=4)
        _c, addrs, _w = collect(workload, 5_000)
        assert (addrs % LINE == 0).all()

    @pytest.mark.parametrize("name,cls", list(ALL_KERNELS.items()))
    def test_deterministic(self, name, cls):
        a = collect(cls.paper_scale(2048, seed=6), 5_000)
        b = collect(cls.paper_scale(2048, seed=6), 5_000)
        assert (a[1] == b[1]).all() and (a[2] == b[2]).all()


class TestSharingStructure:
    def test_fmm_has_more_shared_writes_than_fft(self):
        """The structural property behind Figure 12's intervention ordering."""

        def shared_write_fraction(workload):
            cpus, addrs, writes = collect(workload, 30_000)
            shared_base = workload.geometry.shared_base
            shared = addrs >= shared_base
            if workload.geometry.shared_bytes == 0:
                shared = np.zeros_like(shared)
            return (shared & writes).mean()

        fmm = FmmWorkload.paper_scale(2048, seed=7)
        fft = FftWorkload.paper_scale(2048, seed=7)
        assert shared_write_fraction(fmm) > 0.05
        assert shared_write_fraction(fmm) > shared_write_fraction(fft)

    def test_fft_transpose_reads_peer_partitions(self):
        workload = FftWorkload(n_points=1 << 14, n_cpus=4, seed=8)
        cpus, addrs, writes = collect(workload, 20_000)
        partition = workload.geometry.partition_bytes
        owners = addrs // partition
        foreign_reads = ((owners != cpus) & ~writes).mean()
        assert foreign_reads > 0.02

    def test_ocean_boundary_reads_are_reads(self):
        workload = OceanWorkload(grid_n=128, n_cpus=4, boundary_fraction=0.5, seed=9)
        cpus, addrs, writes = collect(workload, 10_000)
        partition = workload.geometry.partition_bytes
        foreign = (addrs // partition) != cpus
        assert foreign.any()
        assert not writes[foreign].any()

    def test_water_neighbour_reads_adjacent_partitions(self):
        workload = WaterWorkload(
            n_molecules=20_000, n_cpus=4, neighbour_fraction=0.5, seed=10
        )
        cpus, addrs, _w = collect(workload, 10_000)
        partition = workload.geometry.partition_bytes
        owners = addrs // partition
        foreign = owners != cpus
        assert foreign.mean() == pytest.approx(0.5, abs=0.05)
        gaps = (owners[foreign] - cpus[foreign]) % 4
        assert set(np.unique(gaps)).issubset({1, 3})  # only +-1 neighbours

    def test_barnes_rebuild_phase_writes_tree(self):
        workload = BarnesWorkload(
            n_bodies=1 << 14, n_cpus=2, rebuild_fraction=0.2, seed=11
        )
        _c, addrs, writes = collect(workload, 20_000)
        shared = addrs >= workload.geometry.shared_base
        assert writes[shared].mean() > 0.2  # rebuild + steady tree writes


class TestFftRowStructure:
    def test_row_passes_create_reuse(self):
        flat = FftWorkload(n_points=1 << 14, n_cpus=1, local_fraction=1.0, seed=12)
        rowed = FftWorkload(
            n_points=1 << 14,
            n_cpus=1,
            local_fraction=1.0,
            row_bytes=8 * LINE,
            row_passes=8,
            seed=12,
        )
        _c, flat_addrs, _w = collect(flat, 8_000)
        _c, row_addrs, _w = collect(rowed, 8_000)
        assert np.unique(row_addrs).size < np.unique(flat_addrs).size / 2

    def test_scatter_transpose_randomises_peer_lines(self):
        workload = FftWorkload(
            n_points=1 << 14,
            n_cpus=4,
            local_fraction=0.0,
            transpose_scatter=True,
            seed=13,
        )
        _c, addrs, writes = collect(workload, 4_000)
        reads = addrs[~writes]
        deltas = np.diff(np.sort(reads % workload.geometry.partition_bytes))
        assert (deltas == LINE).mean() < 0.9  # not a dense sequential run
