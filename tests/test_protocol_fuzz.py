"""Property-based fuzzing of user-supplied protocol tables.

Section 3.2 lets users load arbitrary state tables into the node
controllers.  These tests generate random *well-formed* tables (closed, and
respecting the two axioms any invalidation-based protocol satisfies:
remote writes invalidate, local writes produce a dirty state) and drive
random multi-node traffic through them, checking that the emulator never
crashes, directory invariants hold, and the emulated caches preserve SWMR.
"""

from hypothesis import given, settings, strategies as st

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.config import CacheNodeConfig
from repro.memories.node_controller import NodeController
from repro.memories.protocol_table import (
    CacheOp,
    FillRules,
    LineState,
    ProtocolTable,
    Transition,
)

VALID_STATES = (
    LineState.SHARED,
    LineState.EXCLUSIVE,
    LineState.MODIFIED,
    LineState.OWNED,
)


@st.composite
def protocol_tables(draw, coherent: bool = False):
    """A random closed protocol table.

    With ``coherent=False`` only the structural axioms hold (remote writes
    invalidate, local writes dirty) — enough that the emulator must not
    crash, but the table may be semantically absurd (e.g. a read fill that
    claims Modified).  With ``coherent=True`` the table also satisfies the
    axioms every real invalidation protocol does, which is what makes the
    SWMR property provable:

    * local reads never upgrade a state (same state or demote to Shared);
    * read fills are clean, and shared fills are never Exclusive.
    """
    n_states = draw(st.integers(2, 4))
    states = tuple(VALID_STATES[:n_states])
    if LineState.MODIFIED not in states:
        states = states + (LineState.MODIFIED,)

    transitions = {}
    for op in CacheOp:
        for state in states:
            if op is CacheOp.REMOTE_WRITE:
                next_state = LineState.INVALID  # axiom: writes invalidate
                is_hit = state.is_dirty
            elif op is CacheOp.LOCAL_WRITE or op is CacheOp.LOCAL_CASTOUT:
                next_state = LineState.MODIFIED  # axiom: writes dirty
                is_hit = True
            elif op is CacheOp.REMOTE_READ:
                # Remote reads may demote to a shareable state or die.
                next_state = draw(
                    st.sampled_from(
                        [LineState.INVALID]
                        + [
                            s
                            for s in states
                            if s in (LineState.SHARED, LineState.OWNED)
                        ]
                    )
                )
                is_hit = state.is_dirty
            else:  # LOCAL_READ
                if coherent:
                    next_state = draw(
                        st.sampled_from([state, LineState.SHARED])
                    )
                else:
                    next_state = draw(st.sampled_from(list(states)))
                is_hit = True
            transitions[(op, state)] = Transition(next_state, is_hit)

    clean_states = [s for s in states if not s.is_dirty]
    if coherent:
        read_shared = LineState.SHARED
        read_alone = draw(st.sampled_from(clean_states))
    else:
        read_shared = draw(
            st.sampled_from([s for s in states if s is not LineState.EXCLUSIVE])
        )
        read_alone = draw(st.sampled_from(list(states)))
    fill = FillRules(
        read_shared=read_shared,
        read_alone=read_alone,
        write=LineState.MODIFIED,
    )
    return ProtocolTable("fuzzed", states, transitions, fill)


traffic = st.lists(
    st.tuples(
        st.integers(0, 3),                      # cpu
        st.integers(0, 15),                     # line
        st.sampled_from(
            [BusCommand.READ, BusCommand.RWITM, BusCommand.DCLAIM, BusCommand.CASTOUT]
        ),
    ),
    min_size=1,
    max_size=120,
)


def build_nodes(table):
    config = CacheNodeConfig(
        size=4 * 128, assoc=2, line_size=128, protocol="mesi"
    )
    node_a = NodeController(0, config, cpus=(0, 1), protocol=table)
    node_b = NodeController(1, config, cpus=(2, 3), protocol=table)
    return node_a, node_b


@given(table=protocol_tables(), ops=traffic)
@settings(max_examples=80, deadline=None)
def test_fuzzed_protocols_never_break_the_emulator(table, ops):
    node_a, node_b = build_nodes(table)
    nodes = {0: node_a, 1: node_a, 2: node_b, 3: node_b}
    peers = {0: (node_b,), 1: (node_b,), 2: (node_a,), 3: (node_a,)}
    for cpu, line, command in ops:
        nodes[cpu].process_local(
            command, line * 128, SnoopResponse.NULL, 0.0, peers[cpu]
        )
        node_a.directory.check_invariants()
        node_b.directory.check_invariants()


@given(table=protocol_tables(coherent=True), ops=traffic)
@settings(max_examples=80, deadline=None)
def test_fuzzed_protocols_preserve_swmr(table, ops):
    """With the coherence axioms, no line is ever dirty in both caches.

    The traffic uses only coherent requests (no raw castouts): a castout
    stream that never acquired ownership is impossible on a coherent host,
    and the passive emulator inherits the host's ordering guarantees.
    """
    coherent_commands = (BusCommand.READ, BusCommand.RWITM, BusCommand.DCLAIM)
    node_a, node_b = build_nodes(table)
    nodes = {0: node_a, 1: node_a, 2: node_b, 3: node_b}
    peers = {0: (node_b,), 1: (node_b,), 2: (node_a,), 3: (node_a,)}
    for cpu, line, command in ops:
        if command not in coherent_commands:
            command = BusCommand.RWITM
        nodes[cpu].process_local(
            command, line * 128, SnoopResponse.NULL, 0.0, peers[cpu]
        )
        for probe in range(16):
            address = probe * 128
            state_a = LineState(node_a.directory.lookup_state(address))
            state_b = LineState(node_b.directory.lookup_state(address))
            assert not (state_a.is_dirty and state_b.is_dirty), (
                f"line {address:#x} dirty in both nodes: "
                f"{state_a.name}/{state_b.name} under {table.to_map()}"
            )


@given(table=protocol_tables())
@settings(max_examples=40, deadline=None)
def test_fuzzed_tables_roundtrip_map_files(table):
    restored = ProtocolTable.from_map(table.to_map())
    assert restored.raw_table() == table.raw_table()
    assert restored.fill == table.fill
