"""Property-based fuzzing of user-supplied protocol tables.

Section 3.2 lets users load arbitrary state tables into the node
controllers.  These tests generate random *well-formed* tables (closed, and
respecting the two axioms any invalidation-based protocol satisfies:
remote writes invalidate, local writes produce a dirty state) and drive
random multi-node traffic through them, checking that the emulator never
crashes, directory invariants hold, and the emulated caches preserve SWMR.
"""

from hypothesis import given, settings, strategies as st

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.config import CacheNodeConfig
from repro.memories.node_controller import NodeController
from repro.memories.protocol_table import (
    CacheOp,
    FillRules,
    LineState,
    ProtocolTable,
    Transition,
)

VALID_STATES = (
    LineState.SHARED,
    LineState.EXCLUSIVE,
    LineState.MODIFIED,
    LineState.OWNED,
)


@st.composite
def protocol_tables(draw, coherent: bool = False):
    """A random closed protocol table.

    With ``coherent=False`` only the structural axioms hold (remote writes
    invalidate, local writes dirty) — enough that the emulator must not
    crash, but the table may be semantically absurd (e.g. a read fill that
    claims Modified).  With ``coherent=True`` the table also satisfies the
    axioms every real invalidation protocol does, which is what makes the
    SWMR property provable:

    * local reads never upgrade a state (same state or demote to Shared);
    * read fills are clean, and shared fills are never Exclusive.
    """
    n_states = draw(st.integers(2, 4))
    states = tuple(VALID_STATES[:n_states])
    if LineState.MODIFIED not in states:
        states = states + (LineState.MODIFIED,)

    transitions = {}
    for op in CacheOp:
        for state in states:
            if op is CacheOp.REMOTE_WRITE:
                next_state = LineState.INVALID  # axiom: writes invalidate
                is_hit = state.is_dirty
            elif op is CacheOp.LOCAL_WRITE or op is CacheOp.LOCAL_CASTOUT:
                next_state = LineState.MODIFIED  # axiom: writes dirty
                is_hit = True
            elif op is CacheOp.REMOTE_READ:
                # Remote reads may demote to a shareable state or die.  In a
                # real protocol only a *dirty* copy may demote to Owned; a
                # clean copy answering a remote read stays clean (promoting
                # it would fabricate dirty data — a hole in an earlier
                # version of these axioms that repro.verify's model checker
                # flagged: two clean Shared copies could both be promoted
                # to Owned by successive remote reads).
                candidates = [LineState.INVALID]
                for s in states:
                    if s is LineState.SHARED:
                        candidates.append(s)
                    elif s is LineState.OWNED and (
                        state.is_dirty or not coherent
                    ):
                        candidates.append(s)
                next_state = draw(st.sampled_from(candidates))
                is_hit = state.is_dirty
            else:  # LOCAL_READ
                if coherent:
                    next_state = draw(
                        st.sampled_from([state, LineState.SHARED])
                    )
                else:
                    next_state = draw(st.sampled_from(list(states)))
                is_hit = True
            transitions[(op, state)] = Transition(next_state, is_hit)

    clean_states = [s for s in states if not s.is_dirty]
    if coherent:
        read_shared = LineState.SHARED
        read_alone = draw(st.sampled_from(clean_states))
    else:
        read_shared = draw(
            st.sampled_from([s for s in states if s is not LineState.EXCLUSIVE])
        )
        read_alone = draw(st.sampled_from(list(states)))
    fill = FillRules(
        read_shared=read_shared,
        read_alone=read_alone,
        write=LineState.MODIFIED,
    )
    return ProtocolTable("fuzzed", states, transitions, fill)


traffic = st.lists(
    st.tuples(
        st.integers(0, 3),                      # cpu
        st.integers(0, 15),                     # line
        st.sampled_from(
            [BusCommand.READ, BusCommand.RWITM, BusCommand.DCLAIM, BusCommand.CASTOUT]
        ),
    ),
    min_size=1,
    max_size=120,
)


def build_nodes(table):
    config = CacheNodeConfig(
        size=4 * 128, assoc=2, line_size=128, protocol="mesi"
    )
    node_a = NodeController(0, config, cpus=(0, 1), protocol=table)
    node_b = NodeController(1, config, cpus=(2, 3), protocol=table)
    return node_a, node_b


@given(table=protocol_tables(), ops=traffic)
@settings(max_examples=80, deadline=None)
def test_fuzzed_protocols_never_break_the_emulator(table, ops):
    node_a, node_b = build_nodes(table)
    nodes = {0: node_a, 1: node_a, 2: node_b, 3: node_b}
    peers = {0: (node_b,), 1: (node_b,), 2: (node_a,), 3: (node_a,)}
    for cpu, line, command in ops:
        nodes[cpu].process_local(
            command, line * 128, SnoopResponse.NULL, 0.0, peers[cpu]
        )
        node_a.directory.check_invariants()
        node_b.directory.check_invariants()


@given(table=protocol_tables(coherent=True), ops=traffic)
@settings(max_examples=80, deadline=None)
def test_fuzzed_protocols_preserve_swmr(table, ops):
    """With the coherence axioms, no line is ever dirty in both caches.

    The traffic uses only coherent requests (no raw castouts): a castout
    stream that never acquired ownership is impossible on a coherent host,
    and the passive emulator inherits the host's ordering guarantees.
    """
    coherent_commands = (BusCommand.READ, BusCommand.RWITM, BusCommand.DCLAIM)
    node_a, node_b = build_nodes(table)
    nodes = {0: node_a, 1: node_a, 2: node_b, 3: node_b}
    peers = {0: (node_b,), 1: (node_b,), 2: (node_a,), 3: (node_a,)}
    for cpu, line, command in ops:
        if command not in coherent_commands:
            command = BusCommand.RWITM
        nodes[cpu].process_local(
            command, line * 128, SnoopResponse.NULL, 0.0, peers[cpu]
        )
        for probe in range(16):
            address = probe * 128
            state_a = LineState(node_a.directory.lookup_state(address))
            state_b = LineState(node_b.directory.lookup_state(address))
            assert not (state_a.is_dirty and state_b.is_dirty), (
                f"line {address:#x} dirty in both nodes: "
                f"{state_a.name}/{state_b.name} under {table.to_map()}"
            )


@given(table=protocol_tables())
@settings(max_examples=40, deadline=None)
def test_fuzzed_tables_roundtrip_map_files(table):
    restored = ProtocolTable.from_map(table.to_map())
    assert restored.raw_table() == table.raw_table()
    assert restored.fill == table.fill


# ---------------------------------------------------------------------- #
# Static checker vs the fuzzer and vs mutated shipped tables
# ---------------------------------------------------------------------- #

from repro.memories.protocol_table import load_protocol  # noqa: E402
from repro.verify import check_protocol  # noqa: E402


@given(table=protocol_tables())
@settings(max_examples=60, deadline=None)
def test_checker_never_crashes_on_fuzzed_tables(table):
    """Any closed table gets a report, never an exception."""
    report = check_protocol(table)
    assert report.checks_run


@given(table=protocol_tables(coherent=True))
@settings(max_examples=60, deadline=None)
def test_checker_agrees_with_the_coherence_axioms(table):
    """Tables built under the coherence axioms must model-check SWMR-clean.

    This ties the static model checker to the dynamic fuzz property above:
    the same class of tables that ``test_fuzzed_protocols_preserve_swmr``
    drives traffic through must be certified by exhaustive exploration.
    """
    report = check_protocol(table)
    assert not report.by_check("swmr"), report.render()


def shipped_maps():
    return {name: load_protocol(name).to_map() for name in ("msi", "mesi", "moesi")}


def test_shipped_tables_verify_clean():
    for name, data in shipped_maps().items():
        report = check_protocol(data)
        assert report.ok, f"{name}: {report.render()}"


def test_every_dropped_entry_is_flagged():
    """Deleting any single transition from any shipped table is caught."""
    for name, base in shipped_maps().items():
        for index in range(len(base["transitions"])):
            mutated = {
                **base,
                "transitions": [
                    entry for position, entry in enumerate(base["transitions"])
                    if position != index
                ],
            }
            report = check_protocol(mutated)
            dropped = base["transitions"][index]
            assert not report.ok, (
                f"{name}: dropping ({dropped['op']}, {dropped['state']}) "
                f"went unnoticed"
            )
            assert any(f.check == "completeness" for f in report.errors)


def test_every_next_state_flip_to_dirty_peer_keeper_is_flagged():
    """Making any REMOTE_WRITE keep a dirty copy breaks SWMR with a trace."""
    for name, base in shipped_maps().items():
        for index, entry in enumerate(base["transitions"]):
            if entry["op"] != "REMOTE_WRITE" or entry["state"] not in (
                "MODIFIED", "OWNED", "EXCLUSIVE"
            ):
                continue
            mutated = {
                **base,
                "transitions": [dict(e) for e in base["transitions"]],
            }
            mutated["transitions"][index]["next"] = "MODIFIED"
            report = check_protocol(mutated)
            swmr = report.by_check("swmr")
            assert swmr, (
                f"{name}: (REMOTE_WRITE, {entry['state']}) -> MODIFIED "
                f"not flagged:\n{report.render()}"
            )
            assert swmr[0].trace[0].startswith("power-up")


def test_swmr_break_via_shared_write_keep():
    """A write hit on SHARED that fails to invalidate peers is caught."""
    base = load_protocol("msi").to_map()
    for entry in base["transitions"]:
        if entry["op"] == "REMOTE_WRITE" and entry["state"] == "SHARED":
            entry["next"] = "SHARED"
    report = check_protocol(base)
    assert not report.ok
    assert report.by_check("swmr"), report.render()
