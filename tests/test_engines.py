"""Tests for the engine registry and the static capability prover.

Engine selection is the registry's job alone: the prover inspects a
programmed board (never runs it), each engine declares the capabilities
its bit-identity proof requires, and every rejection is an auditable
report naming the missing capability and the concrete reason.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.engines import (
    ENGINES,
    Capability,
    EngineSpec,
    ShardSpec,
    decide,
    decide_all,
    prove_capabilities,
    register_engine,
    select_board_engine,
)
from repro.experiments.pipeline import validate_sharding
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.sdram import SdramModel
from repro.target.configs import multi_config_machine, single_node_machine

from tests.test_batched_replay import machine_for


def default_board(**kwargs):
    return board_for_machine(machine_for("split"), **kwargs)


# ---------------------------------------------------------------------- #
# Capability prover
# ---------------------------------------------------------------------- #

class TestCapabilityProver:
    def test_default_board_grants_everything_with_spec(self):
        proof = prove_capabilities(default_board(), ShardSpec(2))
        assert proof.granted == frozenset(Capability)
        assert not proof.denials and not proof.structural

    def test_without_spec_sharding_is_unprovable_not_assumed(self):
        proof = prove_capabilities(default_board())
        assert not proof.grants(Capability.SHARD_DECOMPOSABLE_SETS)
        assert "shard spec" in proof.reasons(
            Capability.SHARD_DECOMPOSABLE_SETS
        )[0]

    def test_ecc_scrubber_denies_inert_tick(self):
        proof = prove_capabilities(default_board(ecc=True))
        assert not proof.grants(Capability.INERT_BACKGROUND_TICK)
        assert any(
            "scrubber" in reason
            for reason in proof.reasons(Capability.INERT_BACKGROUND_TICK)
        )

    def test_random_replacement_denies_per_set_independence(self):
        board = board_for_machine(machine_for("split", "random"))
        proof = prove_capabilities(board, ShardSpec(2))
        reasons = proof.reasons(Capability.PER_SET_INDEPENDENCE)
        assert any("random" in reason for reason in reasons)

    def test_sdram_denies_per_set_independence(self):
        board = default_board()
        board.firmware.nodes[0].sdram = SdramModel()
        proof = prove_capabilities(board, ShardSpec(2))
        reasons = proof.reasons(Capability.PER_SET_INDEPENDENCE)
        assert any("SDRAM" in reason for reason in reasons)

    def test_slow_buffer_denies_order_freedom(self):
        board = default_board(assumed_utilization=0.9)
        proof = prove_capabilities(board, ShardSpec(2))
        reasons = proof.reasons(Capability.NO_GLOBAL_ORDER_COUPLING)
        assert any("service" in reason for reason in reasons)

    def test_overflowing_shard_field_denied_per_node(self):
        tiny = CacheNodeConfig(size=1024, assoc=4, line_size=128)
        board = board_for_machine(single_node_machine(tiny, 4))
        proof = prove_capabilities(board, ShardSpec(16))
        reasons = proof.reasons(Capability.SHARD_DECOMPOSABLE_SETS)
        assert any("set-index" in reason for reason in reasons)

    def test_shard_shift_clears_widest_line_offset(self):
        coarse = CacheNodeConfig(size=128 * 1024, assoc=4, line_size=256)
        fine = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=64)
        board = board_for_machine(multi_config_machine([coarse, fine], 4))
        proof = prove_capabilities(board, ShardSpec(2))
        assert proof.shard_shift == 8

    def test_non_power_of_two_is_structural_not_capability(self):
        proof = prove_capabilities(default_board(), ShardSpec(3))
        assert any("power of two" in msg for msg in proof.structural)

    def test_capability_names_are_stable_strings(self):
        assert str(Capability.EXACT_FLOAT_CLOCK) == "exact_float_clock"
        assert {str(c) for c in Capability} == {
            "exact_float_clock",
            "inert_background_tick",
            "per_set_independence",
            "no_global_order_coupling",
            "shard_decomposable_sets",
            "deterministic_replacement",
            "dense_protocol_state",
        }

    def test_random_replacement_denies_deterministic_replacement(self):
        board = board_for_machine(machine_for("split", "random"))
        proof = prove_capabilities(board)
        reasons = proof.reasons(Capability.DETERMINISTIC_REPLACEMENT)
        assert any("random" in reason for reason in reasons)

    def test_unknown_policy_denies_deterministic_replacement(self):
        board = default_board()

        class WeirdPolicy:
            pass

        board.firmware.nodes[0].directory.policy = WeirdPolicy()
        proof = prove_capabilities(board)
        reasons = proof.reasons(Capability.DETERMINISTIC_REPLACEMENT)
        assert any("WeirdPolicy" in reason for reason in reasons)

    def test_ecc_denies_dense_protocol_state(self):
        proof = prove_capabilities(default_board(ecc=True))
        reasons = proof.reasons(Capability.DENSE_PROTOCOL_STATE)
        assert any("ECC" in reason for reason in reasons)

    def test_sdram_denies_dense_protocol_state(self):
        board = default_board()
        board.firmware.nodes[0].sdram = SdramModel()
        proof = prove_capabilities(board)
        reasons = proof.reasons(Capability.DENSE_PROTOCOL_STATE)
        assert any("SDRAM" in reason for reason in reasons)


# ---------------------------------------------------------------------- #
# Shard spec structure
# ---------------------------------------------------------------------- #

class TestShardSpec:
    @pytest.mark.parametrize("shards,bits", [(1, 0), (2, 1), (4, 2), (8, 3)])
    def test_shard_bits(self, shards, bits):
        assert ShardSpec(shards).shard_bits == bits

    @pytest.mark.parametrize("shards", [0, -1, 3, 6, 12])
    def test_invalid_counts_are_structural_errors(self, shards):
        assert ShardSpec(shards).structural_errors()

    @pytest.mark.parametrize("shards", [1, 2, 4, 32])
    def test_powers_of_two_are_valid(self, shards):
        assert not ShardSpec(shards).structural_errors()


# ---------------------------------------------------------------------- #
# Registry and decisions
# ---------------------------------------------------------------------- #

class TestRegistry:
    def test_builtin_engines_registered_in_rank_order(self):
        assert list(ENGINES) == ["scalar", "batched", "compiled", "sharded"]
        assert ENGINES["scalar"].rank < ENGINES["batched"].rank
        assert ENGINES["batched"].rank < ENGINES["compiled"].rank
        assert ENGINES["scalar"].requires == frozenset()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine(
                EngineSpec(
                    name="scalar",
                    description="imposter",
                    requires=frozenset(),
                    rank=0,
                )
            )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            decide("warp", board=default_board())

    def test_decide_needs_a_subject(self):
        with pytest.raises(ConfigurationError, match="board or a machine"):
            decide("scalar")

    def test_decide_accepts_machine_directly(self):
        decision = decide("batched", machine=machine_for("split"))
        assert decision.eligible


class TestDecisions:
    def test_scalar_is_always_eligible(self):
        board = board_for_machine(machine_for("split", "random"), ecc=True)
        assert decide("scalar", board=board).eligible

    def test_rejection_report_names_capability_and_reason(self):
        decision = decide("batched", board=default_board(ecc=True))
        assert not decision.eligible
        assert decision.missing == {Capability.INERT_BACKGROUND_TICK}
        (finding,) = decision.report.errors
        assert finding.rule == "EN301"
        assert finding.location == "capability inert_background_tick"
        assert "scrubber" in finding.message
        assert decision.reason() == finding.message

    def test_granted_capabilities_documented_as_info(self):
        decision = decide("sharded", board=default_board(), shards=2)
        assert decision.eligible
        granted = [
            f.message for f in decision.report.findings
            if f.rule == "EN301" and "granted" in f.message
        ]
        assert len(granted) == len(ENGINES["sharded"].requires)

    def test_structural_shard_error_rejects_with_en302(self):
        decision = decide("sharded", board=default_board(), shards=3)
        assert not decision.eligible
        assert any(f.rule == "EN302" for f in decision.report.errors)
        assert "power of two" in decision.reason()

    def test_compiled_rejection_names_dense_state(self):
        board = default_board()
        board.firmware.nodes[0].sdram = SdramModel()
        decision = decide("compiled", board=board)
        assert not decision.eligible
        assert Capability.DENSE_PROTOCOL_STATE in decision.missing
        assert any("SDRAM" in f.message for f in decision.report.errors)

    def test_compiled_rejection_names_replacement(self):
        decision = decide(
            "compiled", machine=machine_for("split", "random")
        )
        assert not decision.eligible
        assert Capability.DETERMINISTIC_REPLACEMENT in decision.missing

    def test_decide_all_covers_every_engine(self):
        decisions = decide_all(board=default_board(), shards=2)
        assert [d.spec.name for d in decisions] == list(ENGINES)
        assert all(d.eligible for d in decisions)

    def test_decision_reports_audit_both_checks(self):
        decision = decide("batched", board=default_board())
        assert set(decision.report.checks_run) == {
            "missing-capability", "shard-spec",
        }


# ---------------------------------------------------------------------- #
# Board-scope selection
# ---------------------------------------------------------------------- #

class TestSelectBoardEngine:
    def test_prefers_compiled_when_eligible(self):
        assert select_board_engine(default_board()).name == "compiled"

    def test_random_replacement_demotes_to_batched(self):
        board = board_for_machine(machine_for("split", "random"))
        assert select_board_engine(board).name == "batched"

    def test_sdram_node_demotes_to_batched(self):
        board = default_board()
        board.firmware.nodes[0].sdram = SdramModel()
        assert select_board_engine(board).name == "batched"

    def test_falls_back_to_scalar_on_denial(self):
        assert select_board_engine(default_board(ecc=True)).name == "scalar"

    def test_preference_flag_forces_scalar(self):
        board = default_board()
        board.batched_replay = False
        assert select_board_engine(board).name == "scalar"

    def test_selected_engine_replays(self):
        from tests.test_batched_replay import full_mix_words

        board = default_board()
        spec = select_board_engine(board)
        words = full_mix_words(500, seed=11)
        assert spec.replay(board, words) == len(words)

    def test_trace_scope_engines_never_selected(self):
        assert select_board_engine(default_board()).scope == "board"


# ---------------------------------------------------------------------- #
# Pipeline delegation
# ---------------------------------------------------------------------- #

class TestValidateShardingDelegation:
    def test_returns_prover_shard_shift(self):
        machine = machine_for("single")
        decision = decide("sharded", machine=machine, shards=2)
        assert validate_sharding(machine, 2) == decision.shard_shift

    def test_raises_with_decision_reason(self):
        machine = machine_for("split", "random")
        decision = decide("sharded", machine=machine, shards=2)
        with pytest.raises(ConfigurationError) as excinfo:
            validate_sharding(machine, 2)
        assert str(excinfo.value) == decision.reason()
