"""Tests for the determinism analyzer and its reporting pipeline.

Covers the rule registry, the DT2xx rules firing (and staying quiet) on
seeded snippets, inline suppression parsing, lint profiles, severity
ordering, baseline round-trips and the JSON/SARIF output schemas.
"""

import json

import pytest

from repro.common.errors import ValidationError
from repro.verify import (
    PROFILES,
    RULES,
    apply_baseline,
    check_repo,
    load_baseline,
    render_sarif,
    resolve_rule,
    stale_fingerprints,
    to_sarif,
    write_baseline,
)
from repro.verify.findings import Finding, Report, Severity
from repro.verify.rules import RULE_OF_CHECK


def lint_source(tmp_path, source, profile="library", name="case.py"):
    (tmp_path / name).write_text(source, encoding="utf-8")
    return check_repo(tmp_path, profile=profile)


def fired_rules(report):
    return {f.rule for f in report.errors}


# ---------------------------------------------------------------------- #
# Rule registry
# ---------------------------------------------------------------------- #

class TestRuleRegistry:
    def test_check_slugs_are_unique(self):
        slugs = [info.check for info in RULES.values()]
        assert len(slugs) == len(set(slugs))

    def test_resolve_by_id_and_slug(self):
        assert resolve_rule("DT204") == "DT204"
        assert resolve_rule("hash-order-dependence") == "DT204"
        assert resolve_rule("call-replication") == "RP105"
        assert resolve_rule("nonsense") is None

    def test_rule_ids_follow_family_prefixes(self):
        for rule in RULES:
            assert rule[:2] in ("RP", "DT", "EN") and rule[2:].isdigit()

    def test_every_profile_check_has_a_rule(self):
        for profile in PROFILES.values():
            for check in profile:
                assert check in RULE_OF_CHECK


# ---------------------------------------------------------------------- #
# DT2xx rules fire on defects, stay quiet on the deterministic spelling
# ---------------------------------------------------------------------- #

DEFECTS = [
    ("DT201",
     "def to_dict(items):\n"
     "    return {k: 1 for k in set(items)}\n"),
    ("DT202",
     "import time\n\n"
     "def tick():\n"
     "    return time.monotonic_ns()\n"),
    ("DT203",
     "import uuid\n\n"
     "def run_id():\n"
     "    return uuid.uuid4().hex\n"),
    ("DT204",
     "def salt(key):\n"
     "    return hash(key)\n"),
    ("DT205",
     "import math\n\n"
     "def total(values):\n"
     "    return math.fsum(set(values))\n"),
    ("DT206",
     "def fan_out(pool, chunks):\n"
     "    return pool.submit(lambda c: c.sum(), chunks[0])\n"),
]

CLEAN = [
    ("DT201",
     "def to_dict(items):\n"
     "    return {k: 1 for k in sorted(set(items))}\n"),
    ("DT202",
     "import time\n\n"
     "def bench():\n"
     "    return time.perf_counter()\n"),
    ("DT203",
     "import numpy as np\n\n"
     "def stream(seed):\n"
     "    return np.random.default_rng(seed)\n"),
    ("DT204",
     "import hashlib\n\n"
     "def salt(key):\n"
     "    return hashlib.sha256(key).hexdigest()\n"),
    ("DT205",
     "def total(values):\n"
     "    return sum(sorted(set(values)))\n"),
    ("DT206",
     "def chunk_sum(c):\n"
     "    return c.sum()\n\n"
     "def fan_out(pool, chunks):\n"
     "    return pool.submit(chunk_sum, chunks[0])\n"),
]


class TestDeterminismRules:
    @pytest.mark.parametrize("rule,source", DEFECTS, ids=[r for r, _ in DEFECTS])
    def test_defect_fires(self, tmp_path, rule, source):
        report = lint_source(tmp_path, source)
        assert rule in fired_rules(report), report.render(verbose=True)

    @pytest.mark.parametrize("rule,source", CLEAN, ids=[r for r, _ in CLEAN])
    def test_clean_spelling_is_quiet(self, tmp_path, rule, source):
        report = lint_source(tmp_path, source)
        assert report.ok and not report.warnings, report.render(verbose=True)

    def test_set_iteration_outside_serializer_is_quiet(self, tmp_path):
        # Name-scoped: set iteration in a non-serialization routine is
        # legitimate (order never leaks into an artifact).
        report = lint_source(
            tmp_path,
            "def union_size(groups):\n"
            "    total = 0\n"
            "    for item in set(groups):\n"
            "        total += 1\n"
            "    return total\n",
        )
        assert "DT201" not in fired_rules(report)

    def test_time_time_stays_rp102_not_dt202(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()\n",
        )
        assert fired_rules(report) == {"RP102"}

    def test_process_target_lambda_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import multiprocessing\n\n"
            "def launch(state):\n"
            "    p = multiprocessing.Process(target=lambda: state.run())\n"
            "    p.start()\n",
        )
        assert "DT206" in fired_rules(report)


# ---------------------------------------------------------------------- #
# Inline suppressions
# ---------------------------------------------------------------------- #

class TestSuppressions:
    def test_bare_ignore_suppresses_everything(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def salt(key):\n"
            "    return hash(key)  # repro: ignore\n",
        )
        assert report.ok

    def test_named_rule_id_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def salt(key):\n"
            "    return hash(key)  # repro: ignore[DT204]\n",
        )
        assert report.ok

    def test_check_slug_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def salt(key):\n"
            "    return hash(key)  # repro: ignore[hash-order-dependence]\n",
        )
        assert report.ok

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def salt(key):\n"
            "    return hash(key)  # repro: ignore[DT201]\n",
        )
        assert "DT204" in fired_rules(report)

    def test_multiple_rules_in_one_comment(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import time\n\n"
            "def tick(key):\n"
            "    return hash(key) + time.monotonic()"
            "  # repro: ignore[DT204, DT202]\n",
        )
        assert report.ok

    def test_unknown_rule_name_warns(self, tmp_path):
        report = lint_source(
            tmp_path,
            "x = 1  # repro: ignore[DT999]\n",
        )
        assert any(
            f.rule == "RP100" and "unknown rule" in f.message
            for f in report.warnings
        ), report.render(verbose=True)

    def test_suppression_syntax_in_docstring_is_inert(self, tmp_path):
        report = lint_source(
            tmp_path,
            '"""Docs may quote ``# repro: ignore[DT204]`` freely."""\n\n'
            "def salt(key):\n"
            "    return hash(key)\n",
        )
        assert "DT204" in fired_rules(report)
        assert not report.warnings, report.render(verbose=True)

    def test_suppressed_count_surfaces_as_info(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def salt(key):\n"
            "    return hash(key)  # repro: ignore[DT204]\n",
        )
        assert any(
            f.severity is Severity.INFO and "suppressed" in f.message
            for f in report.findings
        )


# ---------------------------------------------------------------------- #
# Profiles
# ---------------------------------------------------------------------- #

class TestProfiles:
    def test_unknown_profile_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="unknown lint profile"):
            check_repo(tmp_path, profile="strictest")

    def test_tests_profile_drops_hash_and_time_rules(self, tmp_path):
        source = (
            "import time\n\n"
            "def probe(key):\n"
            "    return hash(key), time.time()\n"
        )
        library = lint_source(tmp_path, source)
        assert {"DT204", "RP102"} <= fired_rules(library)
        relaxed = lint_source(tmp_path, source, profile="tests")
        assert relaxed.ok, relaxed.render(verbose=True)

    def test_tools_profile_drops_exception_hierarchy_only(self, tmp_path):
        source = "def boom():\n    raise ValueError('nope')\n"
        assert "RP103" in fired_rules(lint_source(tmp_path, source))
        assert lint_source(tmp_path, source, profile="tools").ok

    def test_profile_named_in_subject(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
        assert "[tests]" in check_repo(tmp_path, profile="tests").subject
        assert "[" not in check_repo(tmp_path, profile="library").subject

    def test_disabled_checks_not_reported_as_run(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
        report = check_repo(tmp_path, profile="tests")
        assert "hash-order-dependence" not in report.checks_run
        assert "mutable-default" in report.checks_run


# ---------------------------------------------------------------------- #
# Severity ordering and fingerprints
# ---------------------------------------------------------------------- #

class TestFindingOrdering:
    def build(self):
        report = Report(subject="ordering")
        report.info("structure", "note", location="z.py:1", rule="RP100")
        report.warning("structure", "warn", location="a.py:5", rule="RP100")
        report.error("hash-order-dependence", "bad", location="b.py:9",
                     rule="DT204")
        report.error("hash-order-dependence", "bad", location="a.py:2",
                     rule="DT204")
        return report

    def test_sorted_findings_most_severe_first(self):
        ordered = self.build().sorted_findings()
        assert [f.severity for f in ordered] == [
            Severity.ERROR, Severity.ERROR, Severity.WARNING, Severity.INFO,
        ]
        # Ties break by path then line for stable serialization.
        assert ordered[0].location == "a.py:2"
        assert ordered[1].location == "b.py:9"

    def test_to_dict_uses_sorted_order(self):
        doc = self.build().to_dict()
        severities = [f["severity"] for f in doc["findings"]]
        assert severities == ["ERROR", "ERROR", "WARNING", "INFO"]
        assert doc["errors"] == 2 and doc["warnings"] == 1

    def test_fingerprint_survives_line_shift(self):
        a = Finding("hash-order-dependence", Severity.ERROR, "bad",
                    location="mod.py:10", rule="DT204")
        b = Finding("hash-order-dependence", Severity.ERROR, "bad",
                    location="mod.py:99", rule="DT204")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_rule_and_file(self):
        base = Finding("c", Severity.ERROR, "m", location="mod.py:1",
                       rule="DT204")
        other_rule = Finding("c", Severity.ERROR, "m", location="mod.py:1",
                             rule="DT205")
        other_file = Finding("c", Severity.ERROR, "m", location="oth.py:1",
                             rule="DT204")
        prints = {f.fingerprint() for f in (base, other_rule, other_file)}
        assert len(prints) == 3


# ---------------------------------------------------------------------- #
# Baselines
# ---------------------------------------------------------------------- #

class TestBaseline:
    def dirty_report(self, tmp_path):
        return lint_source(
            tmp_path,
            "def salt(key):\n"
            "    return hash(key)\n",
            name="dirty.py",
        )

    def test_round_trip_absorbs_known_findings(self, tmp_path):
        report = self.dirty_report(tmp_path)
        assert not report.ok
        path = tmp_path / "baseline.json"
        count = write_baseline([report], path)
        assert count == 1
        filtered = apply_baseline(report, load_baseline(path))
        assert filtered.ok
        assert any("absorbed" in f.message for f in filtered.findings)
        assert filtered.checks_run == report.checks_run

    def test_new_finding_still_fails_against_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.dirty_report(tmp_path)], path)
        (tmp_path / "dirty.py").write_text(
            "def salt(key):\n"
            "    return hash(key)\n"
            "def fresh(items, acc=[]):\n"
            "    return acc\n",
            encoding="utf-8",
        )
        report = check_repo(tmp_path)
        filtered = apply_baseline(report, load_baseline(path))
        assert not filtered.ok
        assert fired_rules(filtered) == {"RP104"}

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.dirty_report(tmp_path)], path)
        (tmp_path / "dirty.py").write_text("x = 1\n", encoding="utf-8")
        clean = check_repo(tmp_path)
        stale = stale_fingerprints([clean], load_baseline(path))
        assert len(stale) == 1

    def test_file_is_canonical_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.dirty_report(tmp_path)], path)
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        payload = json.loads(text)
        assert payload["version"] == 1
        entry = next(iter(payload["findings"].values()))
        assert set(entry) == {"rule", "location", "message"}

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            load_baseline(tmp_path / "absent.json")

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": {}}\n', encoding="utf-8")
        with pytest.raises(ValidationError, match="version"):
            load_baseline(path)

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValidationError, match="not JSON"):
            load_baseline(path)


# ---------------------------------------------------------------------- #
# SARIF / JSON output schemas
# ---------------------------------------------------------------------- #

class TestSarifOutput:
    def report(self, tmp_path):
        return lint_source(
            tmp_path,
            "def salt(key):\n"
            "    return hash(key)\n",
            name="dirty.py",
        )

    def test_document_shape(self, tmp_path):
        doc = to_sarif([self.report(tmp_path)])
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-verify"

    def test_rule_table_covers_registry(self, tmp_path):
        (run,) = to_sarif([self.report(tmp_path)])["runs"]
        ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert ids == set(RULES)

    def test_result_carries_location_and_fingerprint(self, tmp_path):
        report = self.report(tmp_path)
        (run,) = to_sarif([report])["runs"]
        result = next(
            r for r in run["results"] if r["ruleId"] == "DT204"
        )
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "dirty.py"
        assert location["region"]["startLine"] == 2
        finding = report.by_rule("DT204")[0]
        assert (
            result["partialFingerprints"]["reproFingerprint/v1"]
            == finding.fingerprint()
        )

    def test_levels_map_all_severities(self, tmp_path):
        report = lint_source(
            tmp_path,
            "x = 1  # repro: ignore[DT999]\n",
        )
        (run,) = to_sarif([report])["runs"]
        levels = {r["level"] for r in run["results"]}
        assert "warning" in levels and "note" in levels

    def test_render_is_canonical(self, tmp_path):
        report = self.report(tmp_path)
        first = render_sarif([report])
        second = render_sarif([report])
        assert first == second and first.endswith("\n")
        json.loads(first)  # well-formed

    def test_json_finding_schema(self, tmp_path):
        doc = self.report(tmp_path).to_dict()
        finding = next(
            f for f in doc["findings"] if f["rule"] == "DT204"
        )
        assert set(finding) == {
            "rule", "check", "severity", "message", "location", "fingerprint",
        }
