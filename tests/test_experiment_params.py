"""Tests for the shared experiment scaling machinery."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.params import ExperimentResult, ExperimentScale


class TestExperimentScale:
    def test_scaled_bytes(self):
        scale = ExperimentScale(scale=1024)
        assert scale.scaled_bytes("64MB") == 64 * 1024
        assert scale.scaled_bytes(1 << 30) == 1 << 20

    def test_scaled_bytes_floor(self):
        with pytest.raises(ConfigurationError, match="below one line"):
            ExperimentScale(scale=1024).scaled_bytes("64KB")

    def test_cache_builder(self):
        scale = ExperimentScale(scale=1024)
        config = scale.cache("64MB", assoc=8, name="test")
        assert config.size == 64 * 1024
        assert config.assoc == 8
        assert config.line_size == 128  # line size never scales
        assert config.procs_per_node == scale.n_cpus

    def test_cache_geometry_still_validated(self):
        with pytest.raises(ConfigurationError):
            # 3 MB scaled produces a non-power-of-two set count at 4-way.
            ExperimentScale(scale=1024).cache(3 * 1024 * 1024, assoc=4)

    def test_host_builder_scales_l2(self):
        scale = ExperimentScale(scale=2048, n_cpus=4)
        config = scale.host()
        assert config.n_cpus == 4
        assert config.l2_size == 8 * 1024 * 1024 // 2048
        assert config.l2_assoc == 4

    def test_host_boot_time_reconfiguration(self):
        config = ExperimentScale(scale=1024).host(l2_size="1MB", l2_assoc=1)
        assert config.l2_size == 1024
        assert config.l2_assoc == 1


class TestExperimentResult:
    def test_str_includes_notes(self):
        result = ExperimentResult(
            name="x", report="THE TABLE", notes=["caveat one"]
        )
        text = str(result)
        assert "THE TABLE" in text
        assert "note: caveat one" in text

    def test_str_without_notes(self):
        assert str(ExperimentResult(name="x", report="R")) == "R"
