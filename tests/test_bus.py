"""Tests for repro.bus.bus: the 6xx system bus model."""

import pytest

from repro.bus.bus import ADDRESS_TENURE_CYCLES, SystemBus
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse


class Recorder:
    """A monitor that records what it observes."""

    def __init__(self, response=SnoopResponse.NULL):
        self.seen = []
        self.response = response

    def observe(self, txn):
        self.seen.append(txn)
        return self.response


class FixedSnooper:
    def __init__(self, response):
        self.response = response
        self.snooped = []

    def snoop(self, txn):
        self.snooped.append(txn)
        return self.response


def read(cpu=0, address=0x1000):
    return BusTransaction(cpu, BusCommand.READ, address)


class TestIssue:
    def test_sequence_numbers_increase(self):
        bus = SystemBus()
        first = bus.issue(read())
        second = bus.issue(read())
        assert (first.seq, second.seq) == (1, 2)

    def test_combined_response_reaches_monitor(self):
        bus = SystemBus()
        bus.attach_snooper(FixedSnooper(SnoopResponse.MODIFIED))
        recorder = Recorder()
        bus.attach_monitor(recorder)
        completed = bus.issue(read())
        assert completed.snoop_response is SnoopResponse.MODIFIED
        assert recorder.seen[0].snoop_response is SnoopResponse.MODIFIED

    def test_issuer_does_not_snoop_itself(self):
        bus = SystemBus()
        snooper = FixedSnooper(SnoopResponse.SHARED)
        bus.attach_snooper(snooper)
        completed = bus.issue(read(), issuer=snooper)
        assert completed.snoop_response is SnoopResponse.NULL
        assert snooper.snooped == []

    def test_monitor_retry_escalates(self):
        bus = SystemBus()
        bus.attach_monitor(Recorder(response=SnoopResponse.RETRY))
        completed = bus.issue(read())
        assert completed.snoop_response is SnoopResponse.RETRY
        assert bus.stats.retries == 1

    def test_detach_monitor(self):
        bus = SystemBus()
        recorder = Recorder()
        bus.attach_monitor(recorder)
        bus.detach_monitor(recorder)
        bus.issue(read())
        assert recorder.seen == []


class FlakyMonitor:
    """Posts RETRY for the first ``n`` observations, then NULL."""

    def __init__(self, n):
        self.remaining = n
        self.seen = []

    def observe(self, txn):
        self.seen.append(txn)
        if self.remaining > 0:
            self.remaining -= 1
            return SnoopResponse.RETRY
        return SnoopResponse.NULL


class TestRetryReissue:
    def test_reissue_succeeds_once_buffers_drain(self):
        bus = SystemBus()
        monitor = FlakyMonitor(2)
        bus.attach_monitor(monitor)
        completed = bus.issue(read())
        assert completed.snoop_response is SnoopResponse.NULL
        assert bus.stats.retries == 1  # one logical retried tenure
        assert bus.stats.retry_reissues == 2
        assert bus.stats.retries_abandoned == 0
        assert len(monitor.seen) == 3
        assert bus.stats.tenures == 1  # re-issues are not new tenures

    def test_abandoned_at_retry_budget(self):
        bus = SystemBus(max_retries=3)
        bus.attach_monitor(Recorder(response=SnoopResponse.RETRY))
        completed = bus.issue(read())
        assert completed.snoop_response is SnoopResponse.RETRY
        assert bus.stats.retry_reissues == 3
        assert bus.stats.retries_abandoned == 1

    def test_zero_budget_disables_reissue(self):
        bus = SystemBus(max_retries=0)
        monitor = FlakyMonitor(1)
        bus.attach_monitor(monitor)
        completed = bus.issue(read())
        assert completed.snoop_response is SnoopResponse.RETRY
        assert bus.stats.retry_reissues == 0
        assert bus.stats.retries_abandoned == 1
        assert len(monitor.seen) == 1

    def test_backoff_and_reissues_folded_into_cycle_accounting(self):
        bus = SystemBus(idle_cycles_per_tenure=8, retry_backoff_cycles=4)
        bus.attach_monitor(FlakyMonitor(3))
        bus.issue(read())
        per_tenure = ADDRESS_TENURE_CYCLES + 8
        # Original attempt + 3 re-issues, with exponential backoff 4, 8, 16.
        assert bus.stats.total_cycles == 4 * per_tenure + (4 + 8 + 16)
        assert bus.stats.busy_cycles == 4 * ADDRESS_TENURE_CYCLES

    def test_backoff_growth_is_capped(self):
        from repro.bus.bus import _MAX_BACKOFF_CYCLES

        bus = SystemBus(idle_cycles_per_tenure=0, max_retries=12,
                        retry_backoff_cycles=4)
        bus.attach_monitor(Recorder(response=SnoopResponse.RETRY))
        bus.issue(read())
        backoffs = bus.stats.total_cycles - 13 * ADDRESS_TENURE_CYCLES
        uncapped = sum(min(4 * 2 ** i, _MAX_BACKOFF_CYCLES) for i in range(12))
        assert backoffs == uncapped
        assert max(4 * 2 ** i for i in range(12)) > _MAX_BACKOFF_CYCLES


class TestStats:
    def test_per_command_counts(self):
        bus = SystemBus()
        bus.issue(BusTransaction(0, BusCommand.READ, 0))
        bus.issue(BusTransaction(0, BusCommand.RWITM, 0))
        bus.issue(BusTransaction(0, BusCommand.DCLAIM, 0))
        bus.issue(BusTransaction(0, BusCommand.CASTOUT, 0))
        bus.issue(BusTransaction(0, BusCommand.IO_READ, 0))
        stats = bus.stats
        assert stats.tenures == 5
        assert stats.memory_tenures == 4
        assert (stats.reads, stats.rwitms, stats.dclaims, stats.castouts) == (1, 1, 1, 1)
        assert stats.io_ops == 1

    def test_utilization_matches_idle_model(self):
        bus = SystemBus(idle_cycles_per_tenure=8)
        for _ in range(100):
            bus.issue(read())
        expected = ADDRESS_TENURE_CYCLES / (ADDRESS_TENURE_CYCLES + 8)
        assert bus.stats.utilization == pytest.approx(expected)

    def test_utilization_zero_before_traffic(self):
        assert SystemBus().stats.utilization == 0.0

    def test_elapsed_seconds(self):
        bus = SystemBus(clock_hz=100_000_000)
        for _ in range(1000):
            bus.issue(read())
        assert bus.elapsed_seconds == pytest.approx(
            bus.stats.total_cycles / 100_000_000
        )
