"""Tests for repro.bus.transaction: commands, responses, combining."""

import pytest
from hypothesis import given, strategies as st

from repro.bus.transaction import (
    BusCommand,
    BusTransaction,
    SnoopResponse,
    combine_snoop_responses,
)


class TestBusCommand:
    @pytest.mark.parametrize(
        "command",
        [BusCommand.READ, BusCommand.RWITM, BusCommand.DCLAIM, BusCommand.CASTOUT],
    )
    def test_memory_commands(self, command):
        assert command.is_memory

    @pytest.mark.parametrize(
        "command",
        [BusCommand.IO_READ, BusCommand.IO_WRITE, BusCommand.INTERRUPT, BusCommand.SYNC],
    )
    def test_non_memory_commands(self, command):
        assert not command.is_memory

    def test_write_intent(self):
        assert BusCommand.RWITM.is_write_intent
        assert BusCommand.DCLAIM.is_write_intent
        assert not BusCommand.READ.is_write_intent
        assert not BusCommand.CASTOUT.is_write_intent


class TestCombineResponses:
    def test_empty_is_null(self):
        assert combine_snoop_responses([]) is SnoopResponse.NULL

    def test_modified_beats_shared(self):
        combined = combine_snoop_responses(
            [SnoopResponse.SHARED, SnoopResponse.MODIFIED, SnoopResponse.NULL]
        )
        assert combined is SnoopResponse.MODIFIED

    def test_retry_dominates(self):
        combined = combine_snoop_responses(
            [SnoopResponse.MODIFIED, SnoopResponse.RETRY]
        )
        assert combined is SnoopResponse.RETRY

    @given(
        responses=st.lists(
            st.sampled_from(list(SnoopResponse)), min_size=1, max_size=16
        )
    )
    def test_combining_is_maximum(self, responses):
        assert combine_snoop_responses(responses) == max(responses)


class TestBusTransaction:
    def test_defaults(self):
        txn = BusTransaction(1, BusCommand.READ, 0x1000)
        assert txn.seq == 0
        assert txn.snoop_response is SnoopResponse.NULL

    def test_with_response_copies(self):
        txn = BusTransaction(2, BusCommand.RWITM, 0x2000)
        completed = txn.with_response(7, SnoopResponse.SHARED)
        assert completed.seq == 7
        assert completed.snoop_response is SnoopResponse.SHARED
        assert completed.address == txn.address
        assert completed.cpu_id == txn.cpu_id
        assert txn.seq == 0  # original untouched

    def test_frozen(self):
        txn = BusTransaction(1, BusCommand.READ, 0x1000)
        with pytest.raises(AttributeError):
            txn.address = 0
