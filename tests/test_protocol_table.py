"""Tests for repro.memories.protocol_table: loadable coherence tables."""

import pytest

from repro.common.errors import ProtocolError
from repro.memories.protocol_table import (
    CacheOp,
    FillRules,
    LineState,
    ProtocolTable,
    Transition,
    load_protocol,
)


class TestBuiltins:
    @pytest.mark.parametrize("name", ["msi", "mesi", "moesi"])
    def test_builtins_load_and_are_closed(self, name):
        table = load_protocol(name)
        assert table.name == name
        for op in CacheOp:
            for state in table.states:
                table.lookup(op, state)  # must not raise

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            load_protocol("dragon")

    def test_case_insensitive(self):
        assert load_protocol("MESI").name == "mesi"

    def test_msi_has_no_exclusive(self):
        assert LineState.EXCLUSIVE not in load_protocol("msi").states

    def test_mesi_read_alone_fills_exclusive(self):
        assert load_protocol("mesi").fill.read_alone is LineState.EXCLUSIVE

    def test_msi_read_alone_fills_shared(self):
        assert load_protocol("msi").fill.read_alone is LineState.SHARED

    def test_moesi_remote_read_of_modified_keeps_ownership(self):
        table = load_protocol("moesi")
        transition = table.lookup(CacheOp.REMOTE_READ, LineState.MODIFIED)
        assert transition.next_state is LineState.OWNED
        assert transition.is_hit  # supplies the data

    def test_mesi_remote_read_of_modified_demotes_to_shared(self):
        table = load_protocol("mesi")
        transition = table.lookup(CacheOp.REMOTE_READ, LineState.MODIFIED)
        assert transition.next_state is LineState.SHARED

    def test_remote_write_always_invalidates(self):
        for name in ("msi", "mesi", "moesi"):
            table = load_protocol(name)
            for state in table.states:
                transition = table.lookup(CacheOp.REMOTE_WRITE, state)
                assert transition.next_state is LineState.INVALID

    def test_local_write_always_produces_modified(self):
        for name in ("msi", "mesi", "moesi"):
            table = load_protocol(name)
            for state in table.states:
                transition = table.lookup(CacheOp.LOCAL_WRITE, state)
                assert transition.next_state is LineState.MODIFIED


class TestValidation:
    def test_missing_transition_rejected(self):
        transitions = {
            (CacheOp.LOCAL_READ, LineState.SHARED): Transition(LineState.SHARED, True),
        }
        fill = FillRules(LineState.SHARED, LineState.SHARED, LineState.SHARED)
        with pytest.raises(ProtocolError, match="missing transition"):
            ProtocolTable("broken", (LineState.SHARED,), transitions, fill)

    def test_undeclared_next_state_rejected(self):
        transitions = {
            (op, LineState.SHARED): Transition(LineState.SHARED, True)
            for op in CacheOp
        }
        transitions[(CacheOp.LOCAL_WRITE, LineState.SHARED)] = Transition(
            LineState.MODIFIED, True
        )
        fill = FillRules(LineState.SHARED, LineState.SHARED, LineState.SHARED)
        with pytest.raises(ProtocolError, match="undeclared state"):
            ProtocolTable("broken", (LineState.SHARED,), transitions, fill)

    def test_invalid_must_not_be_declared(self):
        with pytest.raises(ProtocolError, match="INVALID"):
            ProtocolTable(
                "broken",
                (LineState.INVALID, LineState.SHARED),
                {},
                FillRules(LineState.SHARED, LineState.SHARED, LineState.SHARED),
            )

    def test_fill_rule_must_use_declared_state(self):
        transitions = {
            (op, LineState.SHARED): Transition(LineState.SHARED, True)
            for op in CacheOp
        }
        fill = FillRules(LineState.SHARED, LineState.EXCLUSIVE, LineState.SHARED)
        with pytest.raises(ProtocolError, match="fill rule"):
            ProtocolTable("broken", (LineState.SHARED,), transitions, fill)


class TestMapFiles:
    @pytest.mark.parametrize("name", ["msi", "mesi", "moesi"])
    def test_roundtrip(self, name):
        original = load_protocol(name)
        restored = ProtocolTable.from_map(original.to_map())
        assert restored.name == original.name
        assert restored.states == original.states
        assert restored.raw_table() == original.raw_table()
        assert restored.fill == original.fill

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "mesi.map.json"
        load_protocol("mesi").save(path)
        restored = ProtocolTable.load(path)
        assert restored.name == "mesi"

    def test_malformed_map_rejected(self):
        with pytest.raises(ProtocolError):
            ProtocolTable.from_map({"name": "x", "states": ["NOT_A_STATE"]})


class TestStateProperties:
    def test_dirty_states(self):
        assert LineState.MODIFIED.is_dirty
        assert LineState.OWNED.is_dirty
        assert not LineState.SHARED.is_dirty
        assert not LineState.EXCLUSIVE.is_dirty

    def test_validity(self):
        assert not LineState.INVALID.is_valid
        assert all(
            state.is_valid
            for state in LineState
            if state is not LineState.INVALID
        )
