"""Tests for the console's protocol display and overflow reporting."""

import pytest

from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.memories.console import MemoriesConsole
from repro.memories.counters import COUNTER_MASK
from repro.memories.protocol_table import load_protocol
from repro.target.configs import single_node_machine


def powered():
    console = MemoriesConsole()
    console.power_up(
        single_node_machine(CacheNodeConfig.create("2MB"), n_cpus=4)
    )
    return console


class TestProtocolDisplay:
    def test_render_shows_transitions(self):
        text = load_protocol("mesi").render()
        assert "LOCAL_READ" in text
        assert "REMOTE_WRITE" in text
        assert "EXCLUSIVE" in text
        assert "read_alone=EXCLUSIVE" in text

    def test_render_marks_data_supply(self):
        text = load_protocol("moesi").render()
        # Remote read of MODIFIED supplies data and keeps ownership.
        assert "OWNED*" in text

    def test_console_protocol_command(self):
        console = powered()
        assert "LOCAL_CASTOUT" in console.execute("protocol 0")

    def test_console_protocol_bad_node(self):
        with pytest.raises(ConfigurationError):
            powered().execute("protocol 7")


class TestOverflowReporting:
    def test_no_wraps_initially(self):
        console = powered()
        assert console.wrapped_counters() == []
        assert console.execute("overflows") == "no counters have wrapped"

    def test_wrapped_counter_reported(self):
        console = powered()
        node = console.board.firmware.nodes[0]
        node.counters.increment("hit.read", COUNTER_MASK + 5)
        assert console.wrapped_counters() == ["node0.hit.read"]
        assert "node0.hit.read" in console.execute("overflows")
