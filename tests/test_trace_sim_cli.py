"""Tests for the trace-simulator command-line front end."""

import pytest

from repro.bus.trace import TraceWriter
from repro.sim.trace_sim import main
from tests.conftest import make_trace


@pytest.fixture
def trace_file(tmp_path):
    writer = TraceWriter()
    writer.extend_words(make_trace(3000, seed=1).words)
    path = tmp_path / "demo.mies"
    writer.save(path)
    return str(path)


class TestCli:
    def test_basic_run(self, trace_file, capsys):
        assert main([trace_file, "--size", "64KB"]) == 0
        output = capsys.readouterr().out
        assert "3,000 records" in output
        assert "miss ratio:" in output
        assert "the board would have taken" in output

    def test_counters_printed(self, trace_file, capsys):
        main([trace_file, "--size", "64KB", "--assoc", "2"])
        output = capsys.readouterr().out
        assert "miss.read" in output
        assert "evict.dirty" in output

    def test_local_cpus_filter(self, trace_file, capsys):
        main([trace_file, "--size", "64KB", "--cpus", "0,1"])
        output = capsys.readouterr().out
        # Only CPUs 0-1 are local; fewer references than total records.
        local_refs = int(
            next(
                line.split()[-1].replace(",", "")
                for line in output.splitlines()
                if "local.read" in line
            )
        )
        assert 0 < local_refs < 3000

    def test_compressed_trace_accepted(self, tmp_path, capsys):
        writer = TraceWriter()
        writer.extend_words(make_trace(1000, seed=2).words)
        path = tmp_path / "demo.miesz"
        writer.save(path, compress=True)
        assert main([str(path), "--size", "64KB"]) == 0
        assert "1,000 records" in capsys.readouterr().out

    def test_bad_geometry_rejected(self, trace_file):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main([trace_file, "--size", "100KB", "--assoc", "3"])
