"""Tests for the global events counter FPGA."""

import pytest

from repro.bus.transaction import BusCommand
from repro.memories.global_counter import GlobalEventsCounter


class TestRecording:
    def test_per_command_counters(self):
        counter = GlobalEventsCounter()
        counter.record(0, BusCommand.READ, 10.0)
        counter.record(1, BusCommand.RWITM, 10.0)
        counter.record(2, BusCommand.DCLAIM, 10.0)
        counter.record(3, BusCommand.CASTOUT, 10.0)
        snapshot = counter.snapshot()
        assert snapshot["global.bus.reads"] == 1
        assert snapshot["global.bus.rwitms"] == 1
        assert snapshot["global.bus.dclaims"] == 1
        assert snapshot["global.bus.castouts"] == 1
        assert snapshot["global.bus.tenures"] == 4

    def test_per_cpu_traffic(self):
        counter = GlobalEventsCounter()
        for _ in range(3):
            counter.record(5, BusCommand.READ, 10.0)
        assert counter.snapshot()["global.cpu.5"] == 3

    def test_cycle_accumulation(self):
        counter = GlobalEventsCounter()
        counter.record(0, BusCommand.READ, 10.0)
        counter.record(0, BusCommand.READ, 10.0)
        assert counter.snapshot()["global.bus.cycles"] == 20


class TestReadWriteRatio:
    def test_ratio(self):
        counter = GlobalEventsCounter()
        for _ in range(6):
            counter.record(0, BusCommand.READ, 1.0)
        counter.record(0, BusCommand.RWITM, 1.0)
        counter.record(0, BusCommand.DCLAIM, 1.0)
        assert counter.read_write_ratio() == pytest.approx(3.0)

    def test_no_writes_is_infinite(self):
        counter = GlobalEventsCounter()
        counter.record(0, BusCommand.READ, 1.0)
        assert counter.read_write_ratio() == float("inf")

    def test_no_traffic_is_zero(self):
        assert GlobalEventsCounter().read_write_ratio() == 0.0

    def test_reset(self):
        counter = GlobalEventsCounter()
        counter.record(0, BusCommand.READ, 1.0)
        counter.reset()
        assert counter.snapshot() == {}
