"""Tests for repro.memories.board: chassis, routing and replay."""

import numpy as np
import pytest

from repro.bus.trace import BusTrace, encode_arrays
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ConfigurationError, EmulationError
from repro.memories.board import (
    CacheEmulationFirmware,
    MemoriesBoard,
    board_for_machine,
)
from repro.memories.config import CacheNodeConfig
from repro.memories.protocol_table import LineState
from repro.target.configs import (
    multi_config_machine,
    single_node_machine,
    split_smp_machine,
)

CFG = CacheNodeConfig(size=16 * 1024, assoc=4, line_size=128)


def observe(board, cpu, command, address, response=SnoopResponse.NULL):
    return board.observe(
        BusTransaction(cpu, command, address, snoop_response=response)
    )


class TestChassis:
    def test_filters_io_before_firmware(self):
        board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        observe(board, 0, BusCommand.IO_READ, 0x1000)
        assert board.firmware.nodes[0].references() == 0
        assert board.address_filter.stats.filtered_io == 1

    def test_global_counters_record_commands(self):
        board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        observe(board, 0, BusCommand.READ, 0x1000)
        observe(board, 1, BusCommand.RWITM, 0x2000)
        stats = board.statistics()
        assert stats["global.bus.reads"] == 1
        assert stats["global.bus.rwitms"] == 1
        assert stats["global.cpu.0"] == 1

    def test_clock_advances_per_tenure(self):
        board = board_for_machine(
            single_node_machine(CFG, n_cpus=4), assumed_utilization=0.2
        )
        for _ in range(100):
            observe(board, 0, BusCommand.READ, 0x1000)
        # 2 cycles busy / 0.2 utilization = 10 cycles per tenure.
        assert board.now_cycle == pytest.approx(1000.0)
        assert board.emulated_seconds == pytest.approx(1000.0 / 100e6)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoriesBoard(
                CacheEmulationFirmware(single_node_machine(CFG, n_cpus=4)),
                assumed_utilization=0.0,
            )

    def test_reset_restores_power_up_state(self):
        board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        observe(board, 0, BusCommand.READ, 0x1000)
        board.reset()
        assert board.now_cycle == 0.0
        assert board.firmware.nodes[0].references() == 0
        assert board.statistics()["filter.observed"] == 0


class TestRouting:
    def test_local_cpu_routes_to_owning_node(self):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=4)
        board = board_for_machine(machine)
        observe(board, 1, BusCommand.READ, 0x1000)   # node 0
        observe(board, 6, BusCommand.READ, 0x2000)   # node 1
        node0, node1 = board.firmware.nodes
        assert node0.references() == 1
        assert node1.references() == 1

    def test_peer_nodes_see_remote_traffic(self):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=4)
        board = board_for_machine(machine)
        observe(board, 0, BusCommand.RWITM, 0x1000)
        assert board.firmware.nodes[1].counters.read("remote.write") == 1

    def test_multi_config_groups_are_independent(self):
        small = CacheNodeConfig(size=4 * 1024, assoc=4, line_size=128)
        machine = multi_config_machine([CFG, small], n_cpus=4)
        board = board_for_machine(machine)
        observe(board, 0, BusCommand.READ, 0x1000)
        # Both configurations absorb the same reference as LOCAL.
        for node in board.firmware.nodes:
            assert node.references() == 1
            assert node.counters.read("remote.read") == 0

    def test_unmapped_processor_read_snoops_nodes(self):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=1, truncate=True)
        board = board_for_machine(machine)
        observe(board, 0, BusCommand.RWITM, 0x1000)  # node 0 owns the line
        observe(board, 7, BusCommand.READ, 0x1000)   # unmapped CPU 7
        node0 = board.firmware.nodes[0]
        assert node0.counters.read("remote.read") == 1
        assert node0.directory.lookup_state(0x1000) == int(LineState.SHARED)

    def test_unmapped_processor_castout_is_ignored(self):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=1, truncate=True)
        board = board_for_machine(machine)
        observe(board, 0, BusCommand.READ, 0x1000)
        observe(board, 7, BusCommand.CASTOUT, 0x1000)
        node0 = board.firmware.nodes[0]
        assert node0.directory.lookup_state(0x1000) != int(LineState.INVALID)
        assert node0.counters.read("remote.write") == 0

    def test_io_bridge_dma_write_invalidates(self):
        machine = single_node_machine(CFG, n_cpus=4)
        board = board_for_machine(machine)
        observe(board, 0, BusCommand.READ, 0x1000)
        observe(board, 16, BusCommand.CASTOUT, 0x1000)  # DMA write, bus ID 16
        node = board.firmware.nodes[0]
        assert node.directory.lookup_state(0x1000) == int(LineState.INVALID)

    def test_unmapped_write_invalidates_all_group_nodes(self):
        machine = split_smp_machine(CFG, n_cpus=8, procs_per_node=2, truncate=True)
        board = board_for_machine(machine)
        observe(board, 0, BusCommand.READ, 0x1000)
        observe(board, 2, BusCommand.READ, 0x1000)
        observe(board, 16, BusCommand.CASTOUT, 0x1000)  # DMA write
        for node in board.firmware.nodes[:2]:
            assert node.directory.lookup_state(0x1000) == int(LineState.INVALID)


class TestReplay:
    def test_replay_equals_live_observation(self):
        rng = np.random.default_rng(3)
        n = 2000
        cpus = rng.integers(0, 4, n).astype(np.uint64)
        commands = np.where(rng.random(n) < 0.3, 1, 0).astype(np.uint64)
        addresses = (rng.integers(0, 256, n).astype(np.uint64)) * np.uint64(128)
        trace = BusTrace(encode_arrays(cpus, commands, addresses))

        live = board_for_machine(single_node_machine(CFG, n_cpus=4))
        for txn in trace:
            live.observe(txn)
        replayed = board_for_machine(single_node_machine(CFG, n_cpus=4))
        replayed.replay(trace)

        assert live.statistics() == replayed.statistics()

    def test_replay_returns_record_count(self, random_trace):
        board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        assert board.replay(random_trace) == len(random_trace)

    def test_statistics_include_all_layers(self, random_trace):
        board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        board.replay(random_trace)
        stats = board.statistics()
        assert "filter.observed" in stats
        assert "global.bus.tenures" in stats
        assert "node0.local.read" in stats
        assert "board.retries_posted" in stats


class _ShadowFirmware:
    """Minimal firmware image whose counter bank shadows another bank's key."""

    def __init__(self, key):
        self._key = key

    def snapshot(self):
        return {self._key: 1}


class TestStatisticsCollisionGuard:
    """statistics() must refuse to merge shadowed counter keys silently.

    The merged snapshot is a flat dict; before the guard, a firmware bank
    reusing a filter or global-FPGA key overwrote (or was overwritten by)
    the other bank's value with no diagnostic, corrupting golden
    comparisons and telemetry deltas.
    """

    def test_firmware_shadowing_filter_key_raises(self):
        board = MemoriesBoard(_ShadowFirmware("filter.observed"))
        with pytest.raises(EmulationError, match="duplicate statistics key"):
            board.statistics()

    def test_firmware_shadowing_global_bank_raises(self):
        board = MemoriesBoard(_ShadowFirmware("global.bus.tenures"))
        # The global bank materialises keys on first increment.
        board.global_counter.counters.increment("bus.tenures", 1)
        with pytest.raises(EmulationError, match="duplicate statistics key"):
            board.statistics()

    def test_firmware_shadowing_board_key_raises(self):
        board = MemoriesBoard(_ShadowFirmware("board.retries_posted"))
        with pytest.raises(EmulationError, match="duplicate statistics key"):
            board.statistics()

    def test_distinct_keys_merge_cleanly(self):
        board = MemoriesBoard(_ShadowFirmware("shadow.free"))
        assert board.statistics()["shadow.free"] == 1
