"""Tests for repro.memories.node_controller: the cache-emulation firmware."""

import pytest

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.config import CacheNodeConfig
from repro.memories.node_controller import NodeController
from repro.memories.protocol_table import CacheOp, LineState
from repro.memories.tx_buffer import TransactionBuffer


def make_node(size=16 * 1024, assoc=4, protocol="mesi", cpus=(0, 1, 2, 3), index=0):
    config = CacheNodeConfig(size=size, assoc=assoc, line_size=128, protocol=protocol)
    return NodeController(index=index, config=config, cpus=cpus)


def local(node, command, address, response=SnoopResponse.NULL, peers=(), now=0.0):
    return node.process_local(command, address, response, now, peers)


class TestLocalOperations:
    def test_read_miss_then_hit(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000)
        local(node, BusCommand.READ, 0x1000)
        counters = node.counters
        assert counters.read("miss.read") == 1
        assert counters.read("hit.read") == 1
        assert node.miss_ratio() == pytest.approx(0.5)

    def test_read_alone_fills_exclusive_under_mesi(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000)
        assert node.directory.lookup_state(0x1000) == int(LineState.EXCLUSIVE)
        assert node.counters.read("fill.EXCLUSIVE") == 1

    def test_rwitm_fills_modified(self):
        node = make_node()
        local(node, BusCommand.RWITM, 0x1000)
        assert node.directory.lookup_state(0x1000) == int(LineState.MODIFIED)

    def test_dclaim_counts_as_write_and_upgrade(self):
        node = make_node()
        local(node, BusCommand.DCLAIM, 0x1000)
        assert node.counters.read("local.write") == 1
        assert node.counters.read("local.upgrade") == 1

    def test_castout_hit_dirties_line(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000)
        local(node, BusCommand.CASTOUT, 0x1000)
        assert node.directory.lookup_state(0x1000) == int(LineState.MODIFIED)
        assert node.counters.read("hit.castout") == 1

    def test_castout_miss_allocates_dirty(self):
        """Section 3.4: non-inclusive caches see castouts for absent lines."""
        node = make_node()
        local(node, BusCommand.CASTOUT, 0x1000)
        assert node.counters.read("miss.castout") == 1
        assert node.counters.read("inclusion.castout_miss") == 1
        assert node.directory.lookup_state(0x1000) == int(LineState.MODIFIED)

    def test_dirty_eviction_counted(self):
        node = make_node(size=2 * 128, assoc=2)
        local(node, BusCommand.RWITM, 0x0000)
        local(node, BusCommand.READ, 0x8000)
        local(node, BusCommand.READ, 0x10000)
        assert node.counters.read("evict.dirty") == 1

    def test_non_memory_command_is_a_model_error(self):
        from repro.common.errors import EmulationError

        node = make_node()
        with pytest.raises(EmulationError):
            local(node, BusCommand.IO_READ, 0x1000)

    def test_castouts_excluded_from_references(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000)
        local(node, BusCommand.CASTOUT, 0x2000)
        assert node.references() == 1


class TestSatisfiedAttribution:
    def test_modified_intervention(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000, response=SnoopResponse.MODIFIED)
        assert node.counters.read("satisfied.mod_int") == 1

    def test_shared_intervention(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000, response=SnoopResponse.SHARED)
        assert node.counters.read("satisfied.shr_int") == 1

    def test_l3_hit(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000)
        local(node, BusCommand.READ, 0x1000)
        assert node.counters.read("satisfied.l3") == 1

    def test_memory(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000)
        assert node.counters.read("satisfied.memory") == 1

    def test_dclaim_fetches_no_data(self):
        node = make_node()
        local(node, BusCommand.DCLAIM, 0x1000)
        breakdown = node.satisfied_breakdown()
        assert all(v == 0.0 for v in breakdown.values())

    def test_breakdown_sums_to_one(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000)
        local(node, BusCommand.READ, 0x1000)
        local(node, BusCommand.READ, 0x2000, response=SnoopResponse.MODIFIED)
        assert sum(node.satisfied_breakdown().values()) == pytest.approx(1.0)


class TestPeerCoherence:
    def setup_method(self):
        self.a = make_node(cpus=(0, 1), index=0)
        self.b = make_node(cpus=(2, 3), index=1)

    def test_read_miss_with_peer_copy_fills_shared(self):
        local(self.b, BusCommand.READ, 0x1000)
        local(self.a, BusCommand.READ, 0x1000, peers=[self.b])
        assert self.a.directory.lookup_state(0x1000) == int(LineState.SHARED)
        assert self.b.directory.lookup_state(0x1000) == int(LineState.SHARED)

    def test_read_miss_with_dirty_peer_counts_intervention(self):
        local(self.b, BusCommand.RWITM, 0x1000)
        local(self.a, BusCommand.READ, 0x1000, peers=[self.b])
        assert self.a.counters.read("intervention.from_peer") == 1
        assert self.b.counters.read("remote.supplied_dirty") == 1

    def test_write_miss_invalidates_peer(self):
        local(self.b, BusCommand.READ, 0x1000)
        local(self.a, BusCommand.RWITM, 0x1000, peers=[self.b])
        assert self.b.directory.lookup_state(0x1000) == int(LineState.INVALID)
        assert self.b.counters.read("remote.invalidated") == 1

    def test_write_hit_on_shared_invalidates_peer(self):
        local(self.b, BusCommand.READ, 0x1000)
        local(self.a, BusCommand.READ, 0x1000, peers=[self.b])  # both shared
        local(self.a, BusCommand.DCLAIM, 0x1000, peers=[self.b])
        assert self.a.directory.lookup_state(0x1000) == int(LineState.MODIFIED)
        assert self.b.directory.lookup_state(0x1000) == int(LineState.INVALID)

    def test_local_read_hit_is_invisible_to_peers(self):
        local(self.b, BusCommand.READ, 0x2000)
        local(self.a, BusCommand.READ, 0x1000, peers=[self.b])
        remote_reads_before = self.b.counters.read("remote.read")
        local(self.a, BusCommand.READ, 0x1000, peers=[self.b])  # hit
        assert self.b.counters.read("remote.read") == remote_reads_before

    def test_emulated_swmr(self):
        local(self.a, BusCommand.RWITM, 0x1000, peers=[self.b])
        local(self.b, BusCommand.RWITM, 0x1000, peers=[self.a])
        states = [
            node.directory.lookup_state(0x1000) for node in (self.a, self.b)
        ]
        assert states.count(int(LineState.MODIFIED)) == 1
        assert states.count(int(LineState.INVALID)) == 1


class TestBufferBackpressure:
    def test_full_buffer_forces_retry(self):
        node = make_node()
        node.buffer = TransactionBuffer(capacity=1, service_cycles=1e9)
        assert local(node, BusCommand.READ, 0x1000, now=1.0)
        assert not local(node, BusCommand.READ, 0x2000, now=2.0)

    def test_rejected_op_does_not_touch_directory(self):
        node = make_node()
        node.buffer = TransactionBuffer(capacity=1, service_cycles=1e9)
        local(node, BusCommand.READ, 0x1000, now=1.0)
        local(node, BusCommand.READ, 0x2000, now=2.0)
        assert node.directory.lookup_state(0x2000) == int(LineState.INVALID)


class TestReset:
    def test_reset_clears_everything(self):
        node = make_node()
        local(node, BusCommand.READ, 0x1000)
        node.reset()
        assert node.references() == 0
        assert node.directory.resident_lines() == 0
        assert node.miss_ratio() == 0.0
