"""Tests for repro.common.rng: deterministic named random streams."""

from repro.common.rng import RngStreams


class TestRngStreams:
    def test_same_name_same_object(self):
        streams = RngStreams(seed=1)
        assert streams.get("a") is streams.get("a")

    def test_reproducible_across_instances(self):
        a = RngStreams(seed=42).get("x").random(8)
        b = RngStreams(seed=42).get("x").random(8)
        assert (a == b).all()

    def test_different_names_independent(self):
        streams = RngStreams(seed=42)
        a = streams.get("x").random(8)
        b = streams.get("y").random(8)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).get("x").random(8)
        b = RngStreams(seed=2).get("x").random(8)
        assert not (a == b).all()

    def test_creation_order_does_not_matter(self):
        one = RngStreams(seed=7)
        one.get("first")
        value_one = one.get("second").random(4)
        two = RngStreams(seed=7)
        value_two = two.get("second").random(4)
        assert (value_one == value_two).all()

    def test_fork_is_deterministic(self):
        a = RngStreams(seed=3).fork("child").get("s").random(4)
        b = RngStreams(seed=3).fork("child").get("s").random(4)
        assert (a == b).all()

    def test_fork_differs_from_parent(self):
        parent = RngStreams(seed=3)
        child = parent.fork("child")
        assert child.seed != parent.seed

    def test_seed_property(self):
        assert RngStreams(seed=11).seed == 11
