"""Tests for the board self-test diagnostic."""

import pytest

from repro.common.errors import ConfigurationError
from repro.memories.board import MemoriesBoard, board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.console import MemoriesConsole
from repro.memories.firmware.hotspot import HotSpotFirmware
from repro.memories.selftest import run_self_test
from repro.target.configs import single_node_machine, split_smp_machine

CFG = CacheNodeConfig(size=16 * 1024, assoc=4, line_size=128)


class TestSelfTest:
    @pytest.mark.parametrize("protocol", ["msi", "mesi", "moesi"])
    def test_passes_on_healthy_board(self, protocol):
        from dataclasses import replace

        machine = single_node_machine(replace(CFG, protocol=protocol), n_cpus=4)
        result = run_self_test(board_for_machine(machine))
        assert result.passed, result.render()

    def test_passes_on_split_machine(self):
        machine = split_smp_machine(CFG, n_cpus=4, procs_per_node=2)
        assert run_self_test(board_for_machine(machine)).passed

    def test_board_left_clean(self):
        board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        run_self_test(board)
        assert board.now_cycle == 0.0
        assert board.firmware.nodes[0].references() == 0

    def test_render_lists_checks(self):
        board = board_for_machine(single_node_machine(CFG, n_cpus=4))
        text = run_self_test(board).render()
        assert text.startswith("MemorIES self-test: PASS")
        assert "address filter" in text
        assert "transaction buffer" in text

    def test_requires_emulation_firmware(self):
        with pytest.raises(ConfigurationError):
            run_self_test(MemoriesBoard(HotSpotFirmware()))

    def test_requires_cpu0_mapping(self):
        from repro.target.mapping import TargetMachine, TargetNodeSpec
        from dataclasses import replace

        spec = TargetNodeSpec(
            config=replace(CFG, procs_per_node=2), cpus=(2, 3)
        )
        board = board_for_machine(TargetMachine(nodes=[spec]))
        with pytest.raises(ConfigurationError, match="CPU 0"):
            run_self_test(board)

    def test_console_command(self):
        console = MemoriesConsole()
        console.power_up(
            single_node_machine(CacheNodeConfig.create("2MB"), n_cpus=4)
        )
        output = console.execute("self-test")
        assert "PASS" in output
        assert "self-test passed" in console.execute("log")

    def test_detects_broken_filter(self):
        """A sabotaged pipeline stage must fail its check."""
        board = board_for_machine(single_node_machine(CFG, n_cpus=4))

        class BrokenFilter:
            def __init__(self, inner):
                self.inner = inner
                self.stats = inner.stats
                self.buffer = inner.buffer

            def admit(self, command, response, now):
                self.inner.admit(command, response, now)
                return True  # forwards everything, including I/O

            def reset(self):
                self.inner.reset()

        board.address_filter = BrokenFilter(board.address_filter)
        result = run_self_test(board)
        assert not result.passed
