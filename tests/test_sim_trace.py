"""Tests for the trace-driven software cache simulator."""

import numpy as np
import pytest

from repro.bus.trace import BusTrace, encode_arrays
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.sim.trace_sim import TraceSimResult, TraceSimulator

CFG = CacheNodeConfig(size=16 * 1024, assoc=4, line_size=128)


def trace_of(*txns):
    return BusTrace.from_transactions(
        [BusTransaction(cpu, cmd, addr) for cpu, cmd, addr in txns]
    )


class TestSemantics:
    def test_cold_miss_then_hit(self):
        result = TraceSimulator(CFG).simulate(
            trace_of((0, BusCommand.READ, 0x1000), (1, BusCommand.READ, 0x1000))
        )
        assert result.read_misses == 1
        assert result.read_hits == 1
        assert result.miss_ratio == pytest.approx(0.5)

    def test_lru_eviction_exact(self):
        config = CacheNodeConfig(size=2 * 128, assoc=2, line_size=128)
        result = TraceSimulator(config).simulate(
            trace_of(
                (0, BusCommand.READ, 0x0000),
                (0, BusCommand.READ, 0x8000),
                (0, BusCommand.READ, 0x0000),   # refresh
                (0, BusCommand.READ, 0x10000),  # evicts 0x8000
                (0, BusCommand.READ, 0x0000),   # still resident
                (0, BusCommand.READ, 0x8000),   # must miss again
            )
        )
        assert result.read_hits == 2
        assert result.read_misses == 4

    def test_dirty_eviction_counted(self):
        config = CacheNodeConfig(size=2 * 128, assoc=2, line_size=128)
        result = TraceSimulator(config).simulate(
            trace_of(
                (0, BusCommand.RWITM, 0x0000),
                (0, BusCommand.READ, 0x8000),
                (0, BusCommand.READ, 0x10000),
            )
        )
        assert result.dirty_evictions == 1
        assert result.clean_evictions == 0

    def test_castout_separately_counted(self):
        result = TraceSimulator(CFG).simulate(
            trace_of((0, BusCommand.CASTOUT, 0x1000))
        )
        assert result.castouts == 1
        assert result.castout_misses == 1
        assert result.references == 0  # castouts are not data references

    def test_io_and_retry_filtered(self):
        txns = [
            BusTransaction(0, BusCommand.IO_READ, 0x1000),
            BusTransaction(0, BusCommand.READ, 0x1000, snoop_response=SnoopResponse.RETRY),
        ]
        result = TraceSimulator(CFG).simulate(BusTrace.from_transactions(txns))
        assert result.filtered == 2
        assert result.references == 0

    def test_rejects_non_lru(self):
        config = CacheNodeConfig(size=16 * 1024, assoc=4, replacement="fifo")
        with pytest.raises(ConfigurationError):
            TraceSimulator(config)

    def test_fresh_resets_state_by_default(self):
        sim = TraceSimulator(CFG)
        trace = trace_of((0, BusCommand.READ, 0x1000))
        sim.simulate(trace)
        result = sim.simulate(trace)
        assert result.read_misses == 1  # cold again

    def test_incremental_simulation_keeps_state(self):
        sim = TraceSimulator(CFG)
        trace = trace_of((0, BusCommand.READ, 0x1000))
        sim.simulate(trace)
        result = sim.simulate(trace, fresh=False)
        assert result.read_hits == 1

    def test_foreign_master_read_demotes_dirty(self):
        sim = TraceSimulator(CFG, local_cpus=frozenset({0}))
        result = sim.simulate(
            trace_of(
                (0, BusCommand.RWITM, 0x1000),
                (16, BusCommand.READ, 0x1000),   # DMA read demotes
                (0, BusCommand.READ, 0x2000),    # force an eviction path later
            )
        )
        assert result.references == 2  # the DMA read is not a local reference

    def test_foreign_master_write_invalidates(self):
        sim = TraceSimulator(CFG, local_cpus=frozenset({0}))
        result = sim.simulate(
            trace_of(
                (0, BusCommand.READ, 0x1000),
                (16, BusCommand.CASTOUT, 0x1000),  # DMA write (bus ID > 15)
                (0, BusCommand.READ, 0x1000),
            )
        )
        assert result.read_misses == 2

    def test_foreign_processor_castout_ignored(self):
        sim = TraceSimulator(CFG, local_cpus=frozenset({0}))
        result = sim.simulate(
            trace_of(
                (0, BusCommand.READ, 0x1000),
                (7, BusCommand.CASTOUT, 0x1000),  # unmapped processor
                (0, BusCommand.READ, 0x1000),
            )
        )
        assert result.read_hits == 1


class TestReporting:
    def test_elapsed_time_measured(self, random_trace):
        result = TraceSimulator(CFG).simulate(random_trace)
        assert result.elapsed_seconds > 0

    def test_throughput(self, random_trace):
        sim = TraceSimulator(CFG)
        result = sim.simulate(random_trace)
        assert sim.throughput_refs_per_second(result) > 0

    def test_counter_view_keys_match_node_controller(self):
        view = TraceSimResult().counter_view()
        expected = {
            "local.read", "local.write", "local.castout",
            "hit.read", "hit.write", "hit.castout",
            "miss.read", "miss.write", "miss.castout",
            "evict.dirty", "evict.clean",
        }
        assert set(view) == expected
