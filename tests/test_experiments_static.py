"""Tests for the static experiments: Table 1, Figure 1, Table 2."""

import pytest

from repro.experiments import table1_survey, figure1_growth, table2_params


class TestTable1:
    def test_rows_match_paper(self):
        result = table1_survey.run()
        rows = result.data["rows"]
        assert len(rows) == 9
        assert {row.year for row in rows} == {1995, 1997, 1999}

    def test_gap_widens(self):
        gaps = table1_survey.run().data["gaps"]
        assert gaps[1995] < gaps[1997] < gaps[1999]
        assert gaps[1999] == pytest.approx(16.0)

    def test_report_contains_table(self):
        report = table1_survey.run().report
        assert "Barnes Hut" in report
        assert "512KB" in report


class TestFigure1:
    def test_observed_anchors_present(self):
        data = figure1_growth.run().data
        assert data["anchors"][1999] == (8 * 1024**2, 32 * 1024**2)

    def test_projection_grows(self):
        data = figure1_growth.run().data
        years = sorted(data["projection"])
        lows = [data["projection"][year][0] for year in years]
        highs = [data["projection"][year][1] for year in years]
        assert lows == sorted(lows)
        assert highs == sorted(highs)
        assert highs[0] > 32 * 1024**2

    def test_growth_rates_positive(self):
        min_rate, max_rate = figure1_growth.run().data["growth_rates"]
        assert min_rate > 1.0 and max_rate > 1.0


class TestTable2:
    def test_sweep_accepts_and_rejects(self):
        data = table2_params.run().data
        assert data["accepted"] > 100
        assert data["directory_rejects"] > 0
        assert data["boundary_failures"] == 6

    def test_report_contains_envelope(self):
        report = table2_params.run().report
        assert "2MB - 8GB" in report
        assert "Direct mapped to 8-way" in report
        assert "128B - 16KB" in report
