"""Tests for the NUMA sparse-directory emulation firmware."""

import pytest

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.memories.firmware.numa_directory import (
    NumaDirectoryFirmware,
    SparseDirectory,
)
from repro.memories.protocol_table import LineState

L3 = CacheNodeConfig(size=8 * 1024, assoc=4, line_size=128)
CPU_NODES = [0, 0, 1, 1, 2, 2, 3, 3]


def make_firmware(sparse_entries=64, sparse_assoc=4):
    return NumaDirectoryFirmware(
        L3, CPU_NODES, sparse_entries=sparse_entries, sparse_assoc=sparse_assoc
    )


def process(firmware, cpu, command, address):
    firmware.process(cpu, command, address, SnoopResponse.NULL, 0.0)


class TestSparseDirectory:
    def test_lookup_miss_then_hit(self):
        directory = SparseDirectory(entries=16, assoc=4, line_size=128)
        assert directory.lookup(0x1000) is None
        entry, evicted = directory.allocate(0x1000)
        assert evicted is None
        entry.presence = 0b0010
        assert directory.lookup(0x1000).presence == 0b0010

    def test_eviction_returns_victim(self):
        directory = SparseDirectory(entries=4, assoc=4, line_size=128)
        # All map to the single set.
        for i in range(4):
            directory.allocate(i * 128)
        _entry, evicted = directory.allocate(4 * 128)
        assert evicted is not None
        assert directory.evictions == 1

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            SparseDirectory(entries=10, assoc=4, line_size=128)

    def test_occupancy(self):
        directory = SparseDirectory(entries=8, assoc=4, line_size=128)
        directory.allocate(0)
        assert directory.occupancy() == pytest.approx(1 / 8)


class TestHomeAssignment:
    def test_page_interleaving(self):
        firmware = make_firmware()
        assert firmware.home_of(0x0000) == 0
        assert firmware.home_of(0x1000) == 1
        assert firmware.home_of(0x2000) == 2
        assert firmware.home_of(0x3000) == 3
        assert firmware.home_of(0x4000) == 0

    def test_local_vs_remote_counting(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x0000)  # node 0, home 0: local
        process(firmware, 0, BusCommand.READ, 0x1000)  # node 0, home 1: remote
        assert firmware.counters.read("requests.local") == 1
        assert firmware.counters.read("requests.remote") == 1
        assert firmware.remote_access_fraction() == pytest.approx(0.5)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaDirectoryFirmware(L3, [0, 1, 2, 3, 4])

    def test_empty_cpu_map_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaDirectoryFirmware(L3, [])


class TestCoherence:
    def test_read_fills_shared_when_another_node_holds(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x0000)  # node 0
        process(firmware, 2, BusCommand.READ, 0x0000)  # node 1
        assert firmware.l3[1].lookup_state(0x0000) == int(LineState.SHARED)
        assert firmware.l3[0].lookup_state(0x0000) == int(LineState.EXCLUSIVE)

    def test_write_invalidates_other_sharers(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x0000)
        process(firmware, 2, BusCommand.RWITM, 0x0000)
        assert firmware.l3[0].lookup_state(0x0000) == int(LineState.INVALID)
        assert firmware.l3[1].lookup_state(0x0000) == int(LineState.MODIFIED)
        assert firmware.counters.read("invalidations.sent") == 1

    def test_dirty_intervention_counted(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.RWITM, 0x0000)
        process(firmware, 2, BusCommand.READ, 0x0000)
        assert firmware.counters.read("interventions.dirty") == 1

    def test_sparse_eviction_invalidates_l3_copies(self):
        """The paper's eviction-notification mechanism."""
        firmware = make_firmware(sparse_entries=4, sparse_assoc=4)
        # Fill home 0's sparse directory (home 0 = pages 0, 4, 8...).
        addresses = [0x0000, 0x4000, 0x8000, 0xC000, 0x10000]
        for address in addresses[:4]:
            process(firmware, 0, BusCommand.READ, address)
        assert firmware.l3[0].lookup_state(addresses[0]) != int(LineState.INVALID)
        # Fifth home-0 line evicts the oldest sparse entry -> invalidation.
        process(firmware, 0, BusCommand.READ, addresses[4])
        assert firmware.counters.read("sparse.evictions") == 1
        assert firmware.l3[0].lookup_state(addresses[0]) == int(LineState.INVALID)

    def test_l3_eviction_clears_presence(self):
        firmware = NumaDirectoryFirmware(
            CacheNodeConfig(size=2 * 128, assoc=2, line_size=128),
            CPU_NODES,
            sparse_entries=64,
        )
        # Three same-set lines with home 0: the third evicts the first.
        a, b, c = 0x0000, 0x40000, 0x80000
        for address in (a, b, c):
            assert firmware.home_of(address) == 0
            process(firmware, 0, BusCommand.READ, address)
        entry = firmware.sparse[0].lookup(a)
        assert entry is not None and entry.presence == 0

    def test_io_write_invalidates_everywhere(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x0000)
        firmware.process(99, BusCommand.CASTOUT, 0x0000, SnoopResponse.NULL, 0.0)
        assert firmware.l3[0].lookup_state(0x0000) == int(LineState.INVALID)

    def test_snapshot_and_reset(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x0000)
        snapshot = firmware.snapshot()
        assert snapshot["numa.requests.local"] == 1
        assert "numa.sparse0.occupancy_pct" in snapshot
        firmware.reset()
        assert firmware.counters.read("requests.local") == 0
        assert firmware.l3[0].resident_lines() == 0
