"""Tests for repro.obs: trace propagation, histograms, flight recorder.

The acceptance bar mirrors ISSUE.md: a chaos-killed, retried,
multi-worker session must leave a *single connected span tree* (every
``parent_id`` resolves, one shared ``trace_id`` across the service, the
supervisor, and every worker incarnation), and ``obs timeline`` must be
byte-identical across invocations on the same run directory in every
format.
"""

import asyncio
import json
import time

import pytest

from repro.common.errors import ValidationError
from repro.faults import ServiceChaosPlan
from repro.memories.config import CacheNodeConfig
from repro.obs import (
    FORMATS,
    build_span_tree,
    build_timeline,
    render_timeline,
    session_records,
    validate_session_trace,
)
from repro.service import (
    EmulationService,
    ServiceConfig,
    SessionRequest,
    SessionState,
    synthetic_words,
)
from repro.service.metrics import service_exposition
from repro.supervisor import ChaosPlan, RunSupervisor, SupervisedRunSpec
from repro.target.configs import single_node_machine
from repro.telemetry.histogram import (
    DEFAULT_WALL_BOUNDS,
    Histogram,
    split_histogram_states,
)
from repro.telemetry.prom import histogram_exposition, parse_exposition

CFG = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)


def run_spec(seed=0, **kw):
    kw.setdefault("segment_records", 500)
    kw.setdefault("backoff_base", 0.01)
    return SupervisedRunSpec(
        machine=single_node_machine(CFG, n_cpus=4), seed=seed, **kw
    )


def request(seed=0, records=2000, **kw):
    spec = kw.pop("run_spec", None) or run_spec(seed=seed)
    trace = kw.pop("trace", None) or {
        "kind": "synthetic", "records": records, "seed": seed,
    }
    return SessionRequest(run_spec=spec, trace=trace, **kw)


async def wait_done(session, timeout=120.0):
    deadline = time.perf_counter() + timeout
    while not (
        session.state.terminal or session.state == SessionState.SUSPENDED
    ):
        assert time.perf_counter() < deadline, (
            f"session {session.id} stuck in {session.state}"
        )
        await asyncio.sleep(0.02)


def span(span_id, parent=None, trace="t0", name="x", **attrs):
    record = {
        "type": "span", "trace_id": trace, "span_id": span_id,
        "parent_id": parent, "name": name,
    }
    if attrs:
        record["attrs"] = attrs
    return record


# ---------------------------------------------------------------------- #
# Histogram edge cases
# ---------------------------------------------------------------------- #


class TestHistogramEdges:
    def test_zero_observations_render_zero_buckets(self):
        hist = Histogram("queue_wait")
        assert hist.count == 0 and hist.sum == 0.0
        assert hist.cumulative() == [0] * (len(DEFAULT_WALL_BOUNDS) + 1)
        page = histogram_exposition([hist], label="svc")
        parsed = parse_exposition(page)
        key = ("memories_latency_seconds_count",
               (("label", "svc"), ("stage", "queue_wait")))
        assert parsed[key] == 0.0

    def test_boundary_value_lands_in_le_bucket(self):
        # Prometheus le semantics: an observation exactly on a bound
        # counts inside that bound's bucket, not the next one.
        hist = Histogram("stage", bounds=[1.0, 2.0, 4.0])
        hist.observe(2.0)
        assert hist.counts == [0, 1, 0, 0]

    def test_overflow_goes_to_inf_bucket(self):
        hist = Histogram("stage", bounds=[1.0, 2.0])
        hist.observe(1e9)
        assert hist.counts == [0, 0, 1]
        assert hist.cumulative()[-1] == hist.count == 1

    def test_single_bucket_saturation(self):
        hist = Histogram("stage", bounds=[0.5])
        for _ in range(100):
            hist.observe(0.1)
        assert hist.counts == [100, 0]
        assert hist.cumulative() == [100, 100]

    def test_nan_and_bad_bounds_rejected(self):
        hist = Histogram("stage", bounds=[1.0])
        with pytest.raises(ValidationError, match="NaN"):
            hist.observe(float("nan"))
        with pytest.raises(ValidationError, match="strictly increasing"):
            Histogram("stage", bounds=[1.0, 1.0])
        with pytest.raises(ValidationError, match="finite"):
            Histogram("stage", bounds=[-1.0])
        with pytest.raises(ValidationError, match="at least one bound"):
            Histogram("stage", bounds=[])
        with pytest.raises(ValidationError, match="domain"):
            Histogram("stage", domain="sidereal")

    def test_state_roundtrip_and_mismatch(self):
        hist = Histogram("replay", domain="cycle", bounds=[10.0, 100.0])
        hist.observe(5.0)
        hist.observe(500.0)
        clone = Histogram.from_state(hist.state_dict())
        assert clone == hist
        other = Histogram("replay", domain="wall", bounds=[10.0, 100.0])
        with pytest.raises(ValidationError, match="does not match"):
            other.load_state_dict(hist.state_dict())
        relayout = Histogram("replay", domain="cycle", bounds=[10.0])
        with pytest.raises(ValidationError, match="bucket"):
            relayout.load_state_dict(hist.state_dict())

    def test_merge_equals_monolithic_byte_identical(self):
        # Chunked observation + merge must render the exact bytes the
        # monolithic histogram renders — the kill/resume invariant.
        values = [0.0005, 0.004, 0.004, 0.2, 7.5, 120.0]
        whole = Histogram("checkpoint_write")
        for value in values:
            whole.observe(value)
        first, second = Histogram("checkpoint_write"), Histogram(
            "checkpoint_write"
        )
        for value in values[:3]:
            first.observe(value)
        for value in values[3:]:
            second.observe(value)
        first.merge(second)
        assert histogram_exposition([first]) == histogram_exposition([whole])
        mismatched = Histogram("segment_replay")
        with pytest.raises(ValidationError, match="cannot merge"):
            first.merge(mismatched)

    def test_domain_segregation_in_split_states(self):
        cycle = Histogram("segment_replay", domain="cycle")
        wall = Histogram("checkpoint_write", domain="wall")
        cycles, walls = split_histogram_states([cycle, wall])
        assert list(cycles) == ["segment_replay"]
        assert list(walls) == ["checkpoint_write"]


# ---------------------------------------------------------------------- #
# Service exposition: HELP headers and the empty scrape
# ---------------------------------------------------------------------- #


class TestServiceExposition:
    STATUS = {
        "ready": True, "queued": 2, "running": 1,
        "sessions": {"completed": 3, "running": 1},
        "metrics": {"admitted": 4, "rejected": 1},
        "tenants": {"acme": {"cycles": 1000, "records": 2000,
                             "ingest_bytes": 0, "worker_seconds": 1.5}},
    }

    def test_every_type_header_has_help(self):
        page = service_exposition(self.STATUS, {"high_water": 7,
                                                "producer_waits": 2})
        lines = page.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                metric = line.split()[2]
                assert lines[index - 1].startswith(f"# HELP {metric} "), (
                    f"TYPE without HELP for {metric}"
                )

    def test_no_dangling_headers_on_idle_scrape(self):
        idle = {"ready": True, "queued": 0, "running": 0,
                "sessions": {}, "metrics": {}, "tenants": {}}
        page = service_exposition(idle, {})
        assert "memories_service_sessions" not in page
        assert "memories_service_events_total" not in page
        assert "memories_service_tenant_usage_total" not in page
        # Every header that did render is followed by a sample.
        lines = page.splitlines()
        assert lines and not lines[-1].startswith("#")
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                assert not lines[index + 1].startswith("#")

    def test_tenant_usage_labelled_counters_parse(self):
        page = service_exposition(self.STATUS, {})
        parsed = parse_exposition(page)
        key = ("memories_service_tenant_usage_total",
               (("resource", "cycles"), ("tenant", "acme")))
        assert parsed[key] == 1000.0
        key = ("memories_service_tenant_usage_total",
               (("resource", "worker_seconds"), ("tenant", "acme")))
        assert parsed[key] == 1.5

    def test_histograms_appended_with_service_label(self):
        hist = Histogram("admission_wait")
        hist.observe(0.003)
        page = service_exposition(self.STATUS, {}, histograms=[hist])
        parsed = parse_exposition(page)
        key = ("memories_latency_seconds_count",
               (("label", "service"), ("stage", "admission_wait")))
        assert parsed[key] == 1.0


# ---------------------------------------------------------------------- #
# Span-tree reconstruction (unit)
# ---------------------------------------------------------------------- #


class TestSpanTree:
    def test_build_and_walk(self):
        tree = build_span_tree([
            span("a:0"), span("a:1", parent="a:0"),
            span("a:2", parent="a:1"), {"type": "event", "name": "noise"},
        ])
        assert tree.roots == ["a:0"]
        assert tree.connected
        assert [d for d, _ in tree.walk("a:0")] == [0, 1, 2]

    def test_duplicate_span_id_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            build_span_tree([span("a:0"), span("a:0")])

    def test_unresolved_parent_detected(self):
        tree = build_span_tree([span("a:0"), span("a:1", parent="ghost:9")])
        assert tree.unresolved == ["a:1"]
        assert not tree.connected
        with pytest.raises(ValidationError, match="unresolved"):
            validate_session_trace([span("a:0"), span("a:1", parent="ghost:9")])

    def test_cycle_without_root_is_disconnected(self):
        records = [span("a:0", parent="a:1"), span("a:1", parent="a:0"),
                   span("r:0")]
        tree = build_span_tree(records)
        assert not tree.unresolved and not tree.connected
        with pytest.raises(ValidationError, match="not connected"):
            validate_session_trace(records)

    def test_single_trace_id_enforced(self):
        with pytest.raises(ValidationError, match="one trace_id"):
            validate_session_trace([span("a:0", trace="t0"),
                                    span("b:0", trace="t1")])
        with pytest.raises(ValidationError, match="no trace-tagged"):
            validate_session_trace([{"type": "event"}])
        with pytest.raises(ValidationError, match="mismatch"):
            validate_session_trace([span("a:0")], trace_id="elsewhere")


# ---------------------------------------------------------------------- #
# End-to-end forensics: chaos runs and the flight recorder
# ---------------------------------------------------------------------- #


class TestChaosRunForensics:
    def _chaos_run(self, tmp_path):
        from tests.test_supervisor import synthetic_words as words_for

        spec = run_spec(seed=7)
        supervisor = RunSupervisor.create(
            spec, words_for(2000), tmp_path / "run"
        )
        result = supervisor.run(chaos=ChaosPlan(kill_after_records=900))
        return tmp_path / "run", result

    def test_killed_run_leaves_connected_span_tree(self, tmp_path):
        run_dir, result = self._chaos_run(tmp_path)
        assert result.restarts == 1
        tree = validate_session_trace(session_records(run_dir))
        summary = tree.summary()
        assert summary["connected"]
        assert summary["unresolved"] == []
        assert len(summary["trace_ids"]) == 1
        names = {r.get("name") for r in tree.nodes.values()}
        # Supervisor, worker and backoff spans all share the trace.
        assert {"run", "segment", "replay", "checkpoint",
                "restart_backoff"} <= names

    def test_timeline_byte_identical_every_format(self, tmp_path):
        run_dir, _ = self._chaos_run(tmp_path)
        for fmt in FORMATS:
            first = render_timeline(build_timeline(run_dir), fmt)
            second = render_timeline(build_timeline(run_dir), fmt)
            assert first == second, f"{fmt} render is unstable"

    def test_timeline_orders_replay_before_commit(self, tmp_path):
        run_dir, _ = self._chaos_run(tmp_path)
        timeline = build_timeline(run_dir)
        assert timeline["version"] == 1
        assert timeline["service_root"] is None
        kinds = [e["kind"] for e in timeline["entries"]
                 if e["phase"] == "run"]
        # The commit protocol's order survives reconstruction: each
        # segment's replay span precedes its checkpoint span precedes
        # the journal commit line.
        first_commit = kinds.index("segment_commit")
        assert "replay" in kinds[:first_commit]
        assert "checkpoint" in kinds[:first_commit]
        assert kinds[0] == "run_start" and "run_complete" in kinds
        summary = timeline["summary"]
        assert summary["restarts"] == 1
        assert summary["phases"]["backoff"]["seconds"] > 0.0
        shares = [p["share"] for p in summary["phases"].values()]
        assert all(s >= 0.0 for s in shares)

    def test_trace_event_format_is_valid_chrome_json(self, tmp_path):
        run_dir, _ = self._chaos_run(tmp_path)
        payload = json.loads(
            render_timeline(build_timeline(run_dir), "trace-event")
        )
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "i")
            assert event["ts"] >= 0
        durations = [e for e in events if e["ph"] == "X"]
        assert durations and all(e["dur"] >= 0 for e in durations)

    def test_unknown_format_and_missing_journal_raise(self, tmp_path):
        run_dir, _ = self._chaos_run(tmp_path)
        with pytest.raises(ValidationError, match="unknown timeline format"):
            render_timeline(build_timeline(run_dir), "yaml")
        with pytest.raises(ValidationError, match="journal"):
            build_timeline(tmp_path / "nowhere")


class TestServiceSessionForensics:
    def _killed_session(self, tmp_path):
        async def scenario():
            service = EmulationService(
                tmp_path / "svc", ServiceConfig(),
                chaos=ServiceChaosPlan(kill_worker={"victim": 900}),
            )
            await service.start()
            session = service.submit(request(
                seed=11, records=2000, label="victim", tenant="acme",
            ))
            await wait_done(session)
            await service.stop()
            return session

        session = asyncio.run(scenario())
        assert session.state == SessionState.COMPLETED
        assert session.result.restarts == 1
        return session, tmp_path / "svc" / "runs" / session.id

    def test_session_trace_spans_service_to_workers(self, tmp_path):
        session, run_dir = self._killed_session(tmp_path)
        tree = validate_session_trace(
            session_records(run_dir), trace_id=session.trace_id
        )
        summary = tree.summary()
        assert summary["connected"]
        # One root: the *service* session span; the supervisor and every
        # worker incarnation hang beneath it.
        assert summary["roots"] == [session.root_span_id]
        prefixes = {sid.split(":", 1)[0].split("-")[0]
                    for sid in tree.nodes}
        assert {"service", "supervisor", "worker"} <= prefixes

    def test_session_timeline_has_all_three_phases(self, tmp_path):
        session, run_dir = self._killed_session(tmp_path)
        timeline = build_timeline(run_dir)
        assert timeline["service_root"] == str(tmp_path / "svc")
        phases = [e["phase"] for e in timeline["entries"]]
        assert {"admission", "run", "terminal"} <= set(phases)
        # Phases appear in lifecycle order.
        assert phases == sorted(
            phases, key=("admission", "run", "terminal").index
        )
        kinds = {e["kind"] for e in timeline["entries"]}
        assert {"session_queued", "started", "completed",
                "tenant_usage"} <= kinds
        for fmt in FORMATS:
            assert render_timeline(timeline, fmt) == render_timeline(
                build_timeline(run_dir), fmt
            )

    def test_cli_obs_timeline_and_spans(self, tmp_path, capsys):
        from repro.cli import EXIT_OK, obs_main

        _, run_dir = self._killed_session(tmp_path)
        assert obs_main(["timeline", str(run_dir)]) == EXIT_OK
        text = capsys.readouterr().out
        assert text.startswith("flight recorder:")
        assert "critical path:" in text

        out = tmp_path / "timeline.json"
        assert obs_main([
            "timeline", str(run_dir), "--format", "json",
            "--out", str(out),
        ]) == EXIT_OK
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["version"] == 1

        assert obs_main(["spans", str(run_dir)]) == EXIT_OK
        spans_text = capsys.readouterr().out
        assert "span tree connected" in spans_text


# ---------------------------------------------------------------------- #
# The per-session metrics endpoint
# ---------------------------------------------------------------------- #


class TestSessionMetricsEndpoint:
    def test_live_page_evicted_404_unknown_404(self, tmp_path):
        from repro.service import ServiceClient, ServiceServer

        async def first_server():
            server = ServiceServer(
                EmulationService(tmp_path / "svc", ServiceConfig())
            )
            await server.start()
            client = ServiceClient(server.host, server.port)
            session_id = await client.submit({
                "run_spec": run_spec(seed=4).to_dict(),
                "trace": {"kind": "synthetic", "records": 1500, "seed": 4},
                "label": "metered",
            })
            await client.wait(session_id, timeout=60)
            status, payload = await client.request(
                "GET", f"/sessions/{session_id}/metrics"
            )
            missing_status, missing = await client.request(
                "GET", "/sessions/no-such/metrics"
            )
            await server.stop(drain=True)
            return session_id, status, payload, missing_status, missing

        async def second_server(session_id):
            server = ServiceServer(
                EmulationService(tmp_path / "svc", ServiceConfig())
            )
            await server.start()
            client = ServiceClient(server.host, server.port)
            status, payload = await client.request(
                "GET", f"/sessions/{session_id}/metrics"
            )
            await server.stop(drain=True)
            return status, payload

        session_id, status, payload, missing_status, missing = asyncio.run(
            first_server()
        )
        assert status == 200
        parsed = parse_exposition(payload.decode("utf-8"))
        assert any(
            key[0] == "memories_latency_seconds_count" for key in parsed
        )
        assert missing_status == 404
        detail = json.loads(missing.decode("utf-8"))
        assert detail["error"]["reason"] == "unknown-session"

        # A restarted server adopts the finished session into history
        # only — the endpoint must say "evicted", not "unknown".
        evicted_status, evicted = asyncio.run(second_server(session_id))
        assert evicted_status == 404
        detail = json.loads(evicted.decode("utf-8"))
        assert detail["error"]["reason"] == "evicted"
        assert detail["error"]["session"] == session_id
