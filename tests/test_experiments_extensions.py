"""Shape tests for the extension experiments (I/O effect, web scaling)."""

import pytest

from repro.experiments.io_effect import IoEffectSettings, run as run_io
from repro.experiments.params import ExperimentScale
from repro.experiments.webserver_scaling import (
    WebScalingSettings,
    run as run_web,
)


class TestIoEffect:
    @pytest.fixture(scope="class")
    def result(self):
        return run_io(IoEffectSettings(n_refs=60_000, scale=ExperimentScale(scale=1024)))

    def test_miss_ratio_rises_with_dma(self, result):
        ys = result.data["curve"].ys()
        assert ys[-1] > ys[0]

    def test_monotone_within_tolerance(self, result):
        assert result.data["curve"].is_monotone_increasing(tolerance=0.01)

    def test_all_intensities_swept(self, result):
        assert len(result.data["curve"].points) == 4


class TestWebScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_web(
            WebScalingSettings(
                records_per_point=40_000,
                fileset_sizes=("1GB", "4GB", "16GB", "64GB"),
            )
        )

    def test_projection_exact_at_anchors(self, result):
        errors = result.data["errors"]
        assert errors[0] == pytest.approx(0.0, abs=1e-9)
        assert errors[1] == pytest.approx(0.0, abs=1e-9)

    def test_projection_error_grows_beyond_anchors(self, result):
        """Section 1: extrapolated cache statistics degrade at scale."""
        errors = result.data["errors"]
        assert abs(errors[-1]) > 0.03

    def test_larger_filesets_not_easier_to_cache(self, result):
        ys = result.data["measured"].ys()
        assert ys[-1] >= ys[0] - 0.05
