"""Tests for the hot-spot identification firmware."""

import pytest

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.memories.firmware.hotspot import HotSpotFirmware


def process(firmware, command, address, cpu=0):
    firmware.process(cpu, command, address, SnoopResponse.NULL, 0.0)


class TestCounting:
    def test_reads_and_writes_separated(self):
        firmware = HotSpotFirmware(granularity_bytes=4096)
        process(firmware, BusCommand.READ, 0x1000)
        process(firmware, BusCommand.RWITM, 0x1000)
        process(firmware, BusCommand.CASTOUT, 0x1000)
        assert firmware.reads == {1: 1}   # 0x1000 is page 1
        assert firmware.writes == {1: 2}

    def test_page_granularity(self):
        firmware = HotSpotFirmware(granularity_bytes=4096)
        process(firmware, BusCommand.READ, 0x0FFF)
        process(firmware, BusCommand.READ, 0x1000)
        assert firmware.reads == {0: 1, 1: 1}

    def test_line_granularity(self):
        firmware = HotSpotFirmware(granularity_bytes=128)
        process(firmware, BusCommand.READ, 0)
        process(firmware, BusCommand.READ, 128)
        assert set(firmware.reads) == {0, 1}

    def test_non_power_granularity_rejected(self):
        with pytest.raises(ConfigurationError):
            HotSpotFirmware(granularity_bytes=1000)


class TestHottest:
    def make_loaded(self):
        firmware = HotSpotFirmware(granularity_bytes=4096)
        for _ in range(5):
            process(firmware, BusCommand.READ, 0x3000)
        for _ in range(3):
            process(firmware, BusCommand.RWITM, 0x3000)
        process(firmware, BusCommand.READ, 0x9000)
        return firmware

    def test_total_ordering(self):
        firmware = self.make_loaded()
        top = firmware.hottest(2)
        assert top[0] == (3, 8)
        assert top[1] == (9, 1)

    def test_kind_filters(self):
        firmware = self.make_loaded()
        assert firmware.hottest(1, kind="reads")[0] == (3, 5)
        assert firmware.hottest(1, kind="writes")[0] == (3, 3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_loaded().hottest(1, kind="bogus")

    def test_region_address(self):
        firmware = HotSpotFirmware(granularity_bytes=4096)
        assert firmware.region_address(3) == 0x3000


class TestSnapshotAndReset:
    def test_snapshot(self):
        firmware = HotSpotFirmware()
        process(firmware, BusCommand.READ, 0x1000)
        snapshot = firmware.snapshot()
        assert snapshot["hotspot.reads"] == 1
        assert snapshot["hotspot.regions_tracked"] == 1

    def test_reset(self):
        firmware = HotSpotFirmware()
        process(firmware, BusCommand.READ, 0x1000)
        firmware.reset()
        assert firmware.snapshot()["hotspot.regions_tracked"] == 0
