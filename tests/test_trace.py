"""Tests for repro.bus.trace: the 8-byte record codec and trace files."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bus.trace import (
    ADDRESS_BITS,
    FILE_VERSION,
    FILE_VERSION_COMPRESSED,
    FILE_VERSION_COMPRESSED_CRC,
    FILE_VERSION_CRC,
    BusTrace,
    TraceReader,
    TraceWriter,
    decode_arrays,
    decode_record,
    encode_arrays,
    encode_record,
)
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import TraceFormatError


def sample_txn(cpu=3, command=BusCommand.RWITM, address=0xDEAD00, response=SnoopResponse.SHARED):
    return BusTransaction(
        cpu_id=cpu, command=command, address=address, snoop_response=response
    )


class TestScalarCodec:
    def test_roundtrip(self):
        txn = sample_txn()
        decoded = decode_record(encode_record(txn), seq=5)
        assert decoded.cpu_id == txn.cpu_id
        assert decoded.command == txn.command
        assert decoded.address == txn.address
        assert decoded.snoop_response == txn.snoop_response
        assert decoded.seq == 5

    def test_address_too_wide_rejected(self):
        with pytest.raises(TraceFormatError):
            encode_record(sample_txn(address=1 << ADDRESS_BITS))

    def test_cpu_too_wide_rejected(self):
        with pytest.raises(TraceFormatError):
            encode_record(sample_txn(cpu=256))

    @given(
        cpu=st.integers(0, 255),
        command=st.sampled_from(list(BusCommand)),
        address=st.integers(0, (1 << ADDRESS_BITS) - 1),
        response=st.sampled_from(list(SnoopResponse)),
    )
    def test_roundtrip_property(self, cpu, command, address, response):
        txn = sample_txn(cpu, command, address, response)
        decoded = decode_record(encode_record(txn))
        assert (decoded.cpu_id, decoded.command, decoded.address, decoded.snoop_response) == (
            cpu, command, address, response
        )


class TestVectorCodec:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        cpus = rng.integers(0, 8, 100).astype(np.uint64)
        commands = rng.integers(0, 4, 100).astype(np.uint64)
        addresses = rng.integers(0, 1 << 40, 100).astype(np.uint64)
        responses = rng.integers(0, 4, 100).astype(np.uint64)
        words = encode_arrays(cpus, commands, addresses, responses)
        c2, m2, a2, r2 = decode_arrays(words)
        assert (c2 == cpus).all() and (m2 == commands).all()
        assert (a2 == addresses).all() and (r2 == responses).all()

    def test_matches_scalar_codec(self):
        txn = sample_txn()
        words = encode_arrays(
            np.array([txn.cpu_id], dtype=np.uint64),
            np.array([int(txn.command)], dtype=np.uint64),
            np.array([txn.address], dtype=np.uint64),
            np.array([int(txn.snoop_response)], dtype=np.uint64),
        )
        assert int(words[0]) == encode_record(txn)

    def test_wide_address_rejected(self):
        with pytest.raises(TraceFormatError):
            encode_arrays(
                np.zeros(1, dtype=np.uint64),
                np.zeros(1, dtype=np.uint64),
                np.array([1 << ADDRESS_BITS], dtype=np.uint64),
            )


class TestBusTrace:
    def test_len_and_indexing(self):
        trace = BusTrace.from_transactions([sample_txn(cpu=i) for i in range(5)])
        assert len(trace) == 5
        assert trace[2].cpu_id == 2

    def test_iteration_assigns_sequence(self):
        trace = BusTrace.from_transactions([sample_txn(), sample_txn()])
        seqs = [txn.seq for txn in trace]
        assert seqs == [1, 2]

    def test_head_is_prefix(self):
        trace = BusTrace.from_transactions([sample_txn(cpu=i % 8) for i in range(10)])
        head = trace.head(4)
        assert len(head) == 4
        assert (head.words == trace.words[:4]).all()

    def test_concat(self):
        a = BusTrace.from_transactions([sample_txn(cpu=1)])
        b = BusTrace.from_transactions([sample_txn(cpu=2)])
        combined = a.concat(b)
        assert [t.cpu_id for t in combined] == [1, 2]

    def test_empty(self):
        assert len(BusTrace()) == 0


class TestWriterReader:
    def test_capacity_enforced(self):
        writer = TraceWriter(capacity=3)
        results = [writer.append(sample_txn()) for _ in range(5)]
        assert results == [True, True, True, False, False]
        assert len(writer) == 3
        assert writer.full

    def test_append_raw_equivalent(self):
        txn = sample_txn()
        writer = TraceWriter(capacity=10)
        writer.append(txn)
        writer.append_raw(
            txn.cpu_id, int(txn.command), txn.address, int(txn.snoop_response)
        )
        words = writer.to_trace().words
        assert words[0] == words[1]

    def test_extend_words_respects_capacity(self):
        writer = TraceWriter(capacity=4)
        accepted = writer.extend_words(np.arange(10, dtype=np.uint64))
        assert accepted == 4
        assert writer.full

    def test_save_load_roundtrip(self, tmp_path):
        writer = TraceWriter(capacity=100)
        originals = [sample_txn(cpu=i % 8, address=i * 128) for i in range(37)]
        for txn in originals:
            writer.append(txn)
        path = tmp_path / "trace.mies"
        writer.save(path)
        loaded = TraceReader(path).load()
        assert len(loaded) == 37
        for original, read_back in zip(originals, loaded):
            assert read_back.address == original.address
            assert read_back.cpu_id == original.cpu_id

    def test_iter_chunks_covers_file(self, tmp_path):
        writer = TraceWriter(capacity=1000)
        writer.extend_words(np.arange(700, dtype=np.uint64))
        path = tmp_path / "trace.mies"
        writer.save(path)
        chunks = list(TraceReader(path).iter_chunks(chunk_records=256))
        assert [len(c) for c in chunks] == [256, 256, 188]
        assert (np.concatenate(chunks) == np.arange(700, dtype=np.uint64)).all()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.mies"
        path.write_bytes(b"NOPE" + b"\x00" * 12)
        with pytest.raises(TraceFormatError):
            TraceReader(path).load()

    def test_truncated_payload_rejected(self, tmp_path):
        writer = TraceWriter(capacity=10)
        writer.extend_words(np.arange(8, dtype=np.uint64))
        path = tmp_path / "trace.mies"
        writer.save(path)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(TraceFormatError):
            TraceReader(path).load()

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.mies"
        path.write_bytes(b"MI")
        with pytest.raises(TraceFormatError):
            TraceReader(path).load()


class TestCompressedFormat:
    def make_file(self, tmp_path, compress):
        writer = TraceWriter(capacity=10_000)
        # Regular traffic compresses well: sequential lines, few CPUs.
        words = encode_arrays(
            np.arange(5000, dtype=np.uint64) % np.uint64(4),
            np.zeros(5000, dtype=np.uint64),
            (np.arange(5000, dtype=np.uint64) * np.uint64(128)),
        )
        writer.extend_words(words)
        path = tmp_path / ("trace.miesz" if compress else "trace.mies")
        writer.save(path, compress=compress)
        return path, words

    def test_roundtrip(self, tmp_path):
        path, words = self.make_file(tmp_path, compress=True)
        loaded = TraceReader(path).load()
        assert (loaded.words == words).all()

    def test_compression_shrinks_regular_traffic(self, tmp_path):
        raw_path, _ = self.make_file(tmp_path, compress=False)
        compressed_path, _ = self.make_file(tmp_path, compress=True)
        raw_size = raw_path.stat().st_size
        compressed_size = compressed_path.stat().st_size
        assert compressed_size < raw_size / 2

    def test_corrupt_compressed_payload_rejected(self, tmp_path):
        path, _ = self.make_file(tmp_path, compress=True)
        data = bytearray(path.read_bytes())
        data[20] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            TraceReader(path).load()

    def test_iter_chunks_refuses_compressed(self, tmp_path):
        path, _ = self.make_file(tmp_path, compress=True)
        with pytest.raises(TraceFormatError, match="compressed"):
            list(TraceReader(path).iter_chunks())


class TestCrcFormat:
    """The v3/v4 CRC32 trailer: corruption raises instead of skewing stats."""

    def make_file(self, tmp_path, compress=False, crc=True, n=500):
        writer = TraceWriter(capacity=n)
        words = encode_arrays(
            np.arange(n, dtype=np.uint64) % np.uint64(8),
            np.zeros(n, dtype=np.uint64),
            np.arange(n, dtype=np.uint64) * np.uint64(128),
        )
        writer.extend_words(words)
        path = tmp_path / "trace.mies"
        writer.save(path, compress=compress, crc=crc)
        return path, words

    def file_version(self, path):
        import struct

        return struct.unpack("<4sHHQ", path.read_bytes()[:16])[1]

    @pytest.mark.parametrize("compress", [False, True])
    def test_default_save_emits_crc_version(self, tmp_path, compress):
        path, _ = self.make_file(tmp_path, compress=compress)
        expected = FILE_VERSION_COMPRESSED_CRC if compress else FILE_VERSION_CRC
        assert self.file_version(path) == expected

    @pytest.mark.parametrize("compress", [False, True])
    def test_crc_roundtrip(self, tmp_path, compress):
        path, words = self.make_file(tmp_path, compress=compress)
        assert (TraceReader(path).load().words == words).all()

    @pytest.mark.parametrize("compress", [False, True])
    def test_legacy_versions_still_load(self, tmp_path, compress):
        path, words = self.make_file(tmp_path, compress=compress, crc=False)
        expected = FILE_VERSION_COMPRESSED if compress else FILE_VERSION
        assert self.file_version(path) == expected
        assert (TraceReader(path).load().words == words).all()

    @pytest.mark.parametrize("compress", [False, True])
    def test_payload_bit_flip_rejected(self, tmp_path, compress):
        path, _ = self.make_file(tmp_path, compress=compress)
        data = bytearray(path.read_bytes())
        data[16 + 5] ^= 0x10  # inside the payload, past the header
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            TraceReader(path).load()

    def test_trailer_bit_flip_rejected(self, tmp_path):
        path, _ = self.make_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="CRC mismatch"):
            TraceReader(path).load()

    def test_truncated_trailer_rejected(self, tmp_path):
        path, _ = self.make_file(tmp_path, n=1)
        data = path.read_bytes()
        path.write_bytes(data[: 16 + 2])  # header + 2 bytes of payload
        with pytest.raises(TraceFormatError):
            TraceReader(path).load()

    def test_short_record_payload_rejected_without_crc(self, tmp_path):
        path, _ = self.make_file(tmp_path, crc=False)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(TraceFormatError, match="truncated"):
            TraceReader(path).load()

    def test_seeded_corruption_never_yields_different_data(self, tmp_path):
        """Any flip or truncation either raises or decodes identically.

        (A flip in the header's reserved field is invisible — the contract
        is that corruption can never silently *change* the replayed data.)
        """
        from repro.faults import corrupt_trace_bytes

        path, words = self.make_file(tmp_path)
        pristine = path.read_bytes()
        rng = np.random.default_rng(7)
        for mode in ("flip", "truncate") * 20:
            path.write_bytes(corrupt_trace_bytes(pristine, rng, mode=mode))
            try:
                loaded = TraceReader(path).load()
            except TraceFormatError:
                continue
            assert (loaded.words == words).all()

    def test_iter_chunks_verifies_rolling_crc(self, tmp_path):
        path, words = self.make_file(tmp_path)
        chunks = list(TraceReader(path).iter_chunks(chunk_records=128))
        assert (np.concatenate(chunks) == words).all()
        data = bytearray(path.read_bytes())
        data[-2] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="CRC mismatch"):
            list(TraceReader(path).iter_chunks(chunk_records=128))
