"""Tests for repro.common.addr: address slicing shared by every cache."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addr import (
    AddressMap,
    align_down,
    is_power_of_two,
    log2_int,
    page_number,
)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 128, 1 << 30])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 127, (1 << 30) + 1])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_int(128) == 7

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(100)


class TestAddressMap:
    def test_slicing_known_values(self):
        amap = AddressMap(line_size=128, num_sets=64)
        address = 0xABCD00
        assert amap.line_address(address) == address & ~0x7F
        assert amap.set_index(address) == (address >> 7) & 0x3F
        assert amap.tag(address) == address >> 13

    def test_rebuild_inverts_slicing(self):
        amap = AddressMap(line_size=256, num_sets=32)
        address = 0x1234500
        rebuilt = amap.rebuild(amap.tag(address), amap.set_index(address))
        assert rebuilt == amap.line_address(address)

    def test_rebuild_rejects_bad_set(self):
        amap = AddressMap(line_size=128, num_sets=8)
        with pytest.raises(ValueError):
            amap.rebuild(1, 8)

    def test_line_number(self):
        amap = AddressMap(line_size=128, num_sets=8)
        assert amap.line_number(0) == 0
        assert amap.line_number(127) == 0
        assert amap.line_number(128) == 1

    @pytest.mark.parametrize("line,sets", [(100, 64), (128, 63)])
    def test_rejects_non_power_geometry(self, line, sets):
        with pytest.raises(ValueError):
            AddressMap(line_size=line, num_sets=sets)

    @given(
        address=st.integers(min_value=0, max_value=(1 << 48) - 1),
        line_bits=st.integers(min_value=7, max_value=14),
        index_bits=st.integers(min_value=0, max_value=16),
    )
    def test_rebuild_roundtrip_property(self, address, line_bits, index_bits):
        amap = AddressMap(line_size=1 << line_bits, num_sets=1 << index_bits)
        rebuilt = amap.rebuild(amap.tag(address), amap.set_index(address))
        assert rebuilt == amap.line_address(address)

    @given(address=st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_set_index_in_range(self, address):
        amap = AddressMap(line_size=128, num_sets=512)
        assert 0 <= amap.set_index(address) < 512


class TestHelpers:
    def test_align_down(self):
        assert align_down(0x12345, 0x1000) == 0x12000

    def test_align_down_rejects_non_power(self):
        with pytest.raises(ValueError):
            align_down(100, 3)

    def test_page_number_default_4k(self):
        assert page_number(0x2345) == 2

    def test_page_number_custom(self):
        assert page_number(0x2345, page_size=0x100) == 0x23

    def test_page_number_rejects_non_power(self):
        with pytest.raises(ValueError):
            page_number(0, page_size=3000)
