"""Tests for repro.telemetry: sinks, sampler, spans, series, exporters."""

import io
import json

import numpy as np
import pytest

from repro.bus.transaction import BusCommand
from repro.common.errors import ConfigurationError, TraceFormatError
from repro.host.smp import HostSMP
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.console import MemoriesConsole
from repro.memories.counters import COUNTER_MASK
from repro.target.configs import single_node_machine
from repro.telemetry import (
    CounterSampler,
    DEFAULT_EVERY_TRANSACTIONS,
    JsonlSink,
    MemorySink,
    NULL_SINK,
    NullSink,
    RunTrace,
    TelemetrySeries,
    encode_record,
    load_jsonl,
    parse_exposition,
    render_exposition,
    series_exposition,
    strip_wall,
    wrap_aware_delta,
)

CFG = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)


def machine(n_cpus=4):
    return single_node_machine(CFG, n_cpus=n_cpus)


def synthetic_words(n=2000, n_cpus=4, seed=0):
    from repro.bus.trace import encode_arrays

    rng = np.random.default_rng(seed)
    cpus = rng.integers(0, n_cpus, n).astype(np.uint64)
    commands = rng.choice(
        [int(BusCommand.READ), int(BusCommand.RWITM)], size=n, p=[0.8, 0.2]
    ).astype(np.uint64)
    addresses = (rng.integers(0, 512, n) * np.uint64(128)).astype(np.uint64)
    return encode_arrays(cpus, commands, addresses)


def _emit_burst(sink, worker, count):
    """One concurrent writer's share of the shared-sink stress test."""
    for seq in range(count):
        sink.emit({"worker": worker, "seq": seq,
                   "pad": "x" * (17 * (seq % 7))})


class FakeSource:
    """A minimal SampleSource with settable counters and clock."""

    def __init__(self):
        self.now_cycle = 0.0
        self.counters = {}

    def statistics(self):
        return dict(sorted(self.counters.items()))


class TestWrapAwareDelta:
    def test_monotonic(self):
        assert wrap_aware_delta(10, 25) == 15

    def test_equal_is_zero(self):
        assert wrap_aware_delta(7, 7) == 0

    def test_across_forty_bit_wrap(self):
        # 100 events before the wrap boundary plus 50 after.
        before = COUNTER_MASK - 99
        after = 50
        assert wrap_aware_delta(before, after) == 150

    def test_wrap_to_exact_zero(self):
        assert wrap_aware_delta(COUNTER_MASK, 0) == 1

    def test_custom_width(self):
        assert wrap_aware_delta(250, 5, bits=8) == 11


class TestSinks:
    def test_null_sink_is_shared_and_silent(self):
        assert isinstance(NULL_SINK, NullSink)
        NULL_SINK.emit({"type": "sample"})
        NULL_SINK.close()

    def test_memory_sink_keeps_order(self):
        sink = MemorySink()
        sink.emit({"seq": 0})
        sink.emit({"seq": 1})
        assert len(sink) == 2
        assert [r["seq"] for r in sink.records] == [0, 1]

    def test_tee_sink_fans_out_in_order_and_closes_all(self):
        from repro.telemetry import TeeSink

        first, second = MemorySink(), MemorySink()
        closed = []

        class ClosableSink(MemorySink):
            def close(self):
                closed.append(self)

        third = ClosableSink()
        tee = TeeSink(first, second, third)
        tee.emit({"seq": 0})
        tee.emit({"seq": 1})
        assert first.records == second.records == third.records
        assert [r["seq"] for r in first.records] == [0, 1]
        tee.close()
        assert closed == [third]

    def test_strip_wall(self):
        record = {"seq": 3, "wall": {"seconds": 0.5}}
        assert strip_wall(record) == {"seq": 3}
        assert strip_wall({"seq": 3}) == {"seq": 3}

    def test_encode_record_is_canonical(self):
        a = encode_record({"b": 1, "a": 2})
        b = encode_record({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'

    def test_encode_record_deterministic_drops_wall(self):
        line = encode_record({"a": 1, "wall": {"seconds": 9}}, deterministic=True)
        assert "wall" not in line

    def test_jsonl_round_trip_path(self, tmp_path):
        path = tmp_path / "series.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "sample", "seq": 0})
        sink.emit({"type": "final", "seq": 1})
        sink.close()
        records = load_jsonl(path)
        assert records == [
            {"type": "sample", "seq": 0},
            {"type": "final", "seq": 1},
        ]

    def test_jsonl_external_handle_left_open(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        sink.emit({"seq": 0})
        sink.close()
        assert not handle.closed
        assert load_jsonl(handle.getvalue().splitlines()) == [{"seq": 0}]

    def test_load_jsonl_rejects_bad_json(self):
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            load_jsonl(['{"ok": 1}', "not json"])

    def test_load_jsonl_rejects_non_object(self):
        with pytest.raises(TraceFormatError, match="not a JSON object"):
            load_jsonl(["[1, 2, 3]"])

    def test_jsonl_sink_concurrent_writers_never_interleave(self, tmp_path):
        """Many threads sharing one sink (the service's manifest/telemetry
        pattern) must produce one whole JSON object per line — torn or
        interleaved lines would corrupt the journal they feed."""
        import threading

        path = tmp_path / "shared.jsonl"
        sink = JsonlSink(path)
        threads, per_thread = 8, 200
        pool = [
            threading.Thread(
                target=_emit_burst, args=(sink, worker, per_thread)
            )
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        sink.close()

        records = load_jsonl(path)  # every line parses, none torn
        assert len(records) == threads * per_thread
        seen = {(r["worker"], r["seq"]) for r in records}
        assert len(seen) == threads * per_thread
        # Per-writer order is preserved even though writers interleave.
        for worker in range(threads):
            sequence = [r["seq"] for r in records if r["worker"] == worker]
            assert sequence == sorted(sequence)


class TestCounterSampler:
    def test_bad_cadence_rejected(self):
        with pytest.raises(ConfigurationError):
            CounterSampler(every_transactions=0)
        with pytest.raises(ConfigurationError):
            CounterSampler(every_cycles=-1.0)

    def test_default_cadence(self):
        sampler = CounterSampler()
        assert sampler.every_transactions == DEFAULT_EVERY_TRANSACTIONS

    def test_transaction_cadence(self):
        sink = MemorySink()
        sampler = CounterSampler(sink, every_transactions=10)
        source = FakeSource()
        for i in range(25):
            source.counters["events"] = i + 1
            sampler.maybe_sample(source)
        assert len(sink) == 2
        assert [r["transactions"] for r in sink.records] == [10, 20]

    def test_cycle_cadence(self):
        sink = MemorySink()
        sampler = CounterSampler(sink, every_cycles=100.0)
        source = FakeSource()
        for i in range(30):
            source.now_cycle += 10.0
            source.counters["events"] = i + 1
            sampler.maybe_sample(source)
        assert len(sink) == 3
        assert [r["cycle"] for r in sink.records] == [100.0, 200.0, 300.0]

    def test_deltas_skip_zero_and_non_int(self):
        sink = MemorySink()
        sampler = CounterSampler(sink, every_transactions=1)
        source = FakeSource()
        source.counters = {"moving": 5, "idle": 3, "rate": 0.5}
        sampler.maybe_sample(source)
        source.counters = {"moving": 9, "idle": 3, "rate": 0.7}
        sampler.maybe_sample(source)
        assert sink.records[0]["deltas"] == {"moving": 5, "idle": 3}
        assert sink.records[1]["deltas"] == {"moving": 4}

    def test_delta_across_forced_wrap(self):
        sink = MemorySink()
        sampler = CounterSampler(sink, every_transactions=1)
        source = FakeSource()
        source.counters = {"events": COUNTER_MASK - 9}
        sampler.maybe_sample(source)
        # 30 more events: the 40-bit readout wraps to 20.
        source.counters = {"events": 20}
        sampler.maybe_sample(source)
        deltas = [r["deltas"]["events"] for r in sink.records]
        assert deltas == [COUNTER_MASK - 9, 30]
        assert sum(deltas) == COUNTER_MASK - 9 + 30

    def test_finish_tags_final(self):
        sink = MemorySink()
        sampler = CounterSampler(sink, every_transactions=1000)
        source = FakeSource()
        source.counters = {"events": 7}
        record = sampler.finish(source)
        assert record["type"] == "final"
        assert sink.records[-1]["deltas"] == {"events": 7}

    def test_reset_forgets_cursor(self):
        sampler = CounterSampler(MemorySink(), every_transactions=1)
        source = FakeSource()
        source.counters = {"events": 5}
        sampler.maybe_sample(source)
        sampler.reset()
        sampler.maybe_sample(source)
        # After reset the same readout deltas against zero again.
        assert sampler.sink.records[-1]["deltas"] == {"events": 5}
        assert sampler.sink.records[-1]["seq"] == 0

    def test_state_round_trip(self):
        source = FakeSource()
        sampler = CounterSampler(MemorySink(), every_transactions=4)
        for i in range(6):
            source.counters["events"] = 10 * (i + 1)
            sampler.maybe_sample(source)
        state = json.loads(json.dumps(sampler.state_dict()))
        clone = CounterSampler(MemorySink(), every_transactions=4)
        clone.load_state_dict(state)
        assert clone.state_dict() == sampler.state_dict()


class TestBoardIntegration:
    def test_sampler_emits_on_cadence(self):
        sink = MemorySink()
        board = board_for_machine(machine(), seed=0)
        board.attach_telemetry(CounterSampler(sink, every_transactions=500))
        board.replay_words(synthetic_words(2000))
        samples = [r for r in sink.records if r["type"] == "sample"]
        assert [r["transactions"] for r in samples] == [500, 1000, 1500, 2000]

    def test_null_sink_replay_bit_identical(self):
        words = synthetic_words(3000)
        bare = board_for_machine(machine(), seed=0)
        bare.replay_words(words)
        instrumented = board_for_machine(machine(), seed=0)
        instrumented.attach_telemetry(
            CounterSampler(NULL_SINK, every_transactions=64),
            run_trace=RunTrace(NULL_SINK),
        )
        instrumented.replay_words(words)
        assert json.dumps(bare.statistics(), sort_keys=True) == json.dumps(
            instrumented.statistics(), sort_keys=True
        )

    def test_chunked_replay_same_series(self):
        words = synthetic_words(2048)
        mono_sink, chunk_sink = MemorySink(), MemorySink()
        mono = board_for_machine(machine(), seed=0)
        mono.attach_telemetry(CounterSampler(mono_sink, every_transactions=300))
        mono.replay_words(words)
        chunked = board_for_machine(machine(), seed=0)
        chunked.attach_telemetry(
            CounterSampler(chunk_sink, every_transactions=300)
        )
        for start in range(0, 2048, 97):
            chunked.replay_words(words[start : start + 97])
        assert [encode_record(r) for r in mono_sink.records] == [
            encode_record(r) for r in chunk_sink.records
        ]

    def test_totals_reconstruct_statistics(self):
        sink = MemorySink()
        board = board_for_machine(machine(), seed=0)
        sampler = CounterSampler(sink, every_transactions=256)
        board.attach_telemetry(sampler)
        board.replay_words(synthetic_words(1500))
        sampler.finish(board)
        totals = TelemetrySeries(sink.records).totals()
        stats = board.statistics()
        for name, value in totals.items():
            assert stats[name] == value, name

    def test_forced_wrap_flagged_and_corrected(self):
        words = synthetic_words(1200)
        bare = board_for_machine(machine(), seed=0)
        bare.replay_words(words)
        true_reads = bare.statistics()["node0.local.read"]
        assert true_reads > 100

        board = board_for_machine(machine(), seed=0)
        preload = COUNTER_MASK - 50  # wraps partway through the replay
        board.firmware.nodes[0].counters.increment("local.read", preload)
        sink = MemorySink()
        sampler = CounterSampler(sink, every_transactions=128)
        board.attach_telemetry(sampler)
        # Baseline sample before the wrap so the overflow lands inside a
        # sampled window (a wrap that predates sampling is unrecoverable).
        sampler.sample(board)
        board.replay_words(words)
        sampler.finish(board)

        assert "node0.local.read" in board.wrapped_counters()
        stats = board.statistics()
        assert stats["board.wrapped_counters"] >= 1
        # The raw 40-bit readout aliased...
        assert stats["node0.local.read"] < preload
        # ...but the summed wrap-aware deltas reconstruct the true count.
        totals = TelemetrySeries(sink.records).totals()
        assert totals["node0.local.read"] == preload + true_reads
        assert "node0.local.read" in sink.records[-1]["wrapped"]

    def test_board_reset_resets_sampler(self):
        sink = MemorySink()
        board = board_for_machine(machine(), seed=0)
        board.attach_telemetry(CounterSampler(sink, every_transactions=100))
        board.replay_words(synthetic_words(500))
        board.reset()
        board.replay_words(synthetic_words(100))
        final = board.telemetry.finish(board)
        # No counter drop is misread as a 40-bit wrap after reset.
        assert all(delta < 10_000 for delta in final["deltas"].values())

    def test_detach_restores_fast_path(self):
        board = board_for_machine(machine(), seed=0)
        board.attach_telemetry(CounterSampler(MemorySink()), RunTrace())
        board.detach_telemetry()
        assert board.telemetry is None
        assert board.run_trace is None


class TestCheckpointRestore:
    def test_mid_series_checkpoint_restore_equivalence(self):
        words = synthetic_words(2000)
        cadence = 150

        straight_sink = MemorySink()
        straight = board_for_machine(machine(), seed=0)
        straight.attach_telemetry(
            CounterSampler(straight_sink, every_transactions=cadence)
        )
        straight.replay_words(words)

        first_sink = MemorySink()
        first = board_for_machine(machine(), seed=0)
        first.attach_telemetry(
            CounterSampler(first_sink, every_transactions=cadence)
        )
        first.replay_words(words[:1000])
        state = json.loads(json.dumps(first.checkpoint()))
        assert "telemetry" in state

        second_sink = MemorySink()
        second = board_for_machine(machine(), seed=0)
        second.attach_telemetry(
            CounterSampler(second_sink, every_transactions=cadence)
        )
        second.restore(state)
        second.replay_words(words[1000:])

        combined = first_sink.records + second_sink.records
        assert [encode_record(r) for r in combined] == [
            encode_record(r) for r in straight_sink.records
        ]
        assert second.statistics() == straight.statistics()

    def test_checkpoint_without_sampler_has_no_cursor(self):
        board = board_for_machine(machine(), seed=0)
        board.replay_words(synthetic_words(100))
        assert "telemetry" not in board.checkpoint()


class TestRunTrace:
    def test_nested_spans_path_and_depth(self):
        sink = MemorySink()
        trace = RunTrace(sink, label="test")
        with trace.span("outer"):
            assert trace.depth == 1
            with trace.span("inner", records=5):
                assert trace.depth == 2
        assert trace.depth == 0
        # Children close (and emit) before their parents.
        inner, outer = sink.records
        assert inner["path"] == "outer/inner"
        assert inner["depth"] == 1
        assert inner["attrs"] == {"records": 5}
        assert outer["path"] == "outer"
        assert outer["depth"] == 0

    def test_wall_clock_segregated(self):
        sink = MemorySink()
        trace = RunTrace(sink)
        with trace.span("work"):
            pass
        record = sink.records[0]
        assert record["wall"]["seconds"] >= 0.0
        assert "wall" not in strip_wall(record)
        assert "seconds" not in encode_record(record, deterministic=True)

    def test_clock_binding(self):
        sink = MemorySink()
        trace = RunTrace(sink)
        ticks = iter([100.0, 250.0])
        trace.bind_clock(lambda: next(ticks))
        with trace.span("replay"):
            pass
        assert sink.records[0]["begin_cycle"] == 100.0
        assert sink.records[0]["end_cycle"] == 250.0

    def test_board_replay_emits_replay_span(self):
        sink = MemorySink()
        board = board_for_machine(machine(), seed=0)
        board.attach_telemetry(run_trace=RunTrace(sink))
        board.replay_words(synthetic_words(200))
        spans = [r for r in sink.records if r["type"] == "span"]
        assert len(spans) == 1
        assert spans[0]["name"] == "replay"
        assert spans[0]["attrs"] == {"records": 200}
        assert spans[0]["end_cycle"] > spans[0]["begin_cycle"]


class TestBusTelemetry:
    def test_bus_sampler_reports_utilization(self):
        sink = MemorySink()
        host = HostSMP()
        board = board_for_machine(machine(n_cpus=8), seed=0)
        host.plug_in(board)
        host.bus.attach_telemetry(
            CounterSampler(sink, every_transactions=200, label="bus")
        )
        rng = np.random.default_rng(0)
        n = 1000
        cpu_ids = rng.integers(0, 8, n)
        addresses = rng.integers(0, 4096, n) * 128
        is_writes = rng.random(n) < 0.2
        host.run_chunk(cpu_ids, addresses, is_writes)
        samples = [r for r in sink.records if r["label"] == "bus"]
        assert samples
        assert all(
            0.0 < r["window"]["bus.utilization"] <= 1.0
            for r in samples
            if "bus.utilization" in r["window"]
        )
        assert any("bus.tenures" in r["deltas"] for r in samples)

    def test_bus_statistics_key_sorted(self):
        host = HostSMP()
        stats = host.bus.statistics()
        assert list(stats) == sorted(stats)
        assert "bus.total_cycles" in stats


class TestFaultCampaignTelemetry:
    def test_campaign_labels_baseline_and_faulted(self):
        from repro.faults import FaultCampaign, FaultPlan

        sink = MemorySink()
        campaign = FaultCampaign(
            machine(), telemetry_sink=sink, sample_every=400
        )
        result = campaign.run(synthetic_words(1000), FaultPlan())
        labels = {r["label"] for r in sink.records}
        assert labels == {"baseline", "faulted"}
        assert result.identical  # zero-rate plan, instrumented both sides


class TestSeries:
    def build(self):
        sink = MemorySink()
        board = board_for_machine(machine(), seed=0)
        sampler = CounterSampler(sink, every_transactions=300)
        trace = RunTrace(sink, label="board")
        board.attach_telemetry(sampler, trace)
        board.replay_words(synthetic_words(1200))
        sampler.finish(board)
        return TelemetrySeries(sink.records), board

    def test_views(self):
        series, board = self.build()
        assert len(series.samples()) == 5  # 4 on cadence + final
        assert len(series.spans()) == 1
        assert series.labels() == ["board"]
        assert series.window_keys() == ["node0.miss_ratio"]
        # The final record's window is empty (replay length is a cadence
        # multiple, so no references remain), leaving 4 ratio points.
        ratios = series.window_series("node0.miss_ratio")
        assert len(ratios) == 4
        assert all(0.0 <= r <= 1.0 for r in ratios)

    def test_span_summary(self):
        series, _ = self.build()
        summary = series.span_summary()
        assert summary["replay"]["count"] == 1
        assert summary["replay"]["cycles"] > 0

    def test_dashboard_and_summary_render(self):
        series, _ = self.build()
        text = series.dashboard()
        assert "node0.miss_ratio" in text
        assert "spans (wall-clock profile):" in text
        assert "samples" in series.summary()

    def test_summary_flags_wraps(self):
        series = TelemetrySeries(
            [
                {
                    "type": "final",
                    "label": "b",
                    "deltas": {},
                    "wrapped": ["node0.local.read"],
                }
            ]
        )
        assert "WRAPPED" in series.summary()
        assert series.wrapped() == ["node0.local.read"]

    def test_from_jsonl(self, tmp_path):
        path = tmp_path / "series.jsonl"
        sink = JsonlSink(path, deterministic=True)
        board = board_for_machine(machine(), seed=0)
        board.attach_telemetry(CounterSampler(sink, every_transactions=200))
        board.replay_words(synthetic_words(600))
        board.telemetry.finish(board)
        sink.close()
        series = TelemetrySeries.from_jsonl(path)
        assert len(series.samples()) == 4
        assert series.totals()["node0.local.read"] > 0


class TestDeterminism:
    def run_once(self, tmp_path, name):
        path = tmp_path / name
        sink = JsonlSink(path, deterministic=True)
        board = board_for_machine(machine(), seed=0)
        trace = RunTrace(sink, label="run")
        board.attach_telemetry(
            CounterSampler(sink, every_transactions=250), trace
        )
        board.replay_words(synthetic_words(1000))
        board.telemetry.finish(board)
        sink.close()
        return path.read_bytes()

    def test_same_seed_byte_identical_jsonl(self, tmp_path):
        assert self.run_once(tmp_path, "a.jsonl") == self.run_once(
            tmp_path, "b.jsonl"
        )


class TestPromExport:
    def test_render_parse_round_trip(self):
        text = render_exposition(
            {"node0.local.read": 123, "bus.tenures": 7},
            label="board",
            cycle=2048.0,
            transactions=1024,
            samples=2,
            window={"node0.miss_ratio": 0.25},
            wrapped=["node0.local.read"],
        )
        parsed = parse_exposition(text)
        key = (
            "memories_counter_total",
            (("counter", "node0.local.read"), ("label", "board")),
        )
        assert parsed[key] == 123
        assert parsed[("memories_cycle", (("label", "board"),))] == 2048.0
        assert (
            parsed[
                (
                    "memories_window",
                    (("label", "board"), ("metric", "node0.miss_ratio")),
                )
            ]
            == 0.25
        )
        assert parsed[("memories_wrapped_counters", (("label", "board"),))] == 1

    def test_series_exposition_matches_totals(self):
        sink = MemorySink()
        board = board_for_machine(machine(), seed=0)
        sampler = CounterSampler(sink, every_transactions=300)
        board.attach_telemetry(sampler)
        board.replay_words(synthetic_words(900))
        sampler.finish(board)
        parsed = parse_exposition(series_exposition(sink.records))
        totals = TelemetrySeries(sink.records).totals()
        for name, value in totals.items():
            key = ("memories_counter_total", (("counter", name), ("label", "board")))
            assert parsed[key] == value, name

    def test_label_escaping_round_trips(self):
        text = render_exposition({}, label='we"ird\\label')
        parsed = parse_exposition(text)
        # No counter samples, but the page itself must parse cleanly.
        assert parsed == {}

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceFormatError, match="malformed"):
            parse_exposition('memories_counter_total{label="x" 12')
        with pytest.raises(TraceFormatError, match="malformed"):
            parse_exposition("memories_counter_total{label=x} 12")
        with pytest.raises(TraceFormatError, match="malformed"):
            parse_exposition("what ever nonsense")


class TestConsoleWatch:
    def powered(self):
        # The console validates against the real hardware envelope, so it
        # needs a paper-scale (>= 2MB) node config.
        console = MemoriesConsole()
        console.power_up(
            single_node_machine(CacheNodeConfig.create("2MB"), n_cpus=4)
        )
        return console

    def test_watch_attaches_and_renders(self):
        console = self.powered()
        first = console.execute("watch")
        assert "sampler attached" in first
        board = console._require_board()
        board.replay_words(synthetic_words(600))
        frame = console.execute("watch 100")
        assert "=== watch: board" in frame
        assert "node0.miss_ratio" in frame

    def test_watch_with_external_sink_defers(self, tmp_path):
        console = self.powered()
        board = console._require_board()
        sink = JsonlSink(tmp_path / "out.jsonl")
        board.attach_telemetry(CounterSampler(sink, every_transactions=100))
        message = console.watch()
        assert "external sink" in message
        sink.close()


class TestCliTelemetry:
    def test_run_report_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "series.jsonl"
        status = main(
            [
                "telemetry",
                "run",
                "--records",
                "2000",
                "--every-tx",
                "500",
                "--deterministic",
                "--out",
                str(out),
            ]
        )
        assert status == 0
        assert out.exists()
        run_output = capsys.readouterr().out
        assert "final miss ratios:" in run_output

        assert main(["telemetry", "report", str(out)]) == 0
        report = capsys.readouterr().out
        assert "samples" in report

        assert main(["telemetry", "export", str(out), "--format", "prom"]) == 0
        parsed = parse_exposition(capsys.readouterr().out)
        assert any(key[0] == "memories_counter_total" for key in parsed)

        assert (
            main(
                [
                    "telemetry",
                    "export",
                    str(out),
                    "--format",
                    "jsonl",
                    "--deterministic",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == [line.strip() for line in out.read_text().splitlines()]

    def test_run_deterministic_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        outs = []
        for name in ("a.jsonl", "b.jsonl"):
            out = tmp_path / name
            assert (
                main(
                    [
                        "telemetry",
                        "run",
                        "--records",
                        "1500",
                        "--every-tx",
                        "400",
                        "--deterministic",
                        "--out",
                        str(out),
                    ]
                )
                == 0
            )
            capsys.readouterr()
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]

    def test_bad_action_usage(self, capsys):
        from repro.cli import telemetry_main

        assert telemetry_main([]) == 2


class TestExperimentPipelines:
    def test_sweep_emits_labeled_series(self):
        from repro.experiments.pipeline import l3_size_sweep_nodes
        from repro.bus.trace import BusTrace

        sink = MemorySink()
        trace = BusTrace(synthetic_words(800))
        configs = [CFG, CacheNodeConfig(size=128 * 1024, assoc=4, line_size=128)]
        nodes = l3_size_sweep_nodes(
            trace, configs, n_cpus=4, telemetry_sink=sink, sample_every=200
        )
        assert len(nodes) == 2
        assert "sweep0" in {r["label"] for r in sink.records}

    def test_replay_machine_instrumented(self):
        from repro.bus.trace import BusTrace
        from repro.experiments.pipeline import replay_machine

        sink = MemorySink()
        board = replay_machine(
            BusTrace(synthetic_words(500)),
            machine(),
            telemetry_sink=sink,
            sample_every=100,
            run_trace=RunTrace(sink),
        )
        assert board.telemetry is not None
        kinds = {r["type"] for r in sink.records}
        assert kinds == {"sample", "final", "span"}


class TestDetachReattach:
    def test_detach_reattach_stays_on_cycle_grid(self):
        """Regression: a countdown armed before detach must not delay the
        first window after reattach.

        The sampler arms its countdown by converting "cycles until the next
        window boundary" into a transaction count against the board clock at
        arm time.  Detaching used to leave that stale countdown in place, so
        after uninstrumented replay advanced the clock, the first
        post-reattach sample landed a partial window late — off the
        ``every_cycles`` grid.  ``detach()`` now checkpoints the cursor and
        re-arms at 1, so the first observed transaction re-derives the
        cadence from the live clock.
        """
        sink = MemorySink()
        board = board_for_machine(machine(), seed=0)  # 10 cycles per tenure
        sampler = CounterSampler(sink, every_cycles=1000.0)
        board.attach_telemetry(sampler)
        board.replay_words(synthetic_words(130, seed=1))  # sample at 1000
        board.detach_telemetry()
        # 87 tenures pass unobserved; the clock crosses the 2000 boundary
        # (now = 2170) while nobody is watching.
        board.replay_words(synthetic_words(87, seed=2))
        board.attach_telemetry(sampler)
        board.replay_words(synthetic_words(200, seed=3))  # now = 4170
        cycles = [r["cycle"] for r in sink.records if r["type"] == "sample"]
        # The missed 2000 window surfaces as a catch-up sample at the first
        # reattached transaction (cycle 2180), after which sampling returns
        # to the monolithic 1000-cycle grid.  A stale countdown (70) would
        # instead fire the catch-up 69 transactions late, at cycle 2870.
        assert cycles == [1000.0, 2180.0, 3000.0, 4000.0]

    def test_transaction_cadence_survives_detach_window(self):
        """Transaction windows count *observed* tenures only, exactly.

        Detach folds the partially-elapsed countdown into the transaction
        totals, so a detach/reattach cycle changes nothing about a
        transaction cadence: windows still close after every 100 observed
        tenures, and unobserved replay does not advance them.
        """
        sink = MemorySink()
        board = board_for_machine(machine(), seed=0)
        sampler = CounterSampler(sink, every_transactions=100)
        board.attach_telemetry(sampler)
        board.replay_words(synthetic_words(130, seed=1))
        board.detach_telemetry()
        board.replay_words(synthetic_words(500, seed=2))  # unobserved
        board.attach_telemetry(sampler)
        board.replay_words(synthetic_words(70, seed=3))
        samples = [r for r in sink.records if r["type"] == "sample"]
        assert [r["transactions"] for r in samples] == [100, 200]
