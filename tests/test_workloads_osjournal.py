"""Tests for the OS-journaling fault-injection overlay."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.osjournal import JOURNAL_BASE, JournalBugOverlay
from repro.workloads.tpcc import TpccWorkload


def base_workload(seed=0):
    return TpccWorkload(db_bytes=1 << 22, n_cpus=4, seed=seed)


def collect(workload, n):
    chunks = list(workload.chunks(n, chunk_size=1024))
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]),
    )


class TestInjection:
    def test_burst_cadence(self):
        overlay = JournalBugOverlay(base_workload(), period_refs=1000, burst_refs=100)
        _c, addrs, _w = collect(overlay, 10_000)
        journal = addrs >= JOURNAL_BASE
        assert journal.sum() == 10 * 100
        # Bursts occupy the first 100 refs of every 1000-ref period.
        positions = np.where(journal)[0]
        assert ((positions % 1000) < 100).all()

    def test_journal_refs_are_writes_on_journal_cpu(self):
        overlay = JournalBugOverlay(
            base_workload(), period_refs=500, burst_refs=50, journal_cpu=2
        )
        cpus, addrs, writes = collect(overlay, 5_000)
        journal = addrs >= JOURNAL_BASE
        assert writes[journal].all()
        assert (cpus[journal] == 2).all()

    def test_journal_addresses_never_reused(self):
        overlay = JournalBugOverlay(base_workload(), period_refs=500, burst_refs=50)
        _c, addrs, _w = collect(overlay, 10_000)
        journal_addrs = addrs[addrs >= JOURNAL_BASE]
        assert np.unique(journal_addrs).size == journal_addrs.size

    def test_base_traffic_untouched_outside_bursts(self):
        base = base_workload(seed=5)
        plain = collect(base, 5_000)
        base.reset()
        overlay = JournalBugOverlay(base, period_refs=1000, burst_refs=100)
        injected = collect(overlay, 5_000)
        outside = injected[1] < JOURNAL_BASE
        # Non-burst positions carry the same addresses as the plain run.
        assert (injected[1][outside] == plain[1][outside]).all()

    def test_reset_restarts_phase(self):
        overlay = JournalBugOverlay(base_workload(), period_refs=1000, burst_refs=100)
        first = collect(overlay, 3_000)
        overlay.reset()
        again = collect(overlay, 3_000)
        assert (first[1] == again[1]).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JournalBugOverlay(base_workload(), period_refs=100, burst_refs=100)
        with pytest.raises(ConfigurationError):
            JournalBugOverlay(base_workload(), period_refs=100, burst_refs=0)
