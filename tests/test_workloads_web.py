"""Tests for the web-server workload generator."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.base import LINE
from repro.workloads.web import WebWorkload


def collect(workload, n=20_000):
    chunks = list(workload.chunks(n))
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]),
    )


def make(fileset=1 << 22, **kwargs):
    defaults = dict(n_files=64, n_cpus=4, metadata_bytes=1 << 14, buffer_bytes=1 << 12)
    defaults.update(kwargs)
    return WebWorkload(fileset_bytes=fileset, **defaults)


class TestLayout:
    def test_addresses_within_footprint(self):
        workload = make()
        _c, addrs, _w = collect(workload)
        assert addrs.min() >= 0
        assert addrs.max() < workload.total_bytes

    def test_file_table_covers_fileset(self):
        workload = make()
        assert workload.total_file_lines * LINE <= workload.fileset_bytes * 1.1
        assert workload.file_lines.min() >= 1
        # Starts are cumulative sums of lengths.
        assert (np.diff(workload.file_start_line) == workload.file_lines[:-1]).all()

    def test_file_bodies_are_read_only(self):
        workload = make(p_metadata=0.0, p_buffer=0.0)
        _c, _a, writes = collect(workload, 5000)
        assert not writes.any()

    def test_buffers_are_per_cpu(self):
        workload = make(p_metadata=0.0, p_buffer=0.9)
        cpus, addrs, _w = collect(workload, 5000)
        buffer_region = addrs < 4 * (1 << 12)  # below the metadata base
        assert buffer_region.mean() > 0.8
        for cpu in range(4):
            cpu_addrs = addrs[(cpus == cpu) & buffer_region]
            assert (cpu_addrs >= cpu * (1 << 12)).all()
            assert (cpu_addrs < (cpu + 1) * (1 << 12)).all()


class TestStreaming:
    def test_file_bodies_stream_sequentially(self):
        workload = make(p_metadata=0.0, p_buffer=0.0, n_cpus=1)
        _c, addrs, _w = collect(workload, 3000)
        deltas = np.diff(addrs)
        assert (deltas == LINE).mean() > 0.8  # sequential inside files

    def test_popular_files_reused(self):
        workload = make(
            p_metadata=0.0, p_buffer=0.0, n_cpus=1, popularity_exponent=1.3
        )
        _c, addrs, _w = collect(workload, 30_000)
        unique_fraction = np.unique(addrs).size / addrs.size
        assert unique_fraction < 0.9  # Zipf popularity revisits hot files


class TestValidation:
    def test_zero_files_rejected(self):
        with pytest.raises(ConfigurationError):
            make(n_files=0)

    def test_tiny_fileset_rejected(self):
        with pytest.raises(ConfigurationError):
            WebWorkload(fileset_bytes=100, n_files=64)

    def test_fractions_must_leave_room_for_files(self):
        with pytest.raises(ConfigurationError):
            make(p_metadata=0.6, p_buffer=0.5)

    def test_deterministic(self):
        a = collect(make(), 5000)
        b = collect(make(), 5000)
        assert (a[1] == b[1]).all()

    def test_reset(self):
        workload = make()
        first = collect(workload, 5000)
        workload.reset()
        again = collect(workload, 5000)
        assert (first[1] == again[1]).all()
