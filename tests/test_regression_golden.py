"""Golden-value regression tests.

Everything in the reproduction is deterministic given a seed, so a handful
of end-to-end counter values can be pinned exactly.  If one of these tests
fails after a change, the change altered emulation *semantics* (not just
performance or presentation) — either fix the regression or consciously
re-baseline the constants below and say why in the commit.
"""

import pytest

from repro.experiments.pipeline import capture_records
from repro.host.smp import HostConfig
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.target.configs import single_node_machine, split_smp_machine
from repro.workloads.tpcc import TpccWorkload

HOST = HostConfig(n_cpus=4, l2_size=16 * 1024, l2_assoc=2)


@pytest.fixture(scope="module")
def golden_trace():
    workload = TpccWorkload(
        db_bytes=1 << 22,
        n_cpus=4,
        private_bytes=8 * 1024,
        p_private=0.1,
        p_common=0.3,
        zipf_exponent=1.2,
        seed=12345,
    )
    return capture_records(workload, 20_000, HOST)


class TestGoldenValues:
    def test_trace_fingerprint(self, golden_trace):
        words = golden_trace.words
        assert len(golden_trace) == 20_000
        # Fingerprint of the whole capture pipeline (workload + host MESI).
        assert int(words.sum() % 1_000_000_007) == 276068700
        assert int(words[0]) == 144115188079879040
        assert int(words[-1]) == 36028797019553536

    def test_single_node_counters(self, golden_trace):
        board = board_for_machine(
            single_node_machine(
                CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128), n_cpus=4
            ),
            seed=0,
        )
        board.replay(golden_trace)
        node = board.firmware.nodes[0]
        counters = {
            name: node.counters.read(name)
            for name in (
                "local.read",
                "local.write",
                "local.castout",
                "miss.read",
                "miss.write",
                "evict.dirty",
            )
        }
        assert counters == {
            "local.read": 11661,
            "local.write": 4452,
            "local.castout": 3887,
            "miss.read": 8664,
            "miss.write": 2968,
            "evict.dirty": 4807,
        }

    def test_split_machine_counters(self, golden_trace):
        board = board_for_machine(
            split_smp_machine(
                CacheNodeConfig(size=32 * 1024, assoc=4, line_size=128),
                n_cpus=4,
                procs_per_node=2,
            ),
            seed=0,
        )
        board.replay(golden_trace)
        node0, node1 = board.firmware.nodes
        assert node0.references() + node1.references() == 16113
        assert node0.counters.read("remote.read") == node1.counters.read(
            "local.read"
        ) - node1.counters.read("hit.read")


def _expected_placeholder():
    """Regenerate the constants above after an intentional semantic change:

    run this module's fixtures by hand and print the counters, e.g.::

        pytest tests/test_regression_golden.py -q  # shows the diffs
    """
