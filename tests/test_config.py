"""Tests for repro.memories.config: the Table 2 hardware envelope."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB, KB, MB
from repro.memories.config import (
    CacheNodeConfig,
    DIRECTORY_ENTRY_BYTES,
    NODE_SDRAM_BYTES,
)


class TestEnvelope:
    def test_paper_minimum_accepted(self):
        CacheNodeConfig.create("2MB")

    def test_paper_maximum_accepted(self):
        CacheNodeConfig.create("8GB", line_size="16KB")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size=1 * MB),
            dict(size=16 * GB, line_size=16 * KB),
            dict(size=16 * MB, assoc=16),
            dict(size=16 * MB, assoc=0),
            dict(size=16 * MB, line_size=64),
            dict(size=16 * MB, line_size=32 * KB),
            dict(size=16 * MB, procs_per_node=0),
            dict(size=16 * MB, procs_per_node=9),
            dict(size=16 * MB, replacement="mru"),
        ],
    )
    def test_out_of_envelope_rejected(self, kwargs):
        config = CacheNodeConfig(**kwargs)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheNodeConfig(size=16 * MB, line_size=384).validate()

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheNodeConfig(size=2 * MB + 128, assoc=4).validate()

    def test_directory_must_fit_sdram(self):
        config = CacheNodeConfig(size=8 * GB, line_size=128)
        assert config.directory_bytes > NODE_SDRAM_BYTES
        with pytest.raises(ConfigurationError, match="SDRAM"):
            config.validate()

    def test_large_cache_with_large_lines_fits(self):
        config = CacheNodeConfig(size=8 * GB, line_size=16 * KB)
        assert config.directory_bytes <= NODE_SDRAM_BYTES
        config.validate()


class TestDerivedGeometry:
    def test_lines_and_sets(self):
        config = CacheNodeConfig(size=64 * MB, assoc=4, line_size=128)
        assert config.num_lines == 64 * MB // 128
        assert config.num_sets == config.num_lines // 4

    def test_directory_bytes(self):
        config = CacheNodeConfig(size=2 * MB, line_size=128)
        assert config.directory_bytes == config.num_lines * DIRECTORY_ENTRY_BYTES

    def test_create_parses_strings(self):
        config = CacheNodeConfig.create("64MB", line_size="1KB")
        assert config.size == 64 * MB
        assert config.line_size == 1024

    def test_describe_mentions_parameters(self):
        text = CacheNodeConfig.create("64MB", assoc=4, name="test").describe()
        assert "64MB" in text and "4-way" in text and "test" in text

    def test_describe_direct_mapped(self):
        assert "direct-mapped" in CacheNodeConfig.create("2MB", assoc=1).describe()


class TestScaled:
    def test_scaled_divides_size(self):
        config = CacheNodeConfig.create("64MB")
        scaled = config.scaled(1024)
        assert scaled.size == 64 * KB
        assert scaled.assoc == config.assoc

    def test_scaled_below_minimum_still_geometry_valid(self):
        CacheNodeConfig.create("2MB").scaled(64).validate_geometry()

    def test_scaled_rejects_indivisible(self):
        with pytest.raises(ConfigurationError):
            CacheNodeConfig.create("2MB").scaled(3_000_000)

    def test_scaled_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            CacheNodeConfig.create("2MB").scaled(0)
