"""Set-interleaved sharded replay: bit-identity and refusal conditions.

Sharded runs partition the trace by set-index address bits across
private boards and merge the counter banks wrap-aware; the merged
statistics must equal a serial replay's exactly.  Configurations whose
state couples cache sets through global order (random replacement, SDRAM
timing, over-long buffer service, shard fields spilling out of the
set-index field) must be refused up front, not silently mis-merged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.pipeline import (
    replay_machine,
    sharded_replay,
    validate_sharding,
)
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.counters import COUNTER_MASK
from repro.target.configs import (
    multi_config_machine,
    single_node_machine,
    split_smp_machine,
)

from tests.test_batched_replay import full_mix_words, machine_for

from repro.bus.trace import BusTrace


def full_mix_trace(n: int, seed: int = 0) -> BusTrace:
    return BusTrace(words=full_mix_words(n, seed=seed))


class TestShardedBitIdentity:
    @pytest.mark.parametrize("kind", ["single", "split", "multi"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_merged_equals_serial(self, kind, shards):
        trace = full_mix_trace(4000, seed=41)
        machine = machine_for(kind)
        serial = replay_machine(trace, machine, seed=5)
        merged = sharded_replay(
            trace, machine, shards, seed=5, processes=False
        )
        assert merged.statistics() == serial.statistics()
        assert merged.now_cycle == serial.now_cycle

    @pytest.mark.parametrize("replacement", ["lru", "fifo", "plru"])
    def test_policies(self, replacement):
        trace = full_mix_trace(2500, seed=43)
        machine = machine_for("split", replacement)
        serial = replay_machine(trace, machine, seed=1)
        merged = sharded_replay(trace, machine, 4, seed=1, processes=False)
        assert merged.statistics() == serial.statistics()

    def test_worker_processes(self):
        trace = full_mix_trace(2000, seed=47)
        machine = machine_for("split")
        serial = replay_machine(trace, machine, seed=2)
        merged = sharded_replay(trace, machine, 2, seed=2, processes=True)
        assert merged.statistics() == serial.statistics()

    def test_empty_trace(self):
        trace = BusTrace(words=np.zeros(0, dtype=np.uint64))
        machine = machine_for("single")
        merged = sharded_replay(trace, machine, 2, processes=False)
        assert merged.statistics() == replay_machine(trace, machine).statistics()

    def test_wrap_aware_merge(self):
        """Raw sums crossing the 40-bit boundary alias like a serial bank."""
        from repro.supervisor.worker import merge_shard_payloads, shard_payload

        machine = machine_for("single")
        board_a = board_for_machine(machine)
        board_a.global_counter.counters.increment("bus.tenures", COUNTER_MASK)
        board_b = board_for_machine(machine)
        board_b.global_counter.counters.increment("bus.tenures", 5)
        merged = board_for_machine(machine)
        merge_shard_payloads(
            merged, [shard_payload(board_a), shard_payload(board_b)]
        )
        # COUNTER_MASK + 5 wraps to 4 on a 40-bit readout.
        assert merged.global_counter.counters.read("bus.tenures") == 4
        assert merged.global_counter.counters.wrapped("bus.tenures")


class TestShardingValidation:
    def test_shard_count_must_be_power_of_two(self):
        machine = machine_for("single")
        with pytest.raises(ConfigurationError, match="power of two"):
            validate_sharding(machine, 3)

    def test_random_replacement_refused(self):
        machine = machine_for("split", "random")
        with pytest.raises(ConfigurationError, match="random"):
            validate_sharding(machine, 2)

    def test_sdram_refused(self):
        from repro.memories.sdram import SdramModel

        machine = machine_for("single")
        board = board_for_machine(machine)
        board.firmware.nodes[0].sdram = SdramModel()
        with pytest.raises(ConfigurationError, match="SDRAM"):
            validate_sharding(machine, 2, board)

    def test_fast_bus_refused(self):
        """Tenures arriving faster than the buffer drains couple the shards."""
        machine = machine_for("single")
        board = board_for_machine(machine, assumed_utilization=0.9)
        with pytest.raises(ConfigurationError, match="service"):
            validate_sharding(machine, 2, board)

    def test_shard_field_must_fit_every_index_field(self):
        # 2 sets per node: a one-bit index field cannot hold 4 shard bits.
        tiny = CacheNodeConfig(size=1024, assoc=4, line_size=128)
        machine = single_node_machine(tiny, 4)
        with pytest.raises(ConfigurationError, match="set-index"):
            validate_sharding(machine, 16)

    def test_mixed_line_sizes_use_widest_offset(self):
        coarse = CacheNodeConfig(size=128 * 1024, assoc=4, line_size=256)
        fine = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=64)
        machine = multi_config_machine([coarse, fine], 4)
        shift = validate_sharding(machine, 2)
        # The shard field must clear the *largest* line offset so one
        # coarse line never spans shards.
        assert shift == 8

    def test_shards_one_always_valid(self):
        machine = machine_for("split", "random")
        trace = full_mix_trace(300, seed=53)
        merged = sharded_replay(trace, machine, 1, processes=False)
        serial = replay_machine(trace, machine)
        assert merged.statistics() == serial.statistics()
