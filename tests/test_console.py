"""Tests for repro.memories.console: the console software."""

import pytest

from repro.bus.transaction import BusCommand, BusTransaction
from repro.common.errors import ConfigurationError
from repro.common.units import MB
from repro.memories.board import MemoriesBoard
from repro.memories.config import CacheNodeConfig
from repro.memories.console import MemoriesConsole
from repro.memories.firmware.hotspot import HotSpotFirmware
from repro.memories.protocol_table import load_protocol
from repro.target.configs import multi_config_machine, single_node_machine


def powered_console():
    console = MemoriesConsole()
    machine = single_node_machine(CacheNodeConfig.create("2MB"), n_cpus=4)
    board = console.power_up(machine)
    return console, board


class TestPowerUp:
    def test_power_up_returns_board(self):
        console, board = powered_console()
        assert console.board is board

    def test_power_up_validates_envelope(self):
        console = MemoriesConsole()
        machine = single_node_machine(
            CacheNodeConfig(size=1 * MB), n_cpus=4  # below Table 2 minimum
        )
        with pytest.raises(ConfigurationError):
            console.power_up(machine)

    def test_no_board_errors(self):
        console = MemoriesConsole()
        with pytest.raises(ConfigurationError, match="no board"):
            console.read_statistics()


class TestStatistics:
    def test_read_statistics(self):
        console, board = powered_console()
        board.observe(BusTransaction(0, BusCommand.READ, 0x1000))
        stats = console.read_statistics()
        assert stats["node0.local.read"] == 1

    def test_reset_statistics(self):
        console, board = powered_console()
        board.observe(BusTransaction(0, BusCommand.READ, 0x1000))
        console.reset_statistics()
        # Counters are lazily created; after reset the tenure counter is
        # either absent or zero.
        assert console.read_statistics().get("global.bus.tenures", 0) == 0

    def test_report_format(self):
        console, board = powered_console()
        board.observe(BusTransaction(0, BusCommand.READ, 0x1000))
        report = console.report()
        assert "emulated wall-clock" in report
        assert "node0.local.read" in report

    def test_miss_ratios_per_node(self):
        console = MemoriesConsole()
        machine = multi_config_machine(
            [CacheNodeConfig.create("2MB"), CacheNodeConfig.create("4MB")], n_cpus=4
        )
        board = console.power_up(machine)
        board.observe(BusTransaction(0, BusCommand.READ, 0x1000))
        assert console.miss_ratios() == [1.0, 1.0]


class TestProtocolUpload:
    def test_load_protocol_map(self):
        console, board = powered_console()
        console.load_protocol_map(0, load_protocol("moesi"))
        assert board.firmware.nodes[0].protocol.name == "moesi"

    def test_bad_node_index(self):
        console, _board = powered_console()
        with pytest.raises(ConfigurationError):
            console.load_protocol_map(5, load_protocol("msi"))

    def test_requires_emulation_firmware(self):
        console = MemoriesConsole()
        console.attach(MemoriesBoard(HotSpotFirmware()))
        with pytest.raises(ConfigurationError, match="cache-emulation"):
            console.load_protocol_map(0, load_protocol("msi"))


class TestCommandInterface:
    def test_stats_command(self):
        console, board = powered_console()
        board.observe(BusTransaction(0, BusCommand.READ, 0x1000))
        assert "node0.local.read 1" in console.execute("stats")

    def test_describe_command(self):
        console, _board = powered_console()
        assert "2MB" in console.execute("describe")

    def test_reset_command(self):
        console, board = powered_console()
        board.observe(BusTransaction(0, BusCommand.READ, 0x1000))
        assert console.execute("reset") == "ok"
        assert console.miss_ratios() == [0.0]

    def test_log_command_records_actions(self):
        console, _board = powered_console()
        console.execute("reset")
        log = console.execute("log")
        assert "power-up" in log and "statistics reset" in log

    def test_unknown_command_rejected(self):
        console, _board = powered_console()
        with pytest.raises(ConfigurationError):
            console.execute("make coffee")
