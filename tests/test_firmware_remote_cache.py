"""Tests for the remote-cache emulation firmware."""

import pytest

from repro.bus.transaction import BusCommand, SnoopResponse
from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.memories.firmware.remote_cache import RemoteCacheFirmware

L3 = CacheNodeConfig(size=2 * 128, assoc=2, line_size=128)  # tiny L3
REMOTE = CacheNodeConfig(size=8 * 1024, assoc=4, line_size=128)
CPU_NODES = [0, 0, 1, 1, 2, 2, 3, 3]


def make_firmware():
    return RemoteCacheFirmware(L3, REMOTE, CPU_NODES)


def process(firmware, cpu, command, address):
    firmware.process(cpu, command, address, SnoopResponse.NULL, 0.0)


class TestRemoteCache:
    def test_local_home_miss_skips_remote_cache(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x0000)  # home 0 = local
        assert firmware.counters.read("local.misses") == 1
        assert firmware.counters.read("remote.references") == 0

    def test_remote_home_miss_consults_remote_cache(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x1000)  # home 1 = remote
        assert firmware.counters.read("remote.references") == 1
        assert firmware.counters.read("remote.misses") == 1

    def test_remote_cache_absorbs_rereference_after_l3_eviction(self):
        firmware = make_firmware()
        remote_line = 0x1000
        process(firmware, 0, BusCommand.READ, remote_line)
        # Two conflicting lines evict remote_line from the tiny 2-way L3
        # (same set because the L3 has a single set).
        process(firmware, 0, BusCommand.READ, 0x2000)
        process(firmware, 0, BusCommand.READ, 0x3000)
        process(firmware, 0, BusCommand.READ, remote_line)
        assert firmware.counters.read("remote.hits") == 1
        # All four references were remote-home for node 0; one hit.
        assert firmware.remote_hit_ratio() == pytest.approx(0.25)

    def test_l3_hit_never_reaches_remote_cache(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x1000)
        process(firmware, 0, BusCommand.READ, 0x1000)  # L3 hit
        assert firmware.counters.read("remote.references") == 1

    def test_io_masters_ignored(self):
        firmware = make_firmware()
        process(firmware, 99, BusCommand.READ, 0x1000)
        assert firmware.counters.read("remote.references") == 0

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            RemoteCacheFirmware(L3, REMOTE, [0, 1, 2, 3, 4])

    def test_snapshot_and_reset(self):
        firmware = make_firmware()
        process(firmware, 0, BusCommand.READ, 0x1000)
        assert firmware.snapshot()["rcache.l3.misses"] == 1
        firmware.reset()
        assert firmware.counters.read("l3.misses") == 0
        assert firmware.remote_hit_ratio() == 0.0
