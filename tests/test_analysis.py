"""Tests for repro.analysis: stats containers, profiles and rendering."""

import pytest

from repro.analysis.profiles import IntervalProfile
from repro.analysis.report import render_breakdown, render_series, render_table
from repro.analysis.stats import (
    MissCurve,
    SweepPoint,
    crossover_exists,
    relative_flattening,
)


class TestMissCurve:
    def make(self, ys):
        curve = MissCurve(name="test")
        for i, y in enumerate(ys):
            curve.add(float(i), y)
        return curve

    def test_monotone_decreasing(self):
        assert self.make([0.9, 0.5, 0.3]).is_monotone_decreasing()
        assert not self.make([0.9, 0.5, 0.6]).is_monotone_decreasing()
        assert self.make([0.9, 0.5, 0.505]).is_monotone_decreasing(tolerance=0.01)

    def test_monotone_increasing(self):
        assert self.make([0.1, 0.2, 0.3]).is_monotone_increasing()
        assert not self.make([0.3, 0.2]).is_monotone_increasing()

    def test_total_drop(self):
        assert self.make([0.9, 0.3]).total_drop() == pytest.approx(0.6)
        assert MissCurve("empty").total_drop() == 0.0

    def test_xs_ys(self):
        curve = self.make([0.5, 0.4])
        assert curve.xs() == [0.0, 1.0]
        assert curve.ys() == [0.5, 0.4]

    def test_sweep_point_label(self):
        assert SweepPoint(x=64 * 1024 * 1024, miss_ratio=0.1).display_label() == "64MB"
        assert SweepPoint(x=1, miss_ratio=0.1, label="8 proc").display_label() == "8 proc"

    def test_relative_flattening(self):
        flat_tail = self.make([0.9, 0.3, 0.29, 0.28])
        steep_tail = self.make([0.9, 0.6, 0.4, 0.2])
        assert relative_flattening(flat_tail, 1) < relative_flattening(steep_tail, 1)

    def test_relative_flattening_bad_knee(self):
        with pytest.raises(ValueError):
            relative_flattening(self.make([0.9, 0.3]), 5)

    def test_crossover(self):
        assert crossover_exists([0.6, 0.5, 0.4], [0.3, 0.35, 0.4])
        assert not crossover_exists([0.6, 0.5], [0.5, 0.4])
        assert not crossover_exists([0.6], [0.3, 0.4])


class TestIntervalProfile:
    def make(self, values):
        profile = IntervalProfile(node_index=0, interval_records=100)
        profile.miss_ratios = list(values)
        profile.references = [100] * len(values)
        return profile

    def test_spikes_detected_on_low_plateau(self):
        values = [0.05] * 20
        values[5] = values[12] = values[19] = 0.8
        assert self.make(values).spike_indices() == [5, 12, 19]

    def test_spikes_detected_on_high_plateau(self):
        """The Figure 10 top curve: small bumps on a ~90% baseline."""
        values = [0.90] * 20
        values[4] = values[11] = 0.97
        assert self.make(values).spike_indices() == [4, 11]

    def test_no_spikes_on_flat_profile(self):
        assert self.make([0.5] * 20).spike_indices() == []

    def test_skip_ignores_warmup(self):
        values = [0.95, 0.9] + [0.1] * 18
        values[10] = 0.8
        assert self.make(values).spike_indices(skip=2) == [10]

    def test_period_merges_adjacent_intervals(self):
        values = [0.1] * 24
        # Two-interval-wide spikes every 8 intervals.
        for start in (4, 12, 20):
            values[start] = values[start + 1] = 0.9
        assert self.make(values).spike_period() == pytest.approx(8.0)

    def test_period_none_for_single_spike(self):
        values = [0.1] * 10
        values[4] = 0.9
        assert self.make(values).spike_period() is None

    def test_empty_profile(self):
        assert self.make([]).spike_indices() == []


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a    bbb")
        assert all(len(line) >= 6 for line in lines[2:])

    def test_render_series_shares_axis(self):
        a = MissCurve("a")
        b = MissCurve("b")
        for x in (1.0, 2.0):
            a.add(x, 0.5, label=str(x))
            b.add(x, 0.25, label=str(x))
        text = render_series([a, b], x_header="size")
        assert "50.00%" in text and "25.00%" in text

    def test_render_series_mismatched_axes_rejected(self):
        a = MissCurve("a")
        a.add(1.0, 0.5)
        b = MissCurve("b")
        b.add(2.0, 0.5)
        with pytest.raises(ValueError):
            render_series([a, b])

    def test_render_series_raw_values(self):
        a = MissCurve("a")
        a.add(1.0, 0.1234, label="x")
        assert "0.1234" in render_series([a], percent=False)

    def test_render_breakdown(self):
        text = render_breakdown(
            ["memory", "l3"], ["2x4", "4x2"], [[0.7, 0.3], [0.6, 0.4]]
        )
        assert "70.0%" in text and "40.0%" in text

    def test_render_empty_series(self):
        assert render_series([], title="empty") == "empty"
