"""Tests for the Table 3 / Table 4 experiments (timing comparisons)."""

import pytest

from repro.experiments.table3_tracesim import Table3Settings, run as run_table3
from repro.experiments.table4_augmint import Table4Settings, run as run_table4


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(Table3Settings(measure_records=20_000))

    def test_modeled_board_matches_paper(self, result):
        modeled = result.data["modeled_board_seconds"]
        assert modeled[0] == pytest.approx(0.00328, rel=0.01)
        assert modeled[3] == pytest.approx(1000.0, rel=0.01)

    def test_modeled_csim_matches_paper(self, result):
        modeled = result.data["modeled_csim_seconds"]
        assert modeled[0] == pytest.approx(1.0, rel=0.05)
        assert modeled[2] == pytest.approx(300.0, rel=0.05)

    def test_measured_simulator_slower_than_board_model(self, result):
        """The shape that matters: software simulation is orders of
        magnitude slower than real-time emulation."""
        csim_rps = result.data["csim_measured_rps"]
        board_model_rps = 10_000_000  # 100 MHz x 20% / 2 cycles
        assert csim_rps < board_model_rps

    def test_report_has_all_rows(self, result):
        assert result.report.count("\n") >= 5
        assert "10,000,000,000" in result.report

    def test_notes_admit_software_board_is_not_real_time(self, result):
        assert any("NOT real time" in note for note in result.notes)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4(Table4Settings(measured_refs=20_000))

    def test_modeled_anchors(self, result):
        augmint = result.data["modeled_augmint_seconds"]
        host = result.data["modeled_host_seconds"]
        assert augmint[0] == pytest.approx(47 * 60, rel=0.1)
        assert host[0] == pytest.approx(3.0, rel=0.15)

    def test_augmint_always_slower(self, result):
        for augmint, host in zip(
            result.data["modeled_augmint_seconds"],
            result.data["modeled_host_seconds"],
        ):
            assert augmint > 100 * host

    def test_measured_run_processed_all_events(self, result):
        assert result.data["measured"].events == 20_000

    def test_report_mentions_paper_values(self, result):
        assert "47 minutes" in result.report
        assert "> 2 days" in result.report
