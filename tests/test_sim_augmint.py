"""Tests for the execution-driven (Augmint-like) simulator model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.sim.augmint import AugmintModel
from repro.sim.trace_sim import TraceSimulator
from repro.workloads.tpcc import TpccWorkload

CFG = CacheNodeConfig(size=16 * 1024, assoc=4, line_size=128)


def workload(seed=0):
    return TpccWorkload(db_bytes=1 << 21, n_cpus=4, private_bytes=4096, seed=seed)


class TestRun:
    def test_event_count_matches_references(self):
        result = AugmintModel(CFG).run(workload(), 5_000)
        assert result.events == 5_000
        assert result.cache.references == 5_000

    def test_modeled_time_scales_with_events(self):
        model = AugmintModel(CFG)
        small = model.run(workload(), 2_000)
        large = model.run(workload(), 4_000)
        assert large.modeled_seconds == pytest.approx(
            2 * small.modeled_seconds, rel=0.01
        )

    def test_modeled_slowdown_is_orders_of_magnitude(self):
        """Execution-driven simulation costs thousands of host cycles per
        event — the methodology gap Table 4 quantifies."""
        result = AugmintModel(CFG).run(workload(), 5_000)
        native_seconds = 5_000 / 262e6  # ~1 event/cycle natively
        assert result.modeled_seconds > 100 * native_seconds

    def test_cache_state_persists_across_chunks(self):
        model = AugmintModel(CFG)
        result = model.run(workload(), 20_000, chunk_size=1000)
        # Hits require cross-chunk cache state: a fresh cache per chunk
        # would show nearly zero hits on this footprint.
        assert result.cache.read_hits + result.cache.write_hits > 0

    def test_execution_matches_trace_driven_semantics(self):
        """Execution-driven and trace-driven runs of the same stream agree."""
        import numpy as np
        from repro.bus.trace import BusTrace, encode_arrays

        stream = workload(seed=5)
        chunks = list(stream.chunks(5_000))
        words = np.concatenate(
            [
                encode_arrays(
                    c.astype(np.uint64),
                    np.where(w, 1, 0).astype(np.uint64),
                    a.astype(np.uint64),
                )
                for c, a, w in chunks
            ]
        )
        trace_result = TraceSimulator(CFG).simulate(BusTrace(words))
        stream.reset()
        exec_result = AugmintModel(CFG).run(stream, 5_000)
        assert exec_result.cache.counter_view() == trace_result.counter_view()

    def test_measured_seconds_positive(self):
        result = AugmintModel(CFG).run(workload(), 1_000)
        assert result.measured_seconds > 0

    def test_invalid_host_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            AugmintModel(CFG, sim_host_hz=0)

    def test_slowdown_metric(self):
        result = AugmintModel(CFG).run(workload(), 1_000)
        assert result.modeled_slowdown_vs > 0
