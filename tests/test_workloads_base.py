"""Tests for the workload framework and the Zipf sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.workloads.base import InterleavedWorkload, LINE, ZipfSampler


class UniformWorkload(InterleavedWorkload):
    """Minimal concrete workload: uniform lines in a per-CPU region."""

    def __init__(self, n_cpus=4, region_lines=64, seed=0):
        super().__init__(n_cpus=n_cpus, seed=seed)
        self.region_lines = region_lines

    def cpu_refs(self, cpu, n, rng, state):
        lines = rng.integers(0, self.region_lines, n)
        addresses = (cpu * self.region_lines + lines) * LINE
        return addresses, rng.random(n) < 0.5


class TestChunking:
    def test_total_reference_count(self):
        workload = UniformWorkload()
        total = sum(len(c[0]) for c in workload.chunks(10_000, chunk_size=1024))
        assert total == 10_000

    def test_last_chunk_partial(self):
        workload = UniformWorkload()
        sizes = [len(c[0]) for c in workload.chunks(2500, chunk_size=1000)]
        assert sizes == [1000, 1000, 500]

    def test_addresses_line_aligned(self):
        workload = UniformWorkload()
        for _cpus, addresses, _writes in workload.chunks(5000):
            assert (addresses % LINE == 0).all()

    def test_cpu_ids_in_range(self):
        workload = UniformWorkload(n_cpus=3)
        for cpu_ids, _a, _w in workload.chunks(5000):
            assert cpu_ids.min() >= 0 and cpu_ids.max() < 3

    def test_deterministic_given_seed(self):
        a = list(UniformWorkload(seed=9).chunks(3000))
        b = list(UniformWorkload(seed=9).chunks(3000))
        for (ca, aa, wa), (cb, ab, wb) in zip(a, b):
            assert (ca == cb).all() and (aa == ab).all() and (wa == wb).all()

    def test_different_seeds_differ(self):
        a = next(iter(UniformWorkload(seed=1).chunks(1000)))
        b = next(iter(UniformWorkload(seed=2).chunks(1000)))
        assert not (a[1] == b[1]).all()

    def test_reset_restarts_stream(self):
        workload = UniformWorkload(seed=3)
        first = next(iter(workload.chunks(1000)))
        workload.reset()
        again = next(iter(workload.chunks(1000)))
        assert (first[1] == again[1]).all()

    def test_zero_cpus_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformWorkload(n_cpus=0)

    def test_negative_refs_rejected(self):
        workload = UniformWorkload()
        with pytest.raises(ConfigurationError):
            list(workload.chunks(-1))


class TestZipfSampler:
    def test_draws_within_population(self):
        sampler = ZipfSampler(100, 1.0, np.random.default_rng(0))
        draws = sampler.draw(10_000)
        assert draws.min() >= 0 and draws.max() < 100

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(10_000, 1.2, rng)
        draws = sampler.draw(50_000)
        _, counts = np.unique(draws, return_counts=True)
        top_share = np.sort(counts)[::-1][:100].sum() / draws.size
        assert top_share > 0.4  # heavy head

    def test_higher_exponent_more_skew(self):
        def unique_fraction(exponent):
            sampler = ZipfSampler(50_000, exponent, np.random.default_rng(1))
            return np.unique(sampler.draw(20_000)).size / 20_000

        assert unique_fraction(1.5) < unique_fraction(0.6)

    def test_permutation_scatters_hot_items(self):
        """The hottest item should usually not be index 0 (rank-permuted)."""
        hits = 0
        for seed in range(10):
            sampler = ZipfSampler(1000, 1.5, np.random.default_rng(seed))
            draws = sampler.draw(2000)
            values, counts = np.unique(draws, return_counts=True)
            if values[counts.argmax()] == 0:
                hits += 1
        assert hits <= 2

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, 0.0, rng)

    @given(
        n=st.integers(1, 500),
        exponent=st.floats(0.2, 2.0),
        count=st.integers(1, 200),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounds_property(self, n, exponent, count):
        sampler = ZipfSampler(n, exponent, np.random.default_rng(0))
        draws = sampler.draw(count)
        assert draws.min() >= 0 and draws.max() < n
