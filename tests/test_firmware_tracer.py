"""Tests for the trace-collection firmware."""

from repro.bus.trace import TraceReader
from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.board import MemoriesBoard
from repro.memories.firmware.tracer import TraceCollectorFirmware


def process(firmware, cpu, command, address, response=SnoopResponse.NULL):
    firmware.process(cpu, command, address, response, 0.0)


class TestCapture:
    def test_records_accumulate(self):
        firmware = TraceCollectorFirmware(capacity=100)
        process(firmware, 0, BusCommand.READ, 0x1000)
        process(firmware, 1, BusCommand.RWITM, 0x2000)
        trace = firmware.to_trace()
        assert len(trace) == 2
        assert trace[0].cpu_id == 0 and trace[0].command is BusCommand.READ
        assert trace[1].address == 0x2000

    def test_snoop_responses_preserved(self):
        firmware = TraceCollectorFirmware(capacity=10)
        process(firmware, 0, BusCommand.READ, 0x1000, SnoopResponse.MODIFIED)
        assert firmware.to_trace()[0].snoop_response is SnoopResponse.MODIFIED

    def test_overflow_sets_flag_and_stops_recording(self):
        firmware = TraceCollectorFirmware(capacity=2)
        for i in range(5):
            process(firmware, 0, BusCommand.READ, i * 128)
        assert len(firmware) == 2
        assert firmware.overflowed

    def test_board_filters_before_capture(self):
        firmware = TraceCollectorFirmware(capacity=100)
        board = MemoriesBoard(firmware)
        from repro.bus.transaction import BusTransaction

        board.observe(BusTransaction(0, BusCommand.IO_READ, 0x1000))
        board.observe(BusTransaction(0, BusCommand.READ, 0x2000))
        assert len(firmware) == 1

    def test_save_and_reload(self, tmp_path):
        firmware = TraceCollectorFirmware(capacity=100)
        for i in range(7):
            process(firmware, i % 4, BusCommand.READ, i * 256)
        path = tmp_path / "captured.mies"
        firmware.save(path)
        assert len(TraceReader(path).load()) == 7

    def test_snapshot(self):
        firmware = TraceCollectorFirmware(capacity=5)
        process(firmware, 0, BusCommand.READ, 0)
        snapshot = firmware.snapshot()
        assert snapshot["tracer.records"] == 1
        assert snapshot["tracer.capacity"] == 5
        assert snapshot["tracer.overflowed"] == 0

    def test_reset(self):
        firmware = TraceCollectorFirmware(capacity=2)
        for i in range(3):
            process(firmware, 0, BusCommand.READ, i * 128)
        firmware.reset()
        assert len(firmware) == 0
        assert not firmware.overflowed
