"""Tests for repro.supervisor: journal WAL, checkpoints, crash-safe runs."""

import json
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.bus.transaction import BusCommand
from repro.common.errors import (
    ConfigurationError,
    TraceFormatError,
    ValidationError,
)
from repro.faults import (
    CheckpointRotation,
    FaultPlan,
    find_latest_checkpoint,
    load_checkpoint_payload,
    restore_checkpoint,
    save_checkpoint,
)
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.counters import COUNTER_MASK
from repro.supervisor import (
    ChaosPlan,
    RunJournal,
    RunSupervisor,
    SupervisedRunSpec,
    SupervisorError,
    render_status,
    statistics_digest,
)
from repro.target.configs import single_node_machine, split_smp_machine

CFG = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)


def machine(n_cpus=4):
    return single_node_machine(CFG, n_cpus=n_cpus)


def synthetic_words(n=2000, n_cpus=4, seed=0):
    """A packed record stream with reads, writes and reuse."""
    from repro.bus.trace import encode_arrays

    rng = np.random.default_rng(seed)
    cpus = rng.integers(0, n_cpus, n).astype(np.uint64)
    commands = rng.choice(
        [int(BusCommand.READ), int(BusCommand.RWITM)], size=n, p=[0.8, 0.2]
    ).astype(np.uint64)
    addresses = (rng.integers(0, 512, n) * np.uint64(128)).astype(np.uint64)
    return encode_arrays(cpus, commands, addresses)


def bare_statistics(spec, words):
    """What an unsupervised replay of the same spec produces."""
    board = spec.build_board()
    board.replay_words(words)
    return board.statistics()


def corrupt_segment(run_dir, segment, segment_records):
    """Flip one payload byte of one segment of the staged v5 trace."""
    path = Path(run_dir) / RunSupervisor.TRACE_NAME
    data = bytearray(path.read_bytes())
    offset = 20 + segment * (segment_records * 8 + 4) + 11
    data[offset] ^= 0x40
    path.write_bytes(data)


# ---------------------------------------------------------------------- #
# The run journal (WAL)
# ---------------------------------------------------------------------- #


class TestRunJournal:
    def test_append_reload_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.append("run_start", records=100)
        journal.append("segment_commit", segment=0, digest="abc")
        journal.close()

        reloaded = RunJournal(path)
        assert not reloaded.torn_tail
        assert reloaded.next_seq == 2
        assert reloaded.last("segment_commit")["segment"] == 0
        assert [r["type"] for r in reloaded.entries()] == [
            "run_start",
            "segment_commit",
        ]
        assert reloaded.entries("run_start")[0]["records"] == 100

    def test_every_line_carries_a_crc(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.append("run_start", records=1)
        journal.close()
        record = json.loads(path.read_text())
        body = {k: v for k, v in record.items() if k != "crc"}
        encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
        assert record["crc"] == zlib.crc32(encoded.encode()) & 0xFFFFFFFF

    def test_torn_tail_is_dropped_and_flagged(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.append("run_start", records=1)
        journal.append("segment_commit", segment=0)
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"type": "segment_commit", "seq": 2, "cr')

        reloaded = RunJournal(path)
        assert reloaded.torn_tail
        assert reloaded.next_seq == 2

    def test_append_after_torn_tail_truncates_the_damage(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.append("run_start", records=1)
        journal.close()
        with open(path, "a") as handle:
            handle.write("garbage that is not json\n")

        reloaded = RunJournal(path)
        assert reloaded.torn_tail
        reloaded.append("segment_commit", segment=0)
        reloaded.close()
        assert "garbage" not in path.read_text()
        clean = RunJournal(path)
        assert not clean.torn_tail
        assert clean.next_seq == 2

    def test_corrupt_tail_crc_counts_as_torn(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.append("run_start", records=1)
        journal.append("segment_commit", segment=0)
        journal.close()
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"segment":0', '"segment":7')
        path.write_text("\n".join(lines) + "\n")

        reloaded = RunJournal(path)
        assert reloaded.torn_tail
        assert reloaded.next_seq == 1

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        for segment in range(3):
            journal.append("segment_commit", segment=segment)
        journal.close()
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-5]
        path.write_text("\n".join(lines) + "\n")

        with pytest.raises(TraceFormatError, match="not the tail"):
            RunJournal(path)

    def test_sequence_gap_is_corruption(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.append("run_start", records=1)
        journal.close()
        # A validly-CRC'd line with the wrong seq is still a torn tail
        # (it was never acknowledged at that position).
        record = {"type": "segment_commit", "seq": 5}
        encoded = json.dumps(record, sort_keys=True, separators=(",", ":"))
        record["crc"] = zlib.crc32(encoded.encode()) & 0xFFFFFFFF
        with open(path, "a") as handle:
            handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )
        reloaded = RunJournal(path)
        assert reloaded.torn_tail
        assert reloaded.next_seq == 1


# ---------------------------------------------------------------------- #
# Atomic checkpoints with CRCs (satellites 1 and 2)
# ---------------------------------------------------------------------- #


class TestCheckpointIntegrity:
    def _board(self, words=None):
        board = board_for_machine(machine(), seed=0)
        board.replay_words(words if words is not None else synthetic_words(400))
        return board

    def test_checkpoint_is_plain_json_with_crc(self, tmp_path):
        board = self._board()
        path = tmp_path / "ckpt.json"
        save_checkpoint(board, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "memories-checkpoint"
        assert payload["version"] == 2
        assert isinstance(payload["crc"], int)
        assert "machine" in payload

    def test_no_temp_files_left_behind(self, tmp_path):
        save_checkpoint(self._board(), tmp_path / "ckpt.json")
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.json"]

    def test_roundtrip_restores_statistics(self, tmp_path):
        board = self._board()
        path = tmp_path / "ckpt.json"
        save_checkpoint(board, path)
        restored = board_for_machine(machine(), seed=0)
        restore_checkpoint(restored, path)
        assert restored.statistics() == board.statistics()

    def test_truncated_checkpoint_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(self._board(), path)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        with pytest.raises(TraceFormatError):
            load_checkpoint_payload(path)

    def test_garbled_checkpoint_fails_crc(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(self._board(), path)
        # Corrupt one digit inside the state body, keeping valid JSON.
        text = path.read_text()
        garbled = text.replace('"state": {"version": 1', '"state": {"version": 9', 1)
        assert garbled != text
        path.write_text(garbled)
        with pytest.raises(TraceFormatError, match="CRC mismatch"):
            load_checkpoint_payload(path)

    def test_failed_restore_never_half_applies(self, tmp_path):
        board = self._board()
        path = tmp_path / "ckpt.json"
        save_checkpoint(board, path)
        path.write_bytes(path.read_bytes()[:40])
        victim = board_for_machine(machine(), seed=0)
        before = victim.statistics()
        with pytest.raises(TraceFormatError):
            restore_checkpoint(victim, path)
        assert victim.statistics() == before

    def test_restore_into_differently_programmed_board_raises(self, tmp_path):
        board = self._board()
        path = tmp_path / "ckpt.json"
        save_checkpoint(board, path)
        other_cfg = CacheNodeConfig(size=128 * 1024, assoc=4, line_size=128)
        other = board_for_machine(
            single_node_machine(other_cfg, n_cpus=4), seed=0
        )
        with pytest.raises(ConfigurationError, match="differently-programmed"):
            restore_checkpoint(other, path)

    def test_find_latest_skips_corrupt_newest(self, tmp_path):
        board = self._board()
        for name in ("ckpt-00000000.json", "ckpt-00000001.json",
                     "ckpt-00000002.json"):
            save_checkpoint(board, tmp_path / name)
        newest = tmp_path / "ckpt-00000002.json"
        newest.write_bytes(newest.read_bytes()[:60])
        assert find_latest_checkpoint(tmp_path) == tmp_path / "ckpt-00000001.json"

    def test_find_latest_on_empty_or_all_corrupt(self, tmp_path):
        assert find_latest_checkpoint(tmp_path) is None
        (tmp_path / "ckpt-00000000.json").write_text("not json at all")
        assert find_latest_checkpoint(tmp_path) is None

    def test_rotation_keeps_newest_n(self, tmp_path):
        board = self._board()
        rotation = CheckpointRotation(tmp_path / "ckpts", keep=2)
        for segment in range(4):
            rotation.save(board, segment)
        names = sorted(p.name for p in (tmp_path / "ckpts").iterdir())
        assert names == ["ckpt-00000002.json", "ckpt-00000003.json"]
        segment, path = rotation.latest()
        assert segment == 3
        assert path.name == "ckpt-00000003.json"

    def test_rotation_rejects_keep_below_one(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointRotation(tmp_path, keep=0)


# ---------------------------------------------------------------------- #
# Resume-equivalence edge cases (satellite 4)
# ---------------------------------------------------------------------- #


class TestCheckpointEdgeCases:
    def test_wrapped_counters_survive_checkpoint(self, tmp_path):
        board = board_for_machine(machine(), seed=0)
        board.replay_words(synthetic_words(400))
        node = board.firmware.nodes[0]
        node.counters.increment("local.read", COUNTER_MASK + 5)
        assert board.wrapped_counters()

        path = tmp_path / "ckpt.json"
        save_checkpoint(board, path)
        restored = board_for_machine(machine(), seed=0)
        restore_checkpoint(restored, path)
        assert restored.wrapped_counters() == board.wrapped_counters()
        assert restored.statistics() == board.statistics()
        # The raw (un-wrapped) value survives, not just the masked readout.
        assert (
            restored.firmware.nodes[0].counters.read_raw("local.read")
            == node.counters.read_raw("local.read")
        )

    def test_mid_window_checkpoint_restores_sampler_cursor(self, tmp_path):
        from repro.telemetry import CounterSampler, MemorySink

        words = synthetic_words(3000)

        def instrumented_board():
            board = board_for_machine(machine(), seed=0)
            sink = MemorySink()
            board.attach_telemetry(
                CounterSampler(sink, every_transactions=1000, label="t")
            )
            return board, sink

        full_board, full_sink = instrumented_board()
        full_board.replay_words(words)
        full_board.telemetry.finish(full_board)

        # Checkpoint at 1500 records: halfway through the second window.
        first, first_sink = instrumented_board()
        first.replay_words(words[:1500])
        path = tmp_path / "ckpt.json"
        save_checkpoint(first, path)
        assert len(first_sink.records) == 1

        second, second_sink = instrumented_board()
        restore_checkpoint(second, path)
        second.replay_words(words[1500:])
        second.telemetry.finish(second)

        # Everything emitted after the checkpoint — the 2000/3000-record
        # windows and the final flush — is identical to the uninterrupted
        # series: cadence, sequence numbers, deltas, cycles.
        assert second_sink.records == full_sink.records[1:]


# ---------------------------------------------------------------------- #
# The spec
# ---------------------------------------------------------------------- #


class TestSupervisedRunSpec:
    def test_validation(self):
        with pytest.raises(ValidationError, match="segment_records"):
            SupervisedRunSpec(machine=machine(), segment_records=0)
        with pytest.raises(ValidationError, match="keep_checkpoints"):
            SupervisedRunSpec(machine=machine(), keep_checkpoints=0)
        with pytest.raises(ValidationError, match="max_restarts"):
            SupervisedRunSpec(machine=machine(), max_restarts=-1)
        with pytest.raises(ValidationError, match="segment_deadline"):
            SupervisedRunSpec(machine=machine(), segment_deadline=0.0)

    def test_dict_roundtrip_without_chaos(self):
        spec = SupervisedRunSpec(
            machine=machine(),
            seed=3,
            ecc=True,
            segment_records=500,
            fault_plan=FaultPlan(seed=1, drop_snoop_rate=0.01),
            chaos=ChaosPlan(kill_after_records=10),
        )
        data = spec.to_dict()
        # The chaos schedule applies to one process launch only; it must
        # never survive into a resumed run's spec.json.
        assert "chaos" not in data
        rebuilt = SupervisedRunSpec.from_dict(data)
        assert rebuilt.chaos is None
        assert rebuilt.machine.fingerprint() == spec.machine.fingerprint()
        assert rebuilt.fault_plan == spec.fault_plan
        assert rebuilt.segment_records == 500
        assert rebuilt.ecc is True


# ---------------------------------------------------------------------- #
# Supervised runs: identity, crash-resume, degradation
# ---------------------------------------------------------------------- #


class TestSupervisedRuns:
    def _spec(self, **overrides):
        defaults = dict(
            machine=machine(),
            segment_records=500,
            backoff_base=0.01,
        )
        defaults.update(overrides)
        return SupervisedRunSpec(**defaults)

    def test_zero_fault_run_is_bit_identical_to_bare_replay(self, tmp_path):
        words = synthetic_words(2000)
        spec = self._spec()
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        result = supervisor.run()
        assert not result.degraded
        assert result.restarts == 0
        assert result.statistics == bare_statistics(spec, words)
        status = supervisor.status()
        assert status["complete"]
        assert status["committed"] == status["segments"] == 4

    def test_completed_run_is_idempotent(self, tmp_path):
        words = synthetic_words(1000)
        supervisor = RunSupervisor.create(self._spec(), words, tmp_path / "run")
        first = supervisor.run()
        again = RunSupervisor.open(tmp_path / "run").run()
        assert again.digest == first.digest
        assert again.statistics == first.statistics

    def test_create_refuses_existing_run(self, tmp_path):
        words = synthetic_words(500)
        RunSupervisor.create(self._spec(), words, tmp_path / "run")
        with pytest.raises(ValidationError, match="open"):
            RunSupervisor.create(self._spec(), words, tmp_path / "run")

    def test_open_missing_run_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            RunSupervisor.open(tmp_path / "nowhere")

    def test_mid_segment_kill_restarts_and_stays_identical(self, tmp_path):
        words = synthetic_words(2000)
        spec = self._spec()
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        # SIGKILL the worker 700 records in: segment 1, mid-segment.
        result = supervisor.run(chaos=ChaosPlan(kill_after_records=700))
        assert result.restarts == 1
        assert result.statistics == bare_statistics(spec, words)
        assert len(supervisor.journal.entries("restart")) == 1

    def test_backoff_delay_is_seeded_and_journaled(self, tmp_path):
        """Restart backoff jitter is a pure function of (run seed,
        attempt) and the journal records the exact delay slept — the
        replayable spelling DT207 enforces."""
        from repro.supervisor import backoff_delay

        # Deterministic: same inputs, same delay, bit for bit.
        assert backoff_delay(42, 0.05, 1) == backoff_delay(42, 0.05, 1)
        # Decorrelated across attempts and seeds.
        assert backoff_delay(42, 0.05, 1) != backoff_delay(42, 0.05, 2)
        assert backoff_delay(42, 0.05, 1) != backoff_delay(43, 0.05, 1)
        # Bounded: base * 2**(n-1) * [1, 1 + jitter].
        for attempt in (1, 2, 3):
            floor = 0.05 * 2 ** (attempt - 1)
            delay = backoff_delay(7, 0.05, attempt)
            assert floor <= delay <= floor * 1.25

        words = synthetic_words(1500)
        spec = self._spec(seed=9, backoff_base=0.01)
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        result = supervisor.run(chaos=ChaosPlan(kill_after_records=600))
        assert result.restarts == 1
        (record,) = supervisor.journal.entries("restart")
        assert record["delay"] == backoff_delay(9, 0.01, 1)

    def test_commit_boundary_kill_then_resume_is_identical(self, tmp_path):
        words = synthetic_words(2000)
        spec = self._spec(max_restarts=0)
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        with pytest.raises(SupervisorError, match="restart budget"):
            supervisor.run(chaos=ChaosPlan(kill_at_commit=1))
        # Segments 0 and 1 are journaled; a fresh open() resumes from the
        # committed checkpoint and finishes bit-identically.
        resumed = RunSupervisor.open(tmp_path / "run")
        assert resumed.committed_segment() == 1
        result = resumed.run()
        assert result.statistics == bare_statistics(spec, words)
        status = resumed.status()
        assert status["complete"]
        assert status["restarts"] == 1

    def test_restart_budget_bounds_repeated_failures(self, tmp_path):
        words = synthetic_words(1000)
        spec = self._spec(max_restarts=0)
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        with pytest.raises(SupervisorError, match="restart budget"):
            supervisor.run(chaos=ChaosPlan(kill_after_records=100))

    def test_corrupt_segment_is_quarantined(self, tmp_path):
        words = synthetic_words(2000)
        spec = self._spec()
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        corrupt_segment(tmp_path / "run", 2, spec.segment_records)
        result = supervisor.run()
        assert result.degraded
        assert result.segments_quarantined == 1
        assert result.records_skipped == 500
        assert result.statistics["board.segments_quarantined"] == 1
        assert result.statistics["board.records_skipped"] == 500
        assert [
            r["segment"] for r in supervisor.journal.entries("quarantine")
        ] == [2]
        commit = [
            r
            for r in supervisor.journal.entries("segment_commit")
            if r["segment"] == 2
        ][0]
        assert commit["quarantined"]
        status = supervisor.status()
        assert status["quarantined_segments"] == [2]
        assert status["degraded"]
        assert "DEGRADED" in render_status(status)

    def test_failing_node_is_taken_offline_and_run_completes(self, tmp_path):
        words = synthetic_words(2000)
        spec = self._spec(ecc=True)
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        result = supervisor.run(chaos=ChaosPlan(fail_node=(1, 0)))
        assert result.degraded
        assert result.offline_nodes == [0]
        assert result.statistics["board.offline_nodes"] == 1
        offlines = supervisor.journal.entries("node_offlined")
        assert [(r["node"], r["segment"]) for r in offlines] == [(0, 1)]
        assert supervisor.status()["offline_nodes"] == [0]

    def test_offline_budget_exhaustion_fails_the_run(self, tmp_path):
        words = synthetic_words(1000)
        spec = self._spec(ecc=True, max_offline_nodes=0)
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        with pytest.raises(SupervisorError, match="offline budget"):
            supervisor.run(chaos=ChaosPlan(fail_node=(1, 0)))

    def test_run_start_records_the_machine_fingerprint(self, tmp_path):
        words = synthetic_words(500)
        spec = self._spec()
        supervisor = RunSupervisor.create(spec, words, tmp_path / "run")
        start = supervisor.journal.last("run_start")
        assert start["machine"] == spec.machine.fingerprint()
        assert start["records"] == 500
        assert start["segments"] == 1


# ---------------------------------------------------------------------- #
# Offline-node firmware semantics (degradation rung 3's mechanism)
# ---------------------------------------------------------------------- #


class TestOfflineNode:
    def _split_board(self):
        target = split_smp_machine(CFG, n_cpus=4, procs_per_node=2)
        return board_for_machine(target, seed=0)

    def test_offline_node_freezes_its_counters(self):
        board = self._split_board()
        words = synthetic_words(600)
        board.replay_words(words[:300])
        frozen = dict(board.firmware.nodes[0].counters.snapshot())
        board.offline_node(0)
        board.replay_words(words[300:])
        assert dict(board.firmware.nodes[0].counters.snapshot()) == frozen
        # The survivor kept emulating.
        assert board.firmware.nodes[1].references() > 0
        assert board.offline_nodes() == [0]
        assert board.statistics()["board.offline_nodes"] == 1

    def test_offline_is_idempotent_and_bounds_checked(self):
        board = self._split_board()
        board.offline_node(1)
        board.offline_node(1)
        assert board.offline_nodes() == [1]
        with pytest.raises(ConfigurationError):
            board.offline_node(9)

    def test_offline_set_survives_checkpoint(self, tmp_path):
        board = self._split_board()
        board.replay_words(synthetic_words(300))
        board.offline_node(0)
        path = tmp_path / "ckpt.json"
        save_checkpoint(board, path)
        target = split_smp_machine(CFG, n_cpus=4, procs_per_node=2)
        restored = board_for_machine(target, seed=0)
        restore_checkpoint(restored, path)
        assert restored.offline_nodes() == [0]
        assert restored.statistics() == board.statistics()

    def test_reset_brings_nodes_back(self):
        board = self._split_board()
        board.offline_node(0)
        board.reset()
        assert board.offline_nodes() == []
        assert board.statistics()["board.offline_nodes"] == 0

    def test_ecc_self_check_is_read_only(self):
        target = single_node_machine(CFG, n_cpus=4)
        board = board_for_machine(target, seed=0, ecc=True)
        board.replay_words(synthetic_words(400))
        node = board.firmware.nodes[0]
        before = board.statistics()
        # Clean directory: no uncorrectables, nothing moves.
        assert node.ecc_self_check() == 0
        assert board.statistics() == before
        # A single-bit flip is correctable damage: the probe must neither
        # flag it nor repair it (that is the scrubber's job).
        node.directory.inject_bit_flip(0, 0, 0)
        damaged = board.statistics()
        assert node.ecc_self_check() == 0
        assert board.statistics() == damaged
        # A double flip is uncorrectable: flagged, but still untouched —
        # probing twice reports it twice.
        node.directory.inject_bit_flip(0, 0, 1)
        assert node.ecc_self_check() == 1
        assert node.ecc_self_check() == 1
        assert board.statistics() == damaged


# ---------------------------------------------------------------------- #
# CLI exit-code discipline (satellite 3) and the supervise surfaces
# ---------------------------------------------------------------------- #


class TestCliExitCodes:
    def test_error_classification(self):
        from repro.cli import (
            EXIT_RUNTIME,
            EXIT_VALIDATION,
            CliError,
            classify_error,
        )

        assert classify_error(CliError("x")) == EXIT_VALIDATION
        assert classify_error(ValidationError("x")) == EXIT_VALIDATION
        assert classify_error(ConfigurationError("x")) == EXIT_VALIDATION
        assert classify_error(TraceFormatError("x")) == EXIT_RUNTIME
        assert classify_error(SupervisorError("x")) == EXIT_RUNTIME

    def test_resource_refusals_are_exit_code_5(self):
        """Quota/queue/deadline refusals must classify as EXIT_RESOURCE,
        not validation or runtime — fleet drivers key resubmit-later
        behaviour on it."""
        from repro.cli import EXIT_RESOURCE, classify_error
        from repro.common.errors import ResourceError
        from repro.service import AdmissionError, DeadlineError

        assert EXIT_RESOURCE == 5
        assert classify_error(ResourceError("x")) == EXIT_RESOURCE
        assert classify_error(
            AdmissionError("queue-full", budget="max_queue_depth",
                           limit=2, value=2)
        ) == EXIT_RESOURCE
        assert classify_error(DeadlineError("wall-deadline")) \
            == EXIT_RESOURCE

    def test_service_usage_and_bad_endpoint(self, tmp_path, capsys):
        from repro.cli import EXIT_VALIDATION, main

        assert main(["service"]) == EXIT_VALIDATION
        capsys.readouterr()
        assert main(["service", "status", "not-an-endpoint"]) \
            == EXIT_VALIDATION
        assert "error:" in capsys.readouterr().out

    def test_supervise_usage_and_missing_run(self, tmp_path, capsys):
        from repro.cli import EXIT_VALIDATION, main

        assert main(["supervise"]) == EXIT_VALIDATION
        capsys.readouterr()
        assert main(["supervise", "status", str(tmp_path / "no")]) == 2
        assert "error:" in capsys.readouterr().out

    def test_supervise_resume_and_status_exit_codes(self, tmp_path, capsys):
        from repro.cli import EXIT_DEGRADED, EXIT_OK, main

        spec = SupervisedRunSpec(machine=machine(), segment_records=500)
        run_dir = tmp_path / "run"
        RunSupervisor.create(spec, synthetic_words(1500), run_dir)
        corrupt_segment(run_dir, 1, spec.segment_records)

        # Degraded-but-completed is its own exit code for cron wrappers.
        assert main(["supervise", "resume", str(run_dir)]) == EXIT_DEGRADED
        out = capsys.readouterr().out
        assert "DEGRADED" in out

        assert main(["supervise", "status", str(run_dir)]) == EXIT_OK
        assert "complete" in capsys.readouterr().out

    def test_console_supervise_command(self, tmp_path):
        from repro.cli import ConsoleSession

        spec = SupervisedRunSpec(machine=machine(), segment_records=500)
        run_dir = tmp_path / "run"
        RunSupervisor.create(spec, synthetic_words(500), run_dir)
        session = ConsoleSession()
        out = session.execute(f"supervise {run_dir}")
        assert "supervised run" in out
        assert "0/1 segments" in out
        with pytest.raises(ConfigurationError, match="usage"):
            session.console.execute("supervise")


# ---------------------------------------------------------------------- #
# Library integration wrappers
# ---------------------------------------------------------------------- #


class TestIntegrationWrappers:
    def test_supervised_replay_matches_replay_machine(self, tmp_path):
        from repro.bus.trace import BusTrace
        from repro.experiments.pipeline import replay_machine, supervised_replay

        words = synthetic_words(1500)
        trace = BusTrace(words)
        target = machine()
        result = supervised_replay(
            trace, target, tmp_path / "run", segment_records=500
        )
        bare = replay_machine(trace, target)
        assert result.statistics == bare.statistics()
        # Same run dir resumes (here: returns the journaled result).
        again = supervised_replay(trace, target, tmp_path / "run")
        assert again.digest == result.digest

    def test_supervised_campaign_matches_in_process_campaign(self, tmp_path):
        from repro.faults import run_campaign, supervised_campaign

        words = synthetic_words(1500)
        target = machine()
        plan = FaultPlan(seed=5, drop_snoop_rate=0.01, directory_flip_rate=0.005)
        base = run_campaign(words, target, plan, seed=0, ecc=True)
        supervised = supervised_campaign(
            words, target, plan, tmp_path / "run",
            seed=0, ecc=True, segment_records=500,
        )
        assert supervised.faulted == base.faulted
        assert supervised.baseline == base.baseline
        assert supervised.fault_counts == base.fault_counts
        assert [e.as_dict() for e in supervised.events] == [
            e.as_dict() for e in base.events
        ]
